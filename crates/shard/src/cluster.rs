//! Cluster configuration: which shard processes exist and which
//! z-ranges they own.
//!
//! A [`ClusterSpec`] is the deployment artifact of the multi-process
//! story — the router tier's equivalent of a manifest of backends: the
//! shared universe, the routing grid resolution, and one `(address,
//! z-range)` entry per shard process. [`ClusterSpec::connect`] turns it
//! into a live `ShardedDatabase<RemoteShard>`, validating everything a
//! misconfigured deployment could get wrong — ranges that do not tile
//! the key space, a shard process spanning a different universe, a
//! wire version mismatch, a shard that already holds data — **before**
//! any query runs, because deployment glue that fails quietly is how
//! distributed stores rot.
//!
//! The text format is deliberately trivial (comments, four directive
//! kinds), written and parsed by this module so the CI cluster-smoke
//! script and a human operator author the same file:
//!
//! ```text
//! # scq cluster spec
//! universe 0 0 1000 1000
//! bits 6
//! pool 4
//! shard 127.0.0.1:9101 0 2048
//! shard 127.0.0.1:9102 2048 4096
//! ```
//!
//! `pool` sizes each shard's client-side connection pool (how many
//! requests may be on the wire to one shard at once); it is optional
//! and defaults to [`DEFAULT_POOL_SIZE`]. Duplicate shard addresses are
//! a named validation error — connecting the same process twice would
//! double-count its objects and desynchronize its mirror.

use std::path::Path;
use std::time::Duration;

use scq_region::AaBox;

use crate::backend::ShardError;
use crate::database::ShardedDatabase;
use crate::remote::{RemoteShard, DEFAULT_POOL_SIZE};
use crate::router::{validate_ranges, ShardRouter};

/// One shard process in a [`ClusterSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// The shard server's address (`host:port`).
    pub addr: String,
    /// The half-open z-code range `[lo, hi)` this shard owns.
    pub range: (u64, u64),
}

/// A cluster of shard processes: universe, routing grid, connection
/// pool size, shard list.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// The universe every shard must span.
    pub universe: AaBox<2>,
    /// Routing grid resolution (bits per dimension, `1..=16`).
    pub bits: u32,
    /// Wire connections pooled per shard (concurrent in-flight
    /// requests to one shard process). At least 1.
    pub pool: usize,
    /// The shard processes, in shard-id order.
    pub shards: Vec<ShardSpec>,
}

/// Errors reading or validating a cluster spec.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterSpecError {
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A required directive is missing or the configuration is
    /// invalid (empty cluster, non-tiling ranges, bad universe…).
    BadConfig(String),
    /// Two `shard` directives name the same process address.
    /// Connecting one process twice would double-count its objects, so
    /// this is its own named error instead of a connect-time surprise.
    DuplicateAddress {
        /// The address that appears more than once.
        addr: String,
    },
    /// Filesystem error reading the spec.
    Io(String),
}

impl std::fmt::Display for ClusterSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterSpecError::Parse { line, message } => {
                write!(f, "cluster spec line {line}: {message}")
            }
            ClusterSpecError::BadConfig(m) => write!(f, "bad cluster spec: {m}"),
            ClusterSpecError::DuplicateAddress { addr } => {
                write!(f, "duplicate shard address {addr:?} in cluster spec")
            }
            ClusterSpecError::Io(m) => write!(f, "cluster spec io: {m}"),
        }
    }
}

impl std::error::Error for ClusterSpecError {}

/// Errors bringing a cluster up from a spec.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// The spec itself is invalid.
    Spec(ClusterSpecError),
    /// One shard failed to connect, handshake or validate.
    Shard {
        /// Which shard (index into [`ClusterSpec::shards`]).
        shard: usize,
        /// Its address.
        addr: String,
        /// The failure.
        source: ShardError,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Spec(e) => write!(f, "{e}"),
            ClusterError::Shard {
                shard,
                addr,
                source,
            } => {
                write!(f, "shard {shard} ({addr}): {source}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl ClusterSpec {
    /// A spec giving each address an equal share of the z-key space —
    /// the default deployment shape ([`scq_zorder::shard_ranges`]).
    ///
    /// # Panics
    /// If `addrs` is empty or `bits` is outside `1..=16`.
    pub fn balanced(universe: AaBox<2>, bits: u32, addrs: &[String]) -> Self {
        assert!(!addrs.is_empty(), "a cluster needs at least one shard");
        let ranges = scq_zorder::shard_ranges(bits, addrs.len());
        ClusterSpec {
            universe,
            bits,
            pool: DEFAULT_POOL_SIZE,
            shards: addrs
                .iter()
                .zip(ranges)
                .map(|(addr, range)| ShardSpec {
                    addr: addr.clone(),
                    range,
                })
                .collect(),
        }
    }

    /// Checks the spec: bits in range, at least one shard, a positive
    /// pool size, ranges tiling the key space exactly, and no address
    /// named twice.
    pub fn validate(&self) -> Result<(), ClusterSpecError> {
        if self.universe.is_empty() {
            return Err(ClusterSpecError::BadConfig("empty universe".into()));
        }
        if self.pool == 0 {
            return Err(ClusterSpecError::BadConfig(
                "pool size must be at least 1".into(),
            ));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            if self.shards[..i].iter().any(|s| s.addr == shard.addr) {
                return Err(ClusterSpecError::DuplicateAddress {
                    addr: shard.addr.clone(),
                });
            }
        }
        let ranges: Vec<(u64, u64)> = self.shards.iter().map(|s| s.range).collect();
        validate_ranges(self.bits, &ranges).map_err(ClusterSpecError::BadConfig)
    }

    /// Parses the text format (see the module docs).
    pub fn parse(text: &str) -> Result<Self, ClusterSpecError> {
        let mut universe = None;
        let mut bits = None;
        let mut pool = None;
        let mut shards = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let parse_err = |message: String| ClusterSpecError::Parse { line, message };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let directive = parts.next().expect("nonempty line has a first token");
            let rest: Vec<&str> = parts.collect();
            match directive {
                "universe" => {
                    let [x0, y0, x1, y1] = rest[..] else {
                        return Err(parse_err("usage: universe <x0> <y0> <x1> <y1>".into()));
                    };
                    let mut c = [0.0f64; 4];
                    for (v, s) in c.iter_mut().zip([x0, y0, x1, y1]) {
                        *v = s
                            .parse::<f64>()
                            .ok()
                            .filter(|v| v.is_finite())
                            .ok_or_else(|| parse_err(format!("bad coordinate {s:?}")))?;
                    }
                    universe = Some(AaBox::new([c[0], c[1]], [c[2], c[3]]));
                }
                "bits" => {
                    let [b] = rest[..] else {
                        return Err(parse_err("usage: bits <1..=16>".into()));
                    };
                    bits = Some(
                        b.parse::<u32>()
                            .map_err(|_| parse_err(format!("bad bits {b:?}")))?,
                    );
                }
                "pool" => {
                    let [p] = rest[..] else {
                        return Err(parse_err("usage: pool <connections per shard>".into()));
                    };
                    pool = Some(
                        p.parse::<usize>()
                            .ok()
                            .filter(|&p| p > 0)
                            .ok_or_else(|| parse_err(format!("bad pool size {p:?}")))?,
                    );
                }
                "shard" => {
                    let [addr, lo, hi] = rest[..] else {
                        return Err(parse_err("usage: shard <addr> <zlo> <zhi>".into()));
                    };
                    let lo = lo
                        .parse::<u64>()
                        .map_err(|_| parse_err(format!("bad z-range lo {lo:?}")))?;
                    let hi = hi
                        .parse::<u64>()
                        .map_err(|_| parse_err(format!("bad z-range hi {hi:?}")))?;
                    shards.push(ShardSpec {
                        addr: addr.to_owned(),
                        range: (lo, hi),
                    });
                }
                other => {
                    return Err(parse_err(format!(
                        "unknown directive {other:?} (universe | bits | pool | shard)"
                    )))
                }
            }
        }
        let spec = ClusterSpec {
            universe: universe
                .ok_or_else(|| ClusterSpecError::BadConfig("missing universe directive".into()))?,
            bits: bits
                .ok_or_else(|| ClusterSpecError::BadConfig("missing bits directive".into()))?,
            pool: pool.unwrap_or(DEFAULT_POOL_SIZE),
            shards,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Reads and parses a spec file.
    pub fn load(path: &Path) -> Result<Self, ClusterSpecError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| ClusterSpecError::Io(e.to_string()))?;
        Self::parse(&text)
    }

    /// Renders the spec in the text format [`ClusterSpec::parse`]
    /// reads back.
    pub fn to_text(&self) -> String {
        let lo = self.universe.lo();
        let hi = self.universe.hi();
        let mut out = String::from("# scq cluster spec\n");
        out.push_str(&format!(
            "universe {} {} {} {}\n",
            lo[0], lo[1], hi[0], hi[1]
        ));
        out.push_str(&format!("bits {}\n", self.bits));
        out.push_str(&format!("pool {}\n", self.pool));
        for s in &self.shards {
            out.push_str(&format!("shard {} {} {}\n", s.addr, s.range.0, s.range.1));
        }
        out
    }

    /// Brings the cluster up: connects to every shard process (polling
    /// each address for up to `wait` — shard processes may still be
    /// booting), validates universes and wire versions, and requires
    /// every shard to be **pristine** (no collections): a warm shard's
    /// global mapping lives in a snapshot manifest, so a restarted
    /// router must restore state through
    /// [`crate::snapshot::reload_from_dir`], never by guessing.
    pub fn connect(&self, wait: Duration) -> Result<ShardedDatabase<RemoteShard>, ClusterError> {
        self.validate().map_err(ClusterError::Spec)?;
        let mut backends = Vec::with_capacity(self.shards.len());
        for (shard, spec) in self.shards.iter().enumerate() {
            let backend = RemoteShard::connect_pooled(&spec.addr, self.universe, wait, self.pool)
                .map_err(|source| ClusterError::Shard {
                shard,
                addr: spec.addr.clone(),
                source,
            })?;
            if !backend.is_pristine() {
                return Err(ClusterError::Shard {
                    shard,
                    addr: spec.addr.clone(),
                    source: ShardError::Rejected(
                        "shard already holds collections; a restarted router must \
                         reload the cluster from a snapshot directory"
                            .into(),
                    ),
                });
            }
            backends.push(backend);
        }
        let router = ShardRouter::from_ranges(
            &self.universe,
            self.bits,
            self.shards.iter().map(|s| s.range).collect(),
        );
        Ok(ShardedDatabase::from_backends(
            self.universe,
            router,
            backends,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> AaBox<2> {
        AaBox::new([0.0, 0.0], [1000.0, 1000.0])
    }

    #[test]
    fn balanced_spec_round_trips_through_text() {
        let mut spec = ClusterSpec::balanced(
            universe(),
            6,
            &["127.0.0.1:9101".to_string(), "127.0.0.1:9102".to_string()],
        );
        spec.pool = 7; // a non-default pool must survive the round trip
        spec.validate().unwrap();
        let text = spec.to_text();
        let parsed = ClusterSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.pool, 7);
        assert_eq!(parsed.shards[0].range.0, 0);
        assert_eq!(
            parsed.shards[1].range.1,
            scq_zorder::key_space(6),
            "ranges tile the key space"
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text =
            "\n# a comment\nuniverse 0 0 100 100   # trailing comment\n\nbits 4\nshard a:1 0 256\n";
        let spec = ClusterSpec::parse(text).unwrap();
        assert_eq!(spec.bits, 4);
        assert_eq!(spec.shards.len(), 1);
        assert_eq!(
            spec.pool, DEFAULT_POOL_SIZE,
            "a spec without a pool directive gets the default"
        );
    }

    #[test]
    fn duplicate_shard_addresses_are_a_named_error() {
        let text = "universe 0 0 100 100\nbits 6\nshard a:1 0 2048\nshard a:1 2048 4096\n";
        match ClusterSpec::parse(text) {
            Err(ClusterSpecError::DuplicateAddress { addr }) => assert_eq!(addr, "a:1"),
            other => panic!("expected DuplicateAddress, got {other:?}"),
        }
        // distinct addresses on the same host are fine
        let ok = "universe 0 0 100 100\nbits 6\nshard a:1 0 2048\nshard a:2 2048 4096\n";
        ClusterSpec::parse(ok).unwrap();
    }

    #[test]
    fn bad_pool_sizes_are_rejected() {
        let zero = "universe 0 0 100 100\nbits 6\npool 0\nshard a:1 0 4096\n";
        assert!(ClusterSpec::parse(zero).is_err());
        let junk = "universe 0 0 100 100\nbits 6\npool many\nshard a:1 0 4096\n";
        match ClusterSpec::parse(junk) {
            Err(ClusterSpecError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("pool"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "universe 0 0 100 100\nbits 6\nshard a:1 zero 4096\n";
        match ClusterSpec::parse(text) {
            Err(ClusterSpecError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("z-range"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        match ClusterSpec::parse("bits 6\nshard a:1 0 4096\n") {
            Err(ClusterSpecError::BadConfig(m)) => assert!(m.contains("universe"), "{m}"),
            other => panic!("{other:?}"),
        }
        match ClusterSpec::parse("universe 0 0 1 1\nbits 6\nfrobnicate\n") {
            Err(ClusterSpecError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_tiling_ranges_are_rejected() {
        let text = "universe 0 0 100 100\nbits 6\nshard a:1 0 100\nshard b:2 200 4096\n";
        match ClusterSpec::parse(text) {
            Err(ClusterSpecError::BadConfig(m)) => assert!(m.contains("contiguous"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn connect_brings_up_a_live_cluster_over_sockets() {
        let a = crate::server::serve_shard(&crate::server::ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 1000.0,
            ..crate::server::ShardServerConfig::default()
        })
        .unwrap();
        let b = crate::server::serve_shard(&crate::server::ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 1000.0,
            ..crate::server::ShardServerConfig::default()
        })
        .unwrap();
        let spec =
            ClusterSpec::balanced(universe(), 6, &[a.addr().to_string(), b.addr().to_string()]);
        let mut db = spec.connect(Duration::from_secs(5)).unwrap();
        let c = db.try_collection("objs").unwrap();
        let low = db
            .try_insert(
                c,
                scq_region::Region::from_box(AaBox::new([10.0, 10.0], [20.0, 20.0])),
            )
            .unwrap();
        let high = db
            .try_insert(
                c,
                scq_region::Region::from_box(AaBox::new([900.0, 900.0], [920.0, 920.0])),
            )
            .unwrap();
        assert_ne!(db.shard_of(low), db.shard_of(high), "corners shard apart");
        db.check().expect("cluster is consistent");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn connecting_to_a_warm_shard_is_refused() {
        let a = crate::server::serve_shard(&crate::server::ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 1000.0,
            ..crate::server::ShardServerConfig::default()
        })
        .unwrap();
        // Warm the shard through a direct backend connection.
        {
            let mut direct =
                RemoteShard::connect(&a.addr().to_string(), universe(), Duration::from_secs(5))
                    .unwrap();
            crate::backend::ShardBackend::create_collection(&mut direct, "left-behind").unwrap();
        }
        let spec = ClusterSpec::balanced(universe(), 6, &[a.addr().to_string()]);
        match spec.connect(Duration::from_secs(5)) {
            Err(ClusterError::Shard { source, .. }) => {
                assert!(source.to_string().contains("snapshot"), "{source}")
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("warm shard must be refused"),
        }
        a.shutdown();
    }
}
