//! Cluster configuration: which shard processes exist and which
//! z-ranges they own.
//!
//! A [`ClusterSpec`] is the deployment artifact of the multi-process
//! story — the router tier's equivalent of a manifest of backends: the
//! shared universe, the routing grid resolution, and one `(address,
//! z-range)` entry per shard process. [`ClusterSpec::connect`] turns it
//! into a live `ShardedDatabase<RemoteShard>`, validating everything a
//! misconfigured deployment could get wrong — ranges that do not tile
//! the key space, a shard process spanning a different universe, a
//! wire version mismatch, a shard that already holds data — **before**
//! any query runs, because deployment glue that fails quietly is how
//! distributed stores rot.
//!
//! The text format is deliberately trivial (comments, five directive
//! kinds), written and parsed by this module so the CI cluster-smoke
//! script and a human operator author the same file:
//!
//! ```text
//! # scq cluster spec
//! universe 0 0 1000 1000
//! bits 6
//! pool 4
//! breaker 3 1000
//! shard low  127.0.0.1:9101,127.0.0.1:9201 0 2048
//! shard high 127.0.0.1:9102,127.0.0.1:9202 2048 4096
//! ```
//!
//! Each `shard` directive names an **ordered replica set** for one
//! z-range: the first address is the write primary, the rest are read
//! replicas in failover order. The bare three-token form
//! `shard <addr> <zlo> <zhi>` from before replication still parses (a
//! single-replica shard with a generated name). `pool` sizes each
//! replica's client-side connection pool (how many requests may be on
//! the wire to one address at once); `breaker` tunes the per-address
//! circuit breaker (consecutive transport failures to trip, cooldown
//! in milliseconds before a half-open probe). Both are optional with
//! defaults [`DEFAULT_POOL_SIZE`] and [`BreakerConfig::default`].
//! Duplicate addresses — across replica sets, not just across
//! primaries — and duplicate shard names are named validation errors:
//! connecting the same process twice would double-count its objects
//! and desynchronize its mirror.

use std::path::Path;
use std::time::Duration;

use scq_region::AaBox;

use crate::backend::ShardError;
use crate::database::ShardedDatabase;
use crate::remote::{BreakerConfig, RemoteShard, DEFAULT_POOL_SIZE};
use crate::router::{validate_ranges, ShardRouter};

/// One shard — an ordered replica set of processes owning one z-range —
/// in a [`ClusterSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Operator-facing shard name (no whitespace or commas).
    pub name: String,
    /// The replica addresses (`host:port`), in failover order; the
    /// first is the write primary. Never empty.
    pub addrs: Vec<String>,
    /// The half-open z-code range `[lo, hi)` this shard owns.
    pub range: (u64, u64),
}

impl ShardSpec {
    /// The write primary's address (the first replica).
    pub fn primary(&self) -> &str {
        &self.addrs[0]
    }
}

/// A cluster of shard processes: universe, routing grid, connection
/// pool size, breaker tuning, shard list.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// The universe every shard must span.
    pub universe: AaBox<2>,
    /// Routing grid resolution (bits per dimension, `1..=16`).
    pub bits: u32,
    /// Wire connections pooled per replica address (concurrent
    /// in-flight requests to one shard process). At least 1.
    pub pool: usize,
    /// Per-address circuit breaker tuning (trip threshold + cooldown).
    pub breaker: BreakerConfig,
    /// Root directory for per-shard write-ahead logs, when the
    /// deployment is durable: each shard **process** logs under its
    /// own subdirectory ([`ClusterSpec::wal_dir_for`]), so two
    /// replicas never share a log. `None` = in-memory shards (the
    /// pre-WAL behavior).
    pub wal_dir: Option<String>,
    /// Group-commit window in milliseconds for WAL-enabled shard
    /// processes (`None` = the server default,
    /// [`crate::wal::DEFAULT_GROUP_COMMIT_MS`]).
    pub wal_group_commit_ms: Option<u64>,
    /// The shard replica sets, in shard-id order.
    pub shards: Vec<ShardSpec>,
}

/// Errors reading or validating a cluster spec.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterSpecError {
    /// A line failed to parse. Carries the offending line verbatim so
    /// an operator can find the typo without opening the file at the
    /// reported number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line's text (comments stripped, trimmed).
        text: String,
        /// What went wrong.
        message: String,
    },
    /// A required directive is missing or the configuration is
    /// invalid (empty cluster, non-tiling ranges, bad universe…).
    BadConfig(String),
    /// The same process address appears twice — across replica sets,
    /// not just across primaries. Connecting one process twice would
    /// double-count its objects, so this is its own named error
    /// instead of a connect-time surprise.
    DuplicateAddress {
        /// The address that appears more than once.
        addr: String,
    },
    /// Filesystem error reading the spec.
    Io(String),
}

impl std::fmt::Display for ClusterSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterSpecError::Parse {
                line,
                text,
                message,
            } => {
                write!(f, "cluster spec line {line} ({text:?}): {message}")
            }
            ClusterSpecError::BadConfig(m) => write!(f, "bad cluster spec: {m}"),
            ClusterSpecError::DuplicateAddress { addr } => {
                write!(f, "duplicate shard address {addr:?} in cluster spec")
            }
            ClusterSpecError::Io(m) => write!(f, "cluster spec io: {m}"),
        }
    }
}

impl std::error::Error for ClusterSpecError {}

/// Errors bringing a cluster up from a spec.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// The spec itself is invalid.
    Spec(ClusterSpecError),
    /// One shard failed to connect, handshake or validate.
    Shard {
        /// Which shard (index into [`ClusterSpec::shards`]).
        shard: usize,
        /// Its address.
        addr: String,
        /// The failure.
        source: ShardError,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Spec(e) => write!(f, "{e}"),
            ClusterError::Shard {
                shard,
                addr,
                source,
            } => {
                write!(f, "shard {shard} ({addr}): {source}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl ClusterSpec {
    /// A spec giving each address an equal share of the z-key space —
    /// the default deployment shape ([`scq_zorder::shard_ranges`]).
    ///
    /// # Panics
    /// If `addrs` is empty or `bits` is outside `1..=16`.
    pub fn balanced(universe: AaBox<2>, bits: u32, addrs: &[String]) -> Self {
        assert!(!addrs.is_empty(), "a cluster needs at least one shard");
        let sets: Vec<Vec<String>> = addrs.iter().map(|a| vec![a.clone()]).collect();
        Self::balanced_replicated(universe, bits, &sets)
    }

    /// [`ClusterSpec::balanced`] with replica sets: each entry of
    /// `replica_sets` is one shard's ordered address list (primary
    /// first), and the z-key space is split evenly across the sets.
    ///
    /// # Panics
    /// If `replica_sets` is empty or `bits` is outside `1..=16`.
    pub fn balanced_replicated(
        universe: AaBox<2>,
        bits: u32,
        replica_sets: &[Vec<String>],
    ) -> Self {
        assert!(
            !replica_sets.is_empty(),
            "a cluster needs at least one shard"
        );
        let ranges = scq_zorder::shard_ranges(bits, replica_sets.len());
        ClusterSpec {
            universe,
            bits,
            pool: DEFAULT_POOL_SIZE,
            breaker: BreakerConfig::default(),
            wal_dir: None,
            wal_group_commit_ms: None,
            shards: replica_sets
                .iter()
                .zip(ranges)
                .enumerate()
                .map(|(i, (addrs, range))| ShardSpec {
                    name: format!("shard{i}"),
                    addrs: addrs.clone(),
                    range,
                })
                .collect(),
        }
    }

    /// Checks the spec: bits in range, at least one shard, a positive
    /// pool size, a sane breaker, ranges tiling the key space exactly,
    /// well-formed names, and no address named twice — across replica
    /// sets, not just across primaries.
    pub fn validate(&self) -> Result<(), ClusterSpecError> {
        if self.universe.is_empty() {
            return Err(ClusterSpecError::BadConfig("empty universe".into()));
        }
        if self.pool == 0 {
            return Err(ClusterSpecError::BadConfig(
                "pool size must be at least 1".into(),
            ));
        }
        if self.breaker.threshold == 0 {
            return Err(ClusterSpecError::BadConfig(
                "breaker threshold must be at least 1".into(),
            ));
        }
        let malformed =
            |s: &str| s.is_empty() || s.contains(|c: char| c.is_whitespace() || c == ',');
        let mut seen_addrs: Vec<&str> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if malformed(&shard.name) {
                return Err(ClusterSpecError::BadConfig(format!(
                    "bad shard name {:?} (empty, whitespace or comma)",
                    shard.name
                )));
            }
            if self.shards[..i].iter().any(|s| s.name == shard.name) {
                return Err(ClusterSpecError::BadConfig(format!(
                    "duplicate shard name {:?}",
                    shard.name
                )));
            }
            if shard.addrs.is_empty() {
                return Err(ClusterSpecError::BadConfig(format!(
                    "shard {:?} has no replica addresses",
                    shard.name
                )));
            }
            for addr in &shard.addrs {
                if malformed(addr) {
                    return Err(ClusterSpecError::BadConfig(format!(
                        "bad replica address {addr:?} in shard {:?}",
                        shard.name
                    )));
                }
                if seen_addrs.contains(&addr.as_str()) {
                    return Err(ClusterSpecError::DuplicateAddress { addr: addr.clone() });
                }
                seen_addrs.push(addr);
            }
        }
        let ranges: Vec<(u64, u64)> = self.shards.iter().map(|s| s.range).collect();
        validate_ranges(self.bits, &ranges).map_err(ClusterSpecError::BadConfig)
    }

    /// Parses the text format (see the module docs).
    pub fn parse(text: &str) -> Result<Self, ClusterSpecError> {
        let mut universe = None;
        let mut bits = None;
        let mut pool = None;
        let mut breaker = None;
        let mut wal_dir = None;
        let mut wal_group_commit_ms = None;
        let mut shards = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            let parse_err = |message: String| ClusterSpecError::Parse {
                line,
                text: content.to_owned(),
                message,
            };
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let directive = parts.next().expect("nonempty line has a first token");
            let rest: Vec<&str> = parts.collect();
            match directive {
                "universe" => {
                    let [x0, y0, x1, y1] = rest[..] else {
                        return Err(parse_err("usage: universe <x0> <y0> <x1> <y1>".into()));
                    };
                    let mut c = [0.0f64; 4];
                    for (v, s) in c.iter_mut().zip([x0, y0, x1, y1]) {
                        *v = s
                            .parse::<f64>()
                            .ok()
                            .filter(|v| v.is_finite())
                            .ok_or_else(|| parse_err(format!("bad coordinate {s:?}")))?;
                    }
                    universe = Some(AaBox::new([c[0], c[1]], [c[2], c[3]]));
                }
                "bits" => {
                    let [b] = rest[..] else {
                        return Err(parse_err("usage: bits <1..=16>".into()));
                    };
                    bits = Some(
                        b.parse::<u32>()
                            .map_err(|_| parse_err(format!("bad bits {b:?}")))?,
                    );
                }
                "pool" => {
                    let [p] = rest[..] else {
                        return Err(parse_err("usage: pool <connections per shard>".into()));
                    };
                    pool = Some(
                        p.parse::<usize>()
                            .ok()
                            .filter(|&p| p > 0)
                            .ok_or_else(|| parse_err(format!("bad pool size {p:?}")))?,
                    );
                }
                "breaker" => {
                    let [k, ms] = rest[..] else {
                        return Err(parse_err(
                            "usage: breaker <failure threshold> <cooldown ms>".into(),
                        ));
                    };
                    let threshold = k
                        .parse::<usize>()
                        .ok()
                        .filter(|&k| k > 0)
                        .ok_or_else(|| parse_err(format!("bad breaker threshold {k:?}")))?;
                    let cooldown_ms = ms
                        .parse::<u64>()
                        .map_err(|_| parse_err(format!("bad breaker cooldown {ms:?}")))?;
                    breaker = Some(BreakerConfig {
                        threshold,
                        cooldown: Duration::from_millis(cooldown_ms),
                    });
                }
                "wal" => {
                    let (dir, ms) = match rest[..] {
                        [dir] => (dir, None),
                        [dir, ms] => (dir, Some(ms)),
                        _ => return Err(parse_err("usage: wal <dir> [group_commit_ms]".into())),
                    };
                    wal_dir = Some(dir.to_owned());
                    wal_group_commit_ms = match ms {
                        Some(ms) => {
                            Some(ms.parse::<u64>().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                                parse_err(format!("bad group-commit window {ms:?}"))
                            })?)
                        }
                        None => None,
                    };
                }
                "shard" => {
                    // Two arities: the replicated form names the shard
                    // and lists its replica set, the legacy three-token
                    // form is a single-replica shard with a generated
                    // name (kept so pre-replication spec files load).
                    let (name, addr_list, lo, hi) = match rest[..] {
                        [name, addrs, lo, hi] => (name.to_owned(), addrs, lo, hi),
                        [addr, lo, hi] => (format!("shard{}", shards.len()), addr, lo, hi),
                        _ => {
                            return Err(parse_err(
                                "usage: shard <name> <addr>[,<addr>…] <zlo> <zhi> \
                                 (or legacy: shard <addr> <zlo> <zhi>)"
                                    .into(),
                            ))
                        }
                    };
                    let addrs: Vec<String> = addr_list.split(',').map(str::to_owned).collect();
                    if addrs.iter().any(String::is_empty) {
                        return Err(parse_err(format!("bad replica list {addr_list:?}")));
                    }
                    let lo = lo
                        .parse::<u64>()
                        .map_err(|_| parse_err(format!("bad z-range lo {lo:?}")))?;
                    let hi = hi
                        .parse::<u64>()
                        .map_err(|_| parse_err(format!("bad z-range hi {hi:?}")))?;
                    shards.push(ShardSpec {
                        name,
                        addrs,
                        range: (lo, hi),
                    });
                }
                other => {
                    return Err(parse_err(format!(
                        "unknown directive {other:?} \
                         (universe | bits | pool | breaker | wal | shard)"
                    )))
                }
            }
        }
        let spec = ClusterSpec {
            universe: universe
                .ok_or_else(|| ClusterSpecError::BadConfig("missing universe directive".into()))?,
            bits: bits
                .ok_or_else(|| ClusterSpecError::BadConfig("missing bits directive".into()))?,
            pool: pool.unwrap_or(DEFAULT_POOL_SIZE),
            breaker: breaker.unwrap_or_default(),
            wal_dir,
            wal_group_commit_ms,
            shards,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Reads and parses a spec file.
    pub fn load(path: &Path) -> Result<Self, ClusterSpecError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| ClusterSpecError::Io(e.to_string()))?;
        Self::parse(&text)
    }

    /// Renders the spec in the text format [`ClusterSpec::parse`]
    /// reads back.
    pub fn to_text(&self) -> String {
        let lo = self.universe.lo();
        let hi = self.universe.hi();
        let mut out = String::from("# scq cluster spec\n");
        out.push_str(&format!(
            "universe {} {} {} {}\n",
            lo[0], lo[1], hi[0], hi[1]
        ));
        out.push_str(&format!("bits {}\n", self.bits));
        out.push_str(&format!("pool {}\n", self.pool));
        out.push_str(&format!(
            "breaker {} {}\n",
            self.breaker.threshold,
            self.breaker.cooldown.as_millis()
        ));
        if let Some(dir) = &self.wal_dir {
            match self.wal_group_commit_ms {
                Some(ms) => out.push_str(&format!("wal {dir} {ms}\n")),
                None => out.push_str(&format!("wal {dir}\n")),
            }
        }
        for s in &self.shards {
            out.push_str(&format!(
                "shard {} {} {} {}\n",
                s.name,
                s.addrs.join(","),
                s.range.0,
                s.range.1
            ));
        }
        out
    }

    /// Maps a shard-process address to its private WAL subdirectory
    /// under the spec's `wal` directory (`None` when the spec is not
    /// durable). Addresses are sanitized for the filesystem (`:` and
    /// `/` become `_`), so `127.0.0.1:9101` logs under
    /// `<dir>/127.0.0.1_9101/` — two replicas of the same shard get
    /// disjoint logs, which is what makes per-replica crash recovery
    /// sound.
    pub fn wal_dir_for(&self, addr: &str) -> Option<std::path::PathBuf> {
        let dir = self.wal_dir.as_ref()?;
        let safe: String = addr
            .chars()
            .map(|c| if c == ':' || c == '/' { '_' } else { c })
            .collect();
        Some(Path::new(dir).join(safe))
    }

    /// The full [`crate::wal::WalConfig`] for one shard-process
    /// address: [`ClusterSpec::wal_dir_for`] plus the spec's
    /// group-commit window (falling back to the library default).
    pub fn wal_config_for(&self, addr: &str) -> Option<crate::wal::WalConfig> {
        let mut cfg = crate::wal::WalConfig::new(self.wal_dir_for(addr)?);
        if let Some(ms) = self.wal_group_commit_ms {
            cfg.group_commit = Duration::from_millis(ms);
        }
        Some(cfg)
    }

    /// Brings the cluster up: connects to every shard process (polling
    /// each address for up to `wait` — shard processes may still be
    /// booting), validates universes and wire versions, and requires
    /// every shard to be **pristine** (no collections): a warm shard's
    /// global mapping lives in a snapshot manifest, so a restarted
    /// router must restore state through
    /// [`crate::snapshot::reload_from_dir`], never by guessing.
    pub fn connect(&self, wait: Duration) -> Result<ShardedDatabase<RemoteShard>, ClusterError> {
        self.validate().map_err(ClusterError::Spec)?;
        let mut backends = Vec::with_capacity(self.shards.len());
        for (shard, spec) in self.shards.iter().enumerate() {
            let backend = RemoteShard::connect_replicated(
                &spec.addrs,
                self.universe,
                wait,
                self.pool,
                self.breaker,
            )
            .map_err(|source| ClusterError::Shard {
                shard,
                addr: spec.addrs.join(","),
                source,
            })?;
            if !backend.is_pristine() {
                return Err(ClusterError::Shard {
                    shard,
                    addr: spec.addrs.join(","),
                    source: ShardError::Rejected(
                        "shard already holds collections; a restarted router must \
                         reload the cluster from a snapshot directory"
                            .into(),
                    ),
                });
            }
            backends.push(backend);
        }
        let router = ShardRouter::from_ranges(
            &self.universe,
            self.bits,
            self.shards.iter().map(|s| s.range).collect(),
        );
        Ok(ShardedDatabase::from_backends(
            self.universe,
            router,
            backends,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> AaBox<2> {
        AaBox::new([0.0, 0.0], [1000.0, 1000.0])
    }

    #[test]
    fn balanced_spec_round_trips_through_text() {
        let mut spec = ClusterSpec::balanced(
            universe(),
            6,
            &["127.0.0.1:9101".to_string(), "127.0.0.1:9102".to_string()],
        );
        spec.pool = 7; // a non-default pool must survive the round trip
        spec.validate().unwrap();
        let text = spec.to_text();
        let parsed = ClusterSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.pool, 7);
        assert_eq!(parsed.shards[0].range.0, 0);
        assert_eq!(
            parsed.shards[1].range.1,
            scq_zorder::key_space(6),
            "ranges tile the key space"
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text =
            "\n# a comment\nuniverse 0 0 100 100   # trailing comment\n\nbits 4\nshard a:1 0 256\n";
        let spec = ClusterSpec::parse(text).unwrap();
        assert_eq!(spec.bits, 4);
        assert_eq!(spec.shards.len(), 1);
        assert_eq!(
            spec.pool, DEFAULT_POOL_SIZE,
            "a spec without a pool directive gets the default"
        );
    }

    #[test]
    fn duplicate_shard_addresses_are_a_named_error() {
        let text = "universe 0 0 100 100\nbits 6\nshard a:1 0 2048\nshard a:1 2048 4096\n";
        match ClusterSpec::parse(text) {
            Err(ClusterSpecError::DuplicateAddress { addr }) => assert_eq!(addr, "a:1"),
            other => panic!("expected DuplicateAddress, got {other:?}"),
        }
        // distinct addresses on the same host are fine
        let ok = "universe 0 0 100 100\nbits 6\nshard a:1 0 2048\nshard a:2 2048 4096\n";
        ClusterSpec::parse(ok).unwrap();
    }

    #[test]
    fn duplicate_addresses_across_replica_sets_are_rejected() {
        // a:2 is a replica of "low" AND the primary of "high" — the
        // same process would be connected twice.
        let text = "universe 0 0 100 100\nbits 6\n\
                    shard low a:1,a:2 0 2048\nshard high a:2,a:3 2048 4096\n";
        match ClusterSpec::parse(text) {
            Err(ClusterSpecError::DuplicateAddress { addr }) => assert_eq!(addr, "a:2"),
            other => panic!("expected DuplicateAddress, got {other:?}"),
        }
        // an address may not even repeat within one replica set
        let twice = "universe 0 0 100 100\nbits 6\nshard solo a:1,a:1 0 4096\n";
        assert!(matches!(
            ClusterSpec::parse(twice),
            Err(ClusterSpecError::DuplicateAddress { .. })
        ));
    }

    #[test]
    fn replicated_shard_lines_round_trip() {
        let text = "universe 0 0 100 100\nbits 6\nbreaker 5 250\n\
                    shard low a:1,a:2 0 2048\nshard high b:1,b:2,b:3 2048 4096\n";
        let spec = ClusterSpec::parse(text).unwrap();
        assert_eq!(spec.shards[0].name, "low");
        assert_eq!(spec.shards[0].primary(), "a:1");
        assert_eq!(spec.shards[1].addrs, vec!["b:1", "b:2", "b:3"]);
        assert_eq!(spec.breaker.threshold, 5);
        assert_eq!(spec.breaker.cooldown, Duration::from_millis(250));
        let reparsed = ClusterSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(reparsed, spec, "replicated spec survives the round trip");
    }

    #[test]
    fn wal_directive_round_trips_and_maps_addresses() {
        let text = "universe 0 0 100 100\nbits 6\nwal /tmp/scq-wal 12\n\
                    shard low a:1,a:2 0 2048\nshard high b:1 2048 4096\n";
        let spec = ClusterSpec::parse(text).unwrap();
        assert_eq!(spec.wal_dir.as_deref(), Some("/tmp/scq-wal"));
        assert_eq!(spec.wal_group_commit_ms, Some(12));
        let reparsed = ClusterSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(reparsed, spec, "wal directive survives the round trip");

        // per-address subdirectories, filesystem-safe
        assert_eq!(
            spec.wal_dir_for("127.0.0.1:9101").unwrap(),
            Path::new("/tmp/scq-wal").join("127.0.0.1_9101")
        );
        assert_ne!(
            spec.wal_dir_for("a:1"),
            spec.wal_dir_for("a:2"),
            "replicas of one shard must not share a log"
        );
        let cfg = spec.wal_config_for("a:1").unwrap();
        assert_eq!(cfg.group_commit, Duration::from_millis(12));

        // window defaults when omitted; zero / junk windows are loud
        let bare = "universe 0 0 100 100\nbits 6\nwal logs\nshard a:1 0 4096\n";
        let spec = ClusterSpec::parse(bare).unwrap();
        assert_eq!(spec.wal_group_commit_ms, None);
        assert_eq!(
            spec.wal_config_for("a:1").unwrap().group_commit,
            Duration::from_millis(crate::wal::DEFAULT_GROUP_COMMIT_MS)
        );
        assert_eq!(
            ClusterSpec::parse(&spec.to_text()).unwrap(),
            spec,
            "bare wal directive round-trips too"
        );
        let zero = "universe 0 0 100 100\nbits 6\nwal logs 0\nshard a:1 0 4096\n";
        assert!(ClusterSpec::parse(zero).is_err());
        let junk = "universe 0 0 100 100\nbits 6\nwal logs soon\nshard a:1 0 4096\n";
        match ClusterSpec::parse(junk) {
            Err(ClusterSpecError::Parse { line, message, .. }) => {
                assert_eq!(line, 3);
                assert!(message.contains("group-commit"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        // a spec without the directive is simply not durable
        let plain = "universe 0 0 100 100\nbits 6\nshard a:1 0 4096\n";
        let spec = ClusterSpec::parse(plain).unwrap();
        assert_eq!(spec.wal_dir_for("a:1"), None);
        assert_eq!(spec.wal_config_for("a:1"), None);
    }

    #[test]
    fn duplicate_shard_names_are_rejected() {
        let text = "universe 0 0 100 100\nbits 6\n\
                    shard same a:1 0 2048\nshard same a:2 2048 4096\n";
        match ClusterSpec::parse(text) {
            Err(ClusterSpecError::BadConfig(m)) => assert!(m.contains("same"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_pool_sizes_are_rejected() {
        let zero = "universe 0 0 100 100\nbits 6\npool 0\nshard a:1 0 4096\n";
        assert!(ClusterSpec::parse(zero).is_err());
        let junk = "universe 0 0 100 100\nbits 6\npool many\nshard a:1 0 4096\n";
        match ClusterSpec::parse(junk) {
            Err(ClusterSpecError::Parse { line, message, .. }) => {
                assert_eq!(line, 3);
                assert!(message.contains("pool"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_breaker_directives_are_rejected() {
        let zero = "universe 0 0 100 100\nbits 6\nbreaker 0 100\nshard a:1 0 4096\n";
        assert!(ClusterSpec::parse(zero).is_err());
        let junk = "universe 0 0 100 100\nbits 6\nbreaker 3 soon\nshard a:1 0 4096\n";
        match ClusterSpec::parse(junk) {
            Err(ClusterSpecError::Parse { line, message, .. }) => {
                assert_eq!(line, 3);
                assert!(message.contains("cooldown"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers_and_text() {
        let text = "universe 0 0 100 100\nbits 6\nshard a:1 zero 4096   # oops\n";
        match ClusterSpec::parse(text) {
            Err(ClusterSpecError::Parse {
                line,
                text,
                message,
            }) => {
                assert_eq!(line, 3);
                assert_eq!(text, "shard a:1 zero 4096", "the offending line, verbatim");
                assert!(message.contains("z-range"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        match ClusterSpec::parse("bits 6\nshard a:1 0 4096\n") {
            Err(ClusterSpecError::BadConfig(m)) => assert!(m.contains("universe"), "{m}"),
            other => panic!("{other:?}"),
        }
        match ClusterSpec::parse("universe 0 0 1 1\nbits 6\nfrobnicate\n") {
            Err(ClusterSpecError::Parse { line, text, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(text, "frobnicate");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_tiling_ranges_are_rejected() {
        let text = "universe 0 0 100 100\nbits 6\nshard a:1 0 100\nshard b:2 200 4096\n";
        match ClusterSpec::parse(text) {
            Err(ClusterSpecError::BadConfig(m)) => assert!(m.contains("contiguous"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn connect_brings_up_a_live_cluster_over_sockets() {
        let a = crate::server::serve_shard(&crate::server::ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 1000.0,
            ..crate::server::ShardServerConfig::default()
        })
        .unwrap();
        let b = crate::server::serve_shard(&crate::server::ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 1000.0,
            ..crate::server::ShardServerConfig::default()
        })
        .unwrap();
        let spec =
            ClusterSpec::balanced(universe(), 6, &[a.addr().to_string(), b.addr().to_string()]);
        let mut db = spec.connect(Duration::from_secs(5)).unwrap();
        let c = db.try_collection("objs").unwrap();
        let low = db
            .try_insert(
                c,
                scq_region::Region::from_box(AaBox::new([10.0, 10.0], [20.0, 20.0])),
            )
            .unwrap();
        let high = db
            .try_insert(
                c,
                scq_region::Region::from_box(AaBox::new([900.0, 900.0], [920.0, 920.0])),
            )
            .unwrap();
        assert_ne!(db.shard_of(low), db.shard_of(high), "corners shard apart");
        db.check().expect("cluster is consistent");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn connecting_to_a_warm_shard_is_refused() {
        let a = crate::server::serve_shard(&crate::server::ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 1000.0,
            ..crate::server::ShardServerConfig::default()
        })
        .unwrap();
        // Warm the shard through a direct backend connection.
        {
            let mut direct =
                RemoteShard::connect(&a.addr().to_string(), universe(), Duration::from_secs(5))
                    .unwrap();
            crate::backend::ShardBackend::create_collection(&mut direct, "left-behind").unwrap();
        }
        let spec = ClusterSpec::balanced(universe(), 6, &[a.addr().to_string()]);
        match spec.connect(Duration::from_secs(5)) {
            Err(ClusterError::Shard { source, .. }) => {
                assert!(source.to_string().contains("snapshot"), "{source}")
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("warm shard must be refused"),
        }
        a.shutdown();
    }
}
