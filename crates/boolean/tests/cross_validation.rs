//! Cross-validation of the crate's three independent semantic engines:
//! two-valued evaluation, the BDD, and the Blake canonical form with
//! syllogistic reasoning. Any disagreement means a bug in one of them.

use proptest::prelude::*;
use scq_boolean::bcf;
use scq_boolean::quant;
use scq_boolean::{blake_canonical_form, formula_to_sop, Bdd, Formula, Var};

fn formula_strategy(nvars: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        4 => (0..nvars).prop_map(|i| Formula::var(Var(i))),
        1 => Just(Formula::Zero),
        1 => Just(Formula::One),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::or(a, b)),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BDD agrees with brute-force truth tables.
    #[test]
    fn bdd_matches_truth_table(f in formula_strategy(4)) {
        let mut bdd = Bdd::new();
        let n = bdd.from_formula(&f);
        let count = bdd.sat_count(n, 4);
        let brute = (0u32..16)
            .filter(|&bits| f.eval2(|v| bits >> v.0 & 1 == 1))
            .count() as u64;
        prop_assert_eq!(count, brute);
    }

    /// BCF preserves semantics and is canonical.
    #[test]
    fn bcf_semantics_and_canonicity(f in formula_strategy(4)) {
        let cf = blake_canonical_form(&f);
        for bits in 0u32..16 {
            let assign = |v: Var| bits >> v.0 & 1 == 1;
            prop_assert_eq!(cf.eval2(assign), f.eval2(assign));
        }
        // canonicity: BCF of a syntactic variant is identical
        let variant = Formula::not(Formula::not(Formula::or(f.clone(), Formula::Zero)));
        prop_assert_eq!(
            blake_canonical_form(&variant).sorted_cubes(),
            cf.sorted_cubes()
        );
    }

    /// Syllogistic implication (via BCF) agrees with the BDD.
    #[test]
    fn implication_engines_agree(f in formula_strategy(3), g in formula_strategy(3)) {
        let mut bdd = Bdd::new();
        prop_assert_eq!(bcf::implies(&f, &g), bdd.implies(&f, &g));
        prop_assert_eq!(bcf::equivalent(&f, &g), bdd.equivalent(&f, &g));
    }

    /// DNF conversion preserves semantics.
    #[test]
    fn dnf_preserves_semantics(f in formula_strategy(4)) {
        let sop = formula_to_sop(&f);
        for bits in 0u32..16 {
            let assign = |v: Var| bits >> v.0 & 1 == 1;
            prop_assert_eq!(sop.eval2(assign), f.eval2(assign));
        }
    }

    /// Boole's quantification theorem checked through the BDD:
    /// `∃x (f = 0)` over the two-valued algebra means some cofactor is
    /// unsatisfiable pointwise: f0·f1 evaluates to 0.
    #[test]
    fn boole_elimination_agrees_with_bdd(f in formula_strategy(3)) {
        let mut bdd = Bdd::new();
        let e = quant::exists_eq0(&f, Var(0));
        // for every assignment of the other vars: e = 0 iff some value
        // of x0 makes f evaluate to 0.
        for bits in 0u32..8 {
            let assign = |v: Var| bits >> v.0 & 1 == 1;
            let e_val = e.eval2(assign);
            let exists = [false, true].iter().any(|&x0| {
                !f.eval2(|v| if v == Var(0) { x0 } else { assign(v) })
            });
            prop_assert_eq!(!e_val, exists);
        }
        let _ = bdd.from_formula(&e); // exercise BDD path too
    }

    /// Schröder's range form is equivalent to the equation, pointwise.
    #[test]
    fn schroder_range_equivalence(f in formula_strategy(3)) {
        let (s, t) = quant::schroder_range(&f, Var(0));
        for bits in 0u32..8 {
            let assign = |v: Var| bits >> v.0 & 1 == 1;
            let f_zero = !f.eval2(assign);
            let x = assign(Var(0));
            let s_val = s.eval2(assign);
            let t_val = t.eval2(assign);
            // f = 0 ⟺ s ≤ x ≤ t  (in Bool2: s→x and x→t)
            let in_range = (!s_val || x) && (!x || t_val);
            prop_assert_eq!(f_zero, in_range);
        }
    }

    /// Boole expansion is the identity.
    #[test]
    fn boole_expansion_identity(f in formula_strategy(3)) {
        let (p, q) = quant::boole_expansion(&f, Var(1));
        let back = quant::expand(Var(1), &p, &q);
        let mut bdd = Bdd::new();
        prop_assert!(bdd.equivalent(&f, &back));
    }
}
