//! Product-of-sums forms and prime *implicates* — the duals of the SOP
//! machinery, used by Blake's theorem in its dual form (the paper
//! mentions "Blake canonical forms and their duals" before Theorem 19).
//!
//! A clause is a disjunction of literals; we reuse [`Cube`] as the
//! literal container and interpret it disjunctively via [`Pos`].
//! Consensus on clauses is propositional **resolution**, and the dual
//! Blake canonical form is the conjunction of all prime implicates.

use crate::bcf::bcf_of_sop;
use crate::cube::{Cube, Sop};
use crate::dnf::complement_to_sop;
use crate::formula::Formula;
use crate::var::Var;

/// A product of sums: a conjunction of clauses.
///
/// Each [`Cube`] in `clauses` is read as the *disjunction* of its
/// literals. The empty product is the constant `1`; a product containing
/// the empty clause is `0`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Pos {
    clauses: Vec<Cube>,
}

impl Pos {
    /// The constant `1` (empty conjunction).
    pub fn one() -> Self {
        Pos::default()
    }

    /// The constant `0` (contains the empty clause).
    pub fn zero() -> Self {
        Pos {
            clauses: vec![Cube::one()],
        }
    }

    /// The clauses (each cube read disjunctively).
    pub fn clauses(&self) -> &[Cube] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether there are no clauses (the constant `1`).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Whether this is syntactically the constant `1`.
    pub fn is_one(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Whether the product contains the empty clause (constant `0`).
    pub fn is_zero(&self) -> bool {
        self.clauses.iter().any(Cube::is_one)
    }

    /// Two-valued evaluation (each clause is a disjunction).
    pub fn eval2<F: Fn(Var) -> bool + Copy>(&self, assign: F) -> bool {
        self.clauses
            .iter()
            .all(|c| c.literals().any(|l| assign(l.var) == l.positive))
    }

    /// Converts to a formula: conjunction of clause disjunctions.
    pub fn to_formula(&self) -> Formula {
        Formula::and_all(
            self.clauses
                .iter()
                .map(|c| Formula::or_all(c.literals().map(|l| l.to_formula()))),
        )
    }

    /// Canonically ordered clause list.
    pub fn sorted_clauses(&self) -> Vec<Cube> {
        let mut v = self.clauses.clone();
        v.sort();
        v
    }
}

/// Negates every literal of a cube (De Morgan bridge between cube and
/// clause worlds: `¬(l₁ ∧ … ∧ lₙ) = ¬l₁ ∨ … ∨ ¬lₙ`).
fn negate_literals(c: &Cube) -> Cube {
    Cube::from_literals(c.literals().map(|l| l.complement()))
        .expect("negating distinct literals cannot clash")
}

/// Converts a formula to product-of-sums form.
///
/// Via duality: the SOP of `¬f`, with every cube's literals negated,
/// is a CNF of `f`.
pub fn formula_to_pos(f: &Formula) -> Pos {
    let not_f = complement_to_sop(f);
    Pos {
        clauses: not_f.cubes().iter().map(negate_literals).collect(),
    }
}

/// The dual Blake canonical form: the conjunction of all **prime
/// implicates** of `f` (clauses `c` with `f ≤ c`, minimal under literal
/// deletion). Computed by running iterated consensus on `¬f` (clause
/// consensus = resolution, by duality) and negating back.
pub fn dual_blake_canonical_form(f: &Formula) -> Pos {
    let not_f_bcf: Sop = bcf_of_sop(complement_to_sop(f));
    Pos {
        clauses: not_f_bcf.cubes().iter().map(negate_literals).collect(),
    }
}

/// The prime implicates of `f` in canonical order.
pub fn prime_implicates(f: &Formula) -> Vec<Cube> {
    dual_blake_canonical_form(f).sorted_clauses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Literal;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn equivalent(f: &Formula, p: &Pos, nvars: u32) {
        for bits in 0u32..(1 << nvars) {
            let assign = |x: Var| bits >> x.0 & 1 == 1;
            assert_eq!(p.eval2(assign), f.eval2(assign), "bits = {bits:b}");
        }
    }

    #[test]
    fn cnf_preserves_semantics() {
        let f = Formula::or(
            Formula::and(v(0), v(1)),
            Formula::and(Formula::not(v(1)), v(2)),
        );
        let p = formula_to_pos(&f);
        equivalent(&f, &p, 3);
        let g = p.to_formula();
        let mut bdd = crate::bdd::Bdd::new();
        assert!(bdd.equivalent(&f, &g));
    }

    #[test]
    fn constants() {
        assert!(formula_to_pos(&Formula::One).is_one());
        assert!(formula_to_pos(&Formula::Zero).is_zero());
        assert_eq!(Pos::one().to_formula(), Formula::One);
        assert!(Pos::zero().is_zero());
        assert!(!Pos::zero().eval2(|_| true));
    }

    #[test]
    fn prime_implicates_are_implied_and_minimal() {
        let f = Formula::and(
            Formula::or(v(0), v(1)),
            Formula::or(Formula::not(v(1)), v(2)),
        );
        let implicates = prime_implicates(&f);
        assert!(!implicates.is_empty());
        for clause in &implicates {
            // f ⟹ clause on all assignments
            for bits in 0u32..8 {
                let assign = |x: Var| bits >> x.0 & 1 == 1;
                if f.eval2(assign) {
                    assert!(
                        clause.literals().any(|l| assign(l.var) == l.positive),
                        "clause {clause} not implied"
                    );
                }
            }
            // minimal: dropping any literal breaks implication
            for l in clause.literals() {
                let smaller: Vec<Literal> = clause.literals().filter(|&m| m != l).collect();
                if smaller.is_empty() {
                    continue;
                }
                let violated = (0u32..8).any(|bits| {
                    let assign = |x: Var| bits >> x.0 & 1 == 1;
                    f.eval2(assign) && !smaller.iter().any(|m| assign(m.var) == m.positive)
                });
                assert!(violated, "clause {clause} not prime");
            }
        }
    }

    #[test]
    fn resolution_finds_derived_implicates() {
        // (x ∨ y)(¬x ∨ z) has the resolvent (y ∨ z) as a prime implicate.
        let f = Formula::and(
            Formula::or(v(0), v(1)),
            Formula::or(Formula::not(v(0)), v(2)),
        );
        let implicates = prime_implicates(&f);
        let want = Cube::from_literals([Literal::pos(Var(1)), Literal::pos(Var(2))]).unwrap();
        assert!(
            implicates.contains(&want),
            "resolvent y∨z missing: {implicates:?}"
        );
    }

    #[test]
    fn dual_blake_is_canonical() {
        let f1 = Formula::and(Formula::or(v(0), v(1)), Formula::or(v(0), v(2)));
        let f2 = Formula::or(v(0), Formula::and(v(1), v(2)));
        assert_eq!(
            dual_blake_canonical_form(&f1).sorted_clauses(),
            dual_blake_canonical_form(&f2).sorted_clauses()
        );
        equivalent(&f1, &dual_blake_canonical_form(&f1), 3);
    }

    #[test]
    fn duality_round_trip() {
        // prime implicates of f = negated prime implicants of ¬f
        let f = Formula::xor(v(0), v(1));
        let implicates = prime_implicates(&f);
        let not_f = Formula::not(f);
        let implicants = crate::bcf::prime_implicants(&not_f);
        let negated: Vec<Cube> = implicants.iter().map(negate_literals).collect();
        let mut negated = negated;
        negated.sort();
        assert_eq!(implicates, negated);
    }
}
