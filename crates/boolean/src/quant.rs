//! The classical theorems of Boole and Schröder as executable rewrites.
//!
//! These are the formula-level building blocks of the paper's Section 3:
//!
//! * **Theorem 2 (Boole)** — `∃x (f = 0)  ⟺  f[x←0] · f[x←1] = 0`.
//! * **Theorem 10 (Schröder)** — `f = 0  ⟺  f[x←0] ≤ x ≤ ¬f[x←1]`,
//!   turning an equation into a *range constraint* on `x`.
//! * **Theorem 11 (Boole expansion)** — `f = x·f[x←1] ∨ ¬x·f[x←0]`,
//!   isolating `x` in disequations.

use crate::formula::Formula;
use crate::var::Var;

/// Boole's elimination (Theorem 2): the formula `e` with
/// `∃x (f = 0) ⟺ e = 0`, namely `e = f[x←0] ∧ f[x←1]`.
pub fn exists_eq0(f: &Formula, x: Var) -> Formula {
    Formula::and(f.cofactor(x, false), f.cofactor(x, true))
}

/// The range form of `f = 0` with respect to `x` (Schröder, Theorem 10):
/// returns `(s, t)` such that `f = 0 ⟺ s ≤ x ≤ t` where `s = f[x←0]`
/// and `t = ¬f[x←1]`.
pub fn schroder_range(f: &Formula, x: Var) -> (Formula, Formula) {
    (f.cofactor(x, false), Formula::not(f.cofactor(x, true)))
}

/// Boole's expansion (Theorem 11): returns `(p, q)` with
/// `f ≡ x·p ∨ ¬x·q`, i.e. `p = f[x←1]`, `q = f[x←0]`.
pub fn boole_expansion(f: &Formula, x: Var) -> (Formula, Formula) {
    (f.cofactor(x, true), f.cofactor(x, false))
}

/// Reassembles Boole's expansion — useful for round-trip checks.
pub fn expand(x: Var, p: &Formula, q: &Formula) -> Formula {
    Formula::or(
        Formula::and(Formula::var(x), p.clone()),
        Formula::and(Formula::not(Formula::var(x)), q.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::Bdd;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn boole_expansion_round_trips() {
        let mut bdd = Bdd::new();
        let f = Formula::or(
            Formula::and(v(0), Formula::not(v(1))),
            Formula::and(v(2), v(0)),
        );
        let (p, q) = boole_expansion(&f, Var(0));
        assert!(!p.mentions(Var(0)));
        assert!(!q.mentions(Var(0)));
        let back = expand(Var(0), &p, &q);
        assert!(bdd.equivalent(&f, &back));
    }

    #[test]
    fn exists_eq0_two_valued_semantics() {
        // In the two-valued algebra ∃x f=0 means: some x∈{0,1} makes f
        // evaluate to 0 under every assignment of the other vars.
        let f = Formula::and(v(0), v(1)); // f=0 solvable for x0 always (x0:=0)
        let e = exists_eq0(&f, Var(0));
        let mut bdd = Bdd::new();
        assert!(bdd.is_zero_formula(&e), "e = 0 identically");

        let g = Formula::One; // never 0
        let eg = exists_eq0(&g, Var(0));
        assert!(bdd.is_one_formula(&eg), "unsolvable stays 1 ≠ 0");
    }

    #[test]
    fn schroder_range_brackets_solutions() {
        // f = x ⊕ y: f=0 iff x=y, so range should pin x to y: s=y, t=y.
        let mut bdd = Bdd::new();
        let f = Formula::xor(v(0), v(1));
        let (s, t) = schroder_range(&f, Var(0));
        assert!(bdd.equivalent(&s, &v(1)));
        assert!(bdd.equivalent(&t, &v(1)));
    }

    #[test]
    fn schroder_solvability_matches_boole() {
        // s ≤ t is solvable iff s ∧ ¬t = 0 iff f0 ∧ f1 = 0 (Boole).
        let mut bdd = Bdd::new();
        let f = Formula::or(
            Formula::and(v(0), v(1)),
            Formula::and(Formula::not(v(0)), v(2)),
        );
        let (s, t) = schroder_range(&f, Var(0));
        let s_not_t = Formula::diff(s, t);
        let boole = exists_eq0(&f, Var(0));
        assert!(bdd.equivalent(&s_not_t, &boole));
    }
}
