//! Conversion between [`Formula`] trees and sum-of-products ([`Sop`]) form.
//!
//! The conversion pushes negations to the leaves (negation normal form) and
//! distributes conjunction over disjunction. This is worst-case exponential
//! — as the paper notes for its Algorithms 1 and 2 — but runs at query
//! *compilation* time on small constraint systems.

use crate::cube::{Cube, Literal, Sop};
use crate::formula::Formula;

/// Converts a formula to sum-of-products form (with absorption applied).
pub fn formula_to_sop(f: &Formula) -> Sop {
    to_sop(f, true)
}

/// Converts the *complement* of a formula to sum-of-products form.
pub fn complement_to_sop(f: &Formula) -> Sop {
    to_sop(f, false)
}

fn to_sop(f: &Formula, polarity: bool) -> Sop {
    match (f, polarity) {
        (Formula::Zero, true) | (Formula::One, false) => Sop::zero(),
        (Formula::One, true) | (Formula::Zero, false) => Sop::one(),
        (Formula::Var(v), p) => Sop::from_cubes([Cube::literal(Literal {
            var: *v,
            positive: p,
        })]),
        (Formula::Not(g), p) => to_sop(g, !p),
        (Formula::And(a, b), true) | (Formula::Or(a, b), false) => {
            to_sop(a, polarity).and(&to_sop(b, polarity))
        }
        (Formula::Or(a, b), true) | (Formula::And(a, b), false) => {
            to_sop(a, polarity).or(&to_sop(b, polarity))
        }
    }
}

/// Converts an SOP back to a formula.
pub fn sop_to_formula(s: &Sop) -> Formula {
    s.to_formula()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// Exhaustively checks semantic equality of two-valued functions.
    fn equivalent(f: &Formula, s: &Sop, nvars: u32) {
        for bits in 0u32..(1 << nvars) {
            let assign = |x: Var| bits >> x.0 & 1 == 1;
            assert_eq!(
                f.eval2(assign),
                s.eval2(assign),
                "bits={bits:b} f={f} s={s}"
            );
        }
    }

    #[test]
    fn simple_conversions() {
        let f = Formula::and(Formula::or(v(0), v(1)), Formula::not(v(2)));
        let s = formula_to_sop(&f);
        equivalent(&f, &s, 3);
    }

    #[test]
    fn negation_pushes_through() {
        // ~(x & (y | ~z)) = ~x | ~y & z
        let f = Formula::not(Formula::and(v(0), Formula::or(v(1), Formula::not(v(2)))));
        let s = formula_to_sop(&f);
        equivalent(&f, &s, 3);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn complement_to_sop_is_negation() {
        let f = Formula::or(Formula::and(v(0), v(1)), v(2));
        let s = complement_to_sop(&f);
        let not_f = Formula::not(f);
        equivalent(&not_f, &s, 3);
    }

    #[test]
    fn contradictions_vanish() {
        // x & ~x ⇒ empty SOP
        let f = Formula::And(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        assert!(formula_to_sop(&f).is_zero());
    }

    #[test]
    fn tautology_collapses() {
        // x | ~x ⇒ contains complementary single-literal cubes; not
        // necessarily the single cube 1, but semantically 1.
        let f = Formula::Or(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        let s = formula_to_sop(&f);
        equivalent(&f, &s, 1);
    }

    #[test]
    fn xor_has_two_cubes() {
        let f = Formula::xor(v(0), v(1));
        let s = formula_to_sop(&f);
        equivalent(&f, &s, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn round_trip_formula() {
        let f = Formula::or(Formula::and(v(0), Formula::not(v(1))), v(2));
        let s = formula_to_sop(&f);
        let g = sop_to_formula(&s);
        equivalent(&g, &s, 3);
    }
}
