//! Literals, terms (cubes) and sum-of-products forms.
//!
//! The Blake canonical form machinery (consensus, absorption, syllogistic
//! order) operates on these types rather than on raw [`Formula`] trees.

use std::collections::BTreeMap;
use std::fmt;

use crate::formula::Formula;
use crate::var::{Var, VarTable};

/// A literal: a variable or its complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Literal {
    /// The underlying variable.
    pub var: Var,
    /// `true` for the positive literal `x`, `false` for `~x`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal of `var`.
    pub fn pos(var: Var) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: Var) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// The literal with opposite polarity.
    pub fn complement(self) -> Self {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Converts to a formula.
    pub fn to_formula(self) -> Formula {
        if self.positive {
            Formula::var(self.var)
        } else {
            Formula::not(Formula::var(self.var))
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.var)
        } else {
            write!(f, "~{}", self.var)
        }
    }
}

/// A *term* (cube): a conjunction of literals over distinct variables.
///
/// The empty cube is the constant `1`. Contradictory cubes (`x & ~x`)
/// cannot be represented; the constructors return `None` instead, which
/// callers interpret as the constant `0`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Cube {
    lits: BTreeMap<Var, bool>,
}

impl Cube {
    /// The empty cube — the constant `1`.
    pub fn one() -> Self {
        Cube::default()
    }

    /// A single-literal cube.
    pub fn literal(l: Literal) -> Self {
        let mut lits = BTreeMap::new();
        lits.insert(l.var, l.positive);
        Cube { lits }
    }

    /// Builds a cube from literals; `None` if two literals clash.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(it: I) -> Option<Self> {
        let mut c = Cube::one();
        for l in it {
            c = c.and_literal(l)?;
        }
        Some(c)
    }

    /// Conjunction with one more literal; `None` on contradiction.
    pub fn and_literal(&self, l: Literal) -> Option<Self> {
        match self.lits.get(&l.var) {
            Some(&p) if p != l.positive => None,
            Some(_) => Some(self.clone()),
            None => {
                let mut lits = self.lits.clone();
                lits.insert(l.var, l.positive);
                Some(Cube { lits })
            }
        }
    }

    /// Conjunction of two cubes; `None` on contradiction.
    pub fn and(&self, other: &Cube) -> Option<Self> {
        let (small, big) = if self.lits.len() <= other.lits.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = big.clone();
        for (&v, &p) in &small.lits {
            out = out.and_literal(Literal {
                var: v,
                positive: p,
            })?;
        }
        Some(out)
    }

    /// Number of literals.
    #[allow(clippy::len_without_is_empty)] // the zero-literal cube is the constant 1 (`is_one`)
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the constant `1` (no literals).
    pub fn is_one(&self) -> bool {
        self.lits.is_empty()
    }

    /// Polarity of `v` in this cube, if present.
    pub fn polarity(&self, v: Var) -> Option<bool> {
        self.lits.get(&v).copied()
    }

    /// Iterates over the literals in variable order.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        self.lits
            .iter()
            .map(|(&var, &positive)| Literal { var, positive })
    }

    /// Whether `self` *subsumes* (absorbs) `other`: every literal of
    /// `self` occurs in `other`, hence `other ≤ self` as functions.
    ///
    /// Absorption rewrites `p ∨ p·q → p`; this predicate is the `p ⊇ p·q`
    /// test.
    pub fn subsumes(&self, other: &Cube) -> bool {
        if self.lits.len() > other.lits.len() {
            return false;
        }
        self.lits.iter().all(|(v, p)| other.lits.get(v) == Some(p))
    }

    /// The *consensus* of two cubes (Quine / Blake).
    ///
    /// If exactly one variable appears with opposite polarity in the two
    /// cubes, the consensus is their conjunction with that variable
    /// removed: `x·p ∨ ~x·q  ⟹  x·p ∨ ~x·q ∨ p·q`. Returns `None` when
    /// the cubes clash in zero or in more than one variable.
    pub fn consensus(&self, other: &Cube) -> Option<Cube> {
        let mut clash: Option<Var> = None;
        for (&v, &p) in &self.lits {
            if let Some(&q) = other.lits.get(&v) {
                if p != q {
                    if clash.is_some() {
                        return None; // two clashes ⇒ consensus is 0
                    }
                    clash = Some(v);
                }
            }
        }
        let clash = clash?;
        let mut lits = BTreeMap::new();
        for (&v, &p) in self.lits.iter().chain(other.lits.iter()) {
            if v != clash {
                lits.insert(v, p);
            }
        }
        Some(Cube { lits })
    }

    /// Two-valued evaluation.
    pub fn eval2<F: Fn(Var) -> bool>(&self, assign: F) -> bool {
        self.lits.iter().all(|(&v, &p)| assign(v) == p)
    }

    /// Converts to a [`Formula`] (meet of the literals).
    pub fn to_formula(&self) -> Formula {
        Formula::and_all(self.literals().map(Literal::to_formula))
    }

    /// The cube with all negative literals dropped.
    ///
    /// Used by Algorithm 2 of the paper when computing the best *upper*
    /// bounding-box approximation: `U_f` keeps only positive atoms.
    pub fn positive_part(&self) -> Cube {
        Cube {
            lits: self
                .lits
                .iter()
                .filter(|(_, &p)| p)
                .map(|(&v, &p)| (v, p))
                .collect(),
        }
    }

    /// Restricts the cube by fixing `v := value`.
    ///
    /// Returns `Some(reduced)` when the cube does not become `0`, i.e.
    /// when `v` is absent or matches `value`; `None` otherwise.
    pub fn cofactor(&self, v: Var, value: bool) -> Option<Cube> {
        match self.lits.get(&v) {
            None => Some(self.clone()),
            Some(&p) if p == value => {
                let mut lits = self.lits.clone();
                lits.remove(&v);
                Some(Cube { lits })
            }
            Some(_) => None,
        }
    }

    /// Pretty-prints with names from `table`.
    pub fn display<'a>(&'a self, table: &'a VarTable) -> CubeDisplay<'a> {
        CubeDisplay { cube: self, table }
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for l in self.literals() {
            if !first {
                write!(f, " & ")?;
            }
            write!(f, "{l}")?;
            first = false;
        }
        Ok(())
    }
}

/// Pretty-printer for cubes with a name table.
pub struct CubeDisplay<'a> {
    cube: &'a Cube,
    table: &'a VarTable,
}

impl fmt::Display for CubeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cube.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for l in self.cube.literals() {
            if !first {
                write!(f, " & ")?;
            }
            if !l.positive {
                write!(f, "~")?;
            }
            write!(f, "{}", self.table.display(l.var))?;
            first = false;
        }
        Ok(())
    }
}

/// A sum of products: a disjunction of [`Cube`]s.
///
/// The empty SOP is the constant `0`. SOPs are kept *absorbed* (no cube
/// subsumes another) by [`Sop::push`] and [`Sop::absorb`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Sop {
    cubes: Vec<Cube>,
}

impl Sop {
    /// The constant `0` (empty disjunction).
    pub fn zero() -> Self {
        Sop::default()
    }

    /// The constant `1` (the single empty cube).
    pub fn one() -> Self {
        Sop {
            cubes: vec![Cube::one()],
        }
    }

    /// Builds from cubes, applying absorption.
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(it: I) -> Self {
        let mut s = Sop::zero();
        for c in it {
            s.push(c);
        }
        s
    }

    /// Adds a cube unless it is absorbed; drops newly-absorbed cubes.
    ///
    /// Returns `true` if the cube was inserted.
    pub fn push(&mut self, c: Cube) -> bool {
        if self.cubes.iter().any(|existing| existing.subsumes(&c)) {
            return false;
        }
        self.cubes.retain(|existing| !c.subsumes(existing));
        self.cubes.push(c);
        true
    }

    /// The cubes of this SOP.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Whether this is the constant `0`.
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Whether this SOP contains the empty cube (and hence is `1`).
    pub fn is_one(&self) -> bool {
        self.cubes.iter().any(Cube::is_one)
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether there are no cubes.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Disjunction of two SOPs (with absorption).
    pub fn or(&self, other: &Sop) -> Sop {
        let mut out = self.clone();
        for c in &other.cubes {
            out.push(c.clone());
        }
        out
    }

    /// Conjunction of two SOPs by distribution (with absorption).
    pub fn and(&self, other: &Sop) -> Sop {
        let mut out = Sop::zero();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.and(b) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Removes all cubes subsumed by another cube (already maintained by
    /// `push`; exposed for callers that mutate `cubes` directly).
    pub fn absorb(&mut self) {
        let mut kept: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        'outer: for (i, c) in self.cubes.iter().enumerate() {
            for (j, d) in self.cubes.iter().enumerate() {
                if i != j && d.subsumes(c) && (!c.subsumes(d) || j < i) {
                    continue 'outer; // c is absorbed (ties keep first copy)
                }
            }
            kept.push(c.clone());
        }
        self.cubes = kept;
    }

    /// Two-valued evaluation.
    pub fn eval2<F: Fn(Var) -> bool + Copy>(&self, assign: F) -> bool {
        self.cubes.iter().any(|c| c.eval2(assign))
    }

    /// Canonically ordered list of cubes (for deterministic comparisons).
    pub fn sorted_cubes(&self) -> Vec<Cube> {
        let mut v = self.cubes.clone();
        v.sort();
        v
    }

    /// Converts to a [`Formula`].
    pub fn to_formula(&self) -> Formula {
        Formula::or_all(self.cubes.iter().map(Cube::to_formula))
    }

    /// The set of variables mentioned.
    pub fn vars(&self) -> std::collections::BTreeSet<Var> {
        let mut out = std::collections::BTreeSet::new();
        for c in &self.cubes {
            for l in c.literals() {
                out.insert(l.var);
            }
        }
        out
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for c in &self.cubes {
            if !first {
                write!(f, " | ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(i: u32) -> Literal {
        Literal::pos(Var(i))
    }
    fn ln(i: u32) -> Literal {
        Literal::neg(Var(i))
    }

    #[test]
    fn cube_contradiction_is_none() {
        assert!(Cube::from_literals([lp(0), ln(0)]).is_none());
        let c = Cube::from_literals([lp(0), lp(1)]).unwrap();
        assert!(c.and_literal(ln(1)).is_none());
    }

    #[test]
    fn cube_and_merges() {
        let a = Cube::from_literals([lp(0)]).unwrap();
        let b = Cube::from_literals([ln(1)]).unwrap();
        let ab = a.and(&b).unwrap();
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.polarity(Var(0)), Some(true));
        assert_eq!(ab.polarity(Var(1)), Some(false));
    }

    #[test]
    fn subsumption() {
        let p = Cube::from_literals([lp(0)]).unwrap();
        let pq = Cube::from_literals([lp(0), lp(1)]).unwrap();
        assert!(p.subsumes(&pq));
        assert!(!pq.subsumes(&p));
        assert!(Cube::one().subsumes(&p));
    }

    #[test]
    fn consensus_basic() {
        // x&y and ~x&z clash only on x ⇒ consensus y&z
        let a = Cube::from_literals([lp(0), lp(1)]).unwrap();
        let b = Cube::from_literals([ln(0), lp(2)]).unwrap();
        let c = a.consensus(&b).unwrap();
        assert_eq!(c, Cube::from_literals([lp(1), lp(2)]).unwrap());
    }

    #[test]
    fn consensus_requires_exactly_one_clash() {
        let a = Cube::from_literals([lp(0), lp(1)]).unwrap();
        let b = Cube::from_literals([ln(0), ln(1)]).unwrap();
        assert!(a.consensus(&b).is_none(), "two clashes");
        let c = Cube::from_literals([lp(0), lp(2)]).unwrap();
        let d = Cube::from_literals([lp(0), lp(3)]).unwrap();
        assert!(c.consensus(&d).is_none(), "no clash");
    }

    #[test]
    fn consensus_is_implied() {
        // soundness: a ∨ b ⟹ a ∨ b ∨ consensus(a,b) is an equivalence;
        // check consensus ≤ a ∨ b on all assignments of 3 vars.
        let a = Cube::from_literals([lp(0), lp(1)]).unwrap();
        let b = Cube::from_literals([ln(0), lp(2)]).unwrap();
        let c = a.consensus(&b).unwrap();
        for bits in 0u32..8 {
            let assign = |v: Var| bits >> v.0 & 1 == 1;
            if c.eval2(assign) {
                assert!(a.eval2(assign) || b.eval2(assign));
            }
        }
    }

    #[test]
    fn sop_push_absorbs() {
        let mut s = Sop::zero();
        assert!(s.push(Cube::from_literals([lp(0), lp(1)]).unwrap()));
        assert!(s.push(Cube::from_literals([lp(0)]).unwrap()));
        assert_eq!(s.len(), 1, "x absorbs x&y");
        assert!(!s.push(Cube::from_literals([lp(0), ln(2)]).unwrap()));
    }

    #[test]
    fn sop_and_distributes() {
        // (x | y) & (~x | z) = x&z | y&~x | y&z
        let left = Sop::from_cubes([Cube::literal(lp(0)), Cube::literal(lp(1))]);
        let right = Sop::from_cubes([Cube::literal(ln(0)), Cube::literal(lp(2))]);
        let prod = left.and(&right);
        for bits in 0u32..8 {
            let assign = |v: Var| bits >> v.0 & 1 == 1;
            assert_eq!(
                prod.eval2(assign),
                left.eval2(assign) && right.eval2(assign)
            );
        }
    }

    #[test]
    fn sop_constants() {
        assert!(Sop::zero().is_zero());
        assert!(Sop::one().is_one());
        assert_eq!(Sop::zero().to_formula(), Formula::Zero);
        assert_eq!(Sop::one().to_formula(), Formula::One);
    }

    #[test]
    fn positive_part_drops_negatives() {
        let c = Cube::from_literals([lp(0), ln(1), lp(2)]).unwrap();
        let p = c.positive_part();
        assert_eq!(p, Cube::from_literals([lp(0), lp(2)]).unwrap());
    }

    #[test]
    fn cube_cofactor() {
        let c = Cube::from_literals([lp(0), ln(1)]).unwrap();
        assert_eq!(
            c.cofactor(Var(0), true).unwrap(),
            Cube::from_literals([ln(1)]).unwrap()
        );
        assert!(c.cofactor(Var(0), false).is_none());
        assert_eq!(c.cofactor(Var(5), true).unwrap(), c);
    }

    #[test]
    fn display_cube_and_sop() {
        let c = Cube::from_literals([lp(0), ln(1)]).unwrap();
        assert_eq!(c.to_string(), "x0 & ~x1");
        let s = Sop::from_cubes([c, Cube::literal(lp(2))]);
        assert_eq!(s.to_string(), "x0 & ~x1 | x2");
        assert_eq!(Sop::zero().to_string(), "0");
        assert_eq!(Cube::one().to_string(), "1");
    }
}
