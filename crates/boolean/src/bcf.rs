//! The Blake canonical form (BCF) — the disjunction of *all prime
//! implicants* of a Boolean function — computed by Blake's method of
//! iterated consensus and absorption, exactly as in §4 of the paper:
//!
//! > One method first converts `f` to an arbitrary sum-of-products formula
//! > and then repeatedly forms the consensus of two terms in `f` and
//! > simplifies by absorption until a fixpoint is reached.
//!
//! The BCF drives Algorithm 2 (best bounding-box approximations): the best
//! lower approximation `L_f` is the join of the single-atom terms of
//! `BCF(f)` (Theorem 16), and the best upper approximation `U_f` is
//! obtained by dropping negative literals from a sum-of-products form
//! (Theorem 18).
//!
//! Blake's theorem (Theorem 19 in the paper) reduces the *semantic* test
//! `g ≤ f` to the *syntactic* syllogistic test `g ≼ BCF(f)`; see
//! [`syllogistic_le`] and [`implies`].

use crate::cube::{Cube, Sop};
use crate::dnf::formula_to_sop;
use crate::formula::Formula;

/// Computes the Blake canonical form of `f`: the SOP of all prime
/// implicants, with no absorbed terms.
///
/// Worst-case exponential in the number of variables (as the paper notes,
/// acceptable because it runs during query compilation).
pub fn blake_canonical_form(f: &Formula) -> Sop {
    bcf_of_sop(formula_to_sop(f))
}

/// Iterated consensus + absorption on an SOP until fixpoint.
pub fn bcf_of_sop(start: Sop) -> Sop {
    if start.is_one() {
        return Sop::one();
    }
    let mut cubes: Vec<Cube> = start.sorted_cubes();
    // Work-list algorithm: try consensus between every pair; inserted
    // consensus terms participate in further rounds. Absorption is
    // maintained eagerly by `Sop::push`.
    let mut sop = Sop::from_cubes(cubes.drain(..));
    loop {
        let snapshot = sop.sorted_cubes();
        let mut grew = false;
        for i in 0..snapshot.len() {
            for j in (i + 1)..snapshot.len() {
                if let Some(c) = snapshot[i].consensus(&snapshot[j]) {
                    if c.is_one() {
                        return Sop::one();
                    }
                    grew |= sop.push(c);
                }
            }
        }
        if !grew {
            break;
        }
    }
    sop
}

/// The prime implicants of `f`, in canonical (sorted) order.
pub fn prime_implicants(f: &Formula) -> Vec<Cube> {
    blake_canonical_form(f).sorted_cubes()
}

/// Syllogistic order on SOP formulas (paper, before Theorem 19):
/// `g ≼ f` iff every term of `g` has a *subterm* in `f` — i.e. for each
/// cube of `g` some cube of `f` subsumes it.
pub fn syllogistic_le(g: &Sop, f: &Sop) -> bool {
    g.cubes()
        .iter()
        .all(|gc| f.cubes().iter().any(|fc| fc.subsumes(gc)))
}

/// Semantic implication `g ⟹ f` decided via Blake's theorem:
/// `g ≤ f ⟺ g ≼ BCF(f)` for any SOP `g`.
pub fn implies(g: &Formula, f: &Formula) -> bool {
    let g_sop = formula_to_sop(g);
    let f_bcf = blake_canonical_form(f);
    syllogistic_le(&g_sop, &f_bcf)
}

/// Semantic equivalence via two implications.
pub fn equivalent(f: &Formula, g: &Formula) -> bool {
    implies(f, g) && implies(g, f)
}

/// The single-atom (positive, length-1) terms of an SOP — the atoms `x`
/// with `x ≤ f` when the SOP is a BCF (paper, Theorem 16).
pub fn single_atom_terms(bcf: &Sop) -> Vec<crate::var::Var> {
    let mut out: Vec<crate::var::Var> = bcf
        .cubes()
        .iter()
        .filter(|c| c.len() == 1)
        .filter_map(|c| {
            let l = c.literals().next().expect("len 1");
            l.positive.then_some(l.var)
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Literal;
    use crate::var::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn cube(lits: &[(u32, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(i, p)| Literal {
            var: Var(i),
            positive: p,
        }))
        .unwrap()
    }

    /// Checks BCF(f) ≡ f on all assignments.
    fn semantically_equal(f: &Formula, s: &Sop, nvars: u32) {
        for bits in 0u32..(1 << nvars) {
            let assign = |x: Var| bits >> x.0 & 1 == 1;
            assert_eq!(f.eval2(assign), s.eval2(assign), "bits={bits:b}");
        }
    }

    #[test]
    fn paper_example_2() {
        // §4 Example 2: f = (x & y) | (~x & y) | (x & z & ~w).
        // BCF(f) = y | x & z & ~w  (consensus on x yields y, which absorbs
        // both xy and ~xy).
        let (x, y, z, w) = (0, 1, 2, 3);
        let f = Formula::or_all([
            Formula::and(v(x), v(y)),
            Formula::and(Formula::not(v(x)), v(y)),
            Formula::and_all([v(x), v(z), Formula::not(v(w))]),
        ]);
        let bcf = blake_canonical_form(&f);
        let expected = Sop::from_cubes([
            cube(&[(y, true)]),
            cube(&[(x, true), (z, true), (w, false)]),
        ]);
        assert_eq!(bcf.sorted_cubes(), expected.sorted_cubes());
        semantically_equal(&f, &bcf, 4);
        // Example 3: the only single-atom term is y.
        assert_eq!(single_atom_terms(&bcf), vec![Var(y)]);
    }

    #[test]
    fn bcf_of_tautology_is_one() {
        let f = Formula::Or(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        assert!(blake_canonical_form(&f).is_one());
    }

    #[test]
    fn bcf_of_contradiction_is_zero() {
        let f = Formula::And(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        assert!(blake_canonical_form(&f).is_zero());
    }

    #[test]
    fn classic_consensus_chain() {
        // f = x&y | ~x&z has the derived prime implicant y&z.
        let f = Formula::or(
            Formula::and(v(0), v(1)),
            Formula::and(Formula::not(v(0)), v(2)),
        );
        let pis = prime_implicants(&f);
        assert!(pis.contains(&cube(&[(1, true), (2, true)])));
        assert_eq!(pis.len(), 3);
        semantically_equal(&f, &blake_canonical_form(&f), 3);
    }

    #[test]
    fn prime_implicants_are_implicants_and_prime() {
        let f = Formula::or_all([
            Formula::and(v(0), v(1)),
            Formula::and(Formula::not(v(1)), v(2)),
            Formula::and(v(0), v(2)),
        ]);
        let pis = prime_implicants(&f);
        for p in &pis {
            // implicant: p ⟹ f on all assignments
            for bits in 0u32..8 {
                let assign = |x: Var| bits >> x.0 & 1 == 1;
                if p.eval2(assign) {
                    assert!(f.eval2(assign), "{p} not an implicant");
                }
            }
            // prime: dropping any literal breaks implication
            for l in p.literals() {
                let mut shrunk: Vec<Literal> = p.literals().filter(|&m| m != l).collect();
                let smaller = Cube::from_literals(shrunk.drain(..)).unwrap();
                let violated = (0u32..8).any(|bits| {
                    let assign = |x: Var| bits >> x.0 & 1 == 1;
                    smaller.eval2(assign) && !f.eval2(assign)
                });
                assert!(violated, "{p} not prime: {smaller} still implies f");
            }
        }
    }

    #[test]
    fn syllogistic_matches_semantics() {
        let f = Formula::or(v(0), Formula::and(v(1), v(2)));
        let g = Formula::and(v(0), v(1));
        assert!(implies(&g, &f));
        assert!(!implies(&f, &g));
        assert!(equivalent(&f, &f));
    }

    #[test]
    fn implies_handles_constants() {
        assert!(implies(&Formula::Zero, &v(0)));
        assert!(implies(&v(0), &Formula::One));
        assert!(!implies(&Formula::One, &v(0)));
    }

    #[test]
    fn single_atom_terms_ignore_negative_literals() {
        // BCF of ~x is the single cube ~x: not a positive atom.
        let f = Formula::not(v(0));
        let bcf = blake_canonical_form(&f);
        assert!(single_atom_terms(&bcf).is_empty());
    }

    #[test]
    fn bcf_is_canonical_across_representations() {
        // Two different formulas for the same function get the same BCF.
        // x | x&y  vs  x
        let f1 = Formula::Or(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::and(v(0), v(1))),
        );
        let f2 = v(0);
        assert_eq!(
            blake_canonical_form(&f1).sorted_cubes(),
            blake_canonical_form(&f2).sorted_cubes()
        );
        // (x|y)&(x|z)  vs  x | y&z
        let g1 = Formula::and(Formula::or(v(0), v(1)), Formula::or(v(0), v(2)));
        let g2 = Formula::or(v(0), Formula::and(v(1), v(2)));
        assert_eq!(
            blake_canonical_form(&g1).sorted_cubes(),
            blake_canonical_form(&g2).sorted_cubes()
        );
    }
}
