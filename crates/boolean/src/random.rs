//! Seeded random generators for formulas, cubes and SOPs.
//!
//! Used by property tests and by the benchmark workload generators; all
//! functions take an external [`Rng`] so callers control seeding and
//! reproducibility.

use rand::{Rng, RngExt};

use crate::cube::{Cube, Literal, Sop};
use crate::formula::Formula;
use crate::var::Var;

/// Parameters for random formula generation.
#[derive(Clone, Copy, Debug)]
pub struct FormulaConfig {
    /// Number of distinct variables `x0..x{nvars-1}`.
    pub nvars: u32,
    /// Maximum AST depth.
    pub depth: u32,
    /// Probability of generating a constant leaf instead of a variable.
    pub const_prob: f64,
}

impl Default for FormulaConfig {
    fn default() -> Self {
        FormulaConfig {
            nvars: 4,
            depth: 5,
            const_prob: 0.05,
        }
    }
}

/// Generates a random formula.
pub fn random_formula<R: Rng + ?Sized>(rng: &mut R, cfg: &FormulaConfig) -> Formula {
    if cfg.depth == 0 || rng.random_range(0..4) == 0 {
        if rng.random_bool(cfg.const_prob) {
            return if rng.random_bool(0.5) {
                Formula::Zero
            } else {
                Formula::One
            };
        }
        return Formula::var(Var(rng.random_range(0..cfg.nvars)));
    }
    let smaller = FormulaConfig {
        depth: cfg.depth - 1,
        ..*cfg
    };
    match rng.random_range(0..3) {
        0 => Formula::not(random_formula(rng, &smaller)),
        1 => Formula::and(random_formula(rng, &smaller), random_formula(rng, &smaller)),
        _ => Formula::or(random_formula(rng, &smaller), random_formula(rng, &smaller)),
    }
}

/// Generates a random cube over `nvars` variables with roughly
/// `literals` literals (duplicate picks are merged).
pub fn random_cube<R: Rng + ?Sized>(rng: &mut R, nvars: u32, literals: u32) -> Cube {
    let mut c = Cube::one();
    for _ in 0..literals {
        let var = Var(rng.random_range(0..nvars));
        let lit = Literal {
            var,
            positive: rng.random_bool(0.5),
        };
        // A clashing literal would zero the cube; flip it instead.
        c = match c.and_literal(lit) {
            Some(next) => next,
            None => c
                .and_literal(lit.complement())
                .expect("complement cannot clash"),
        };
    }
    c
}

/// Generates a random SOP with `ncubes` cubes of about `lits_per_cube`
/// literals each.
pub fn random_sop<R: Rng + ?Sized>(
    rng: &mut R,
    nvars: u32,
    ncubes: u32,
    lits_per_cube: u32,
) -> Sop {
    Sop::from_cubes((0..ncubes).map(|_| random_cube(rng, nvars, lits_per_cube)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_under_seed() {
        let cfg = FormulaConfig {
            nvars: 5,
            depth: 6,
            const_prob: 0.1,
        };
        let f1 = random_formula(&mut StdRng::seed_from_u64(42), &cfg);
        let f2 = random_formula(&mut StdRng::seed_from_u64(42), &cfg);
        assert_eq!(f1, f2);
    }

    #[test]
    fn respects_variable_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = FormulaConfig {
            nvars: 3,
            depth: 8,
            const_prob: 0.0,
        };
        for _ in 0..50 {
            let f = random_formula(&mut rng, &cfg);
            assert!(f.vars().iter().all(|v| v.0 < 3));
        }
    }

    #[test]
    fn random_cube_never_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let c = random_cube(&mut rng, 4, 6);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn random_sop_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = random_sop(&mut rng, 6, 8, 3);
        assert!(s.len() <= 8);
        assert!(s.vars().iter().all(|v| v.0 < 6));
    }
}
