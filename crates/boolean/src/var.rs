//! Variables and the name table mapping them to human-readable identifiers.

use std::collections::HashMap;
use std::fmt;

/// A Boolean variable, identified by a dense non-negative index.
///
/// Variables are pure identities; display names are kept externally in a
/// [`VarTable`] so that formulas stay tiny and `Copy`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Bidirectional mapping between variable names and [`Var`] identities.
///
/// Interning the same name twice yields the same variable:
///
/// ```
/// use scq_boolean::VarTable;
/// let mut t = VarTable::new();
/// let a = t.intern("A");
/// assert_eq!(a, t.intern("A"));
/// assert_eq!(t.name(a), "A");
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    by_name: HashMap<String, Var>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the variable for `name`, creating it if necessary.
    pub fn intern(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), v);
        v
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Var> {
        self.by_name.get(name).copied()
    }

    /// The display name of `v`. Falls back to `x<index>` for variables that
    /// were never interned through this table.
    pub fn name(&self, v: Var) -> &str {
        self.names.get(v.index()).map(String::as_str).unwrap_or("")
    }

    /// Resolves `v` to its name, or a synthesized `x<index>` name.
    pub fn display(&self, v: Var) -> String {
        match self.names.get(v.index()) {
            Some(n) => n.clone(),
            None => format!("{v}"),
        }
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned variables in index order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = VarTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_and_name_round_trip() {
        let mut t = VarTable::new();
        let a = t.intern("A");
        assert_eq!(t.get("A"), Some(a));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.name(a), "A");
        assert_eq!(t.display(a), "A");
        assert_eq!(t.display(Var(99)), "x99");
    }

    #[test]
    fn iter_yields_in_index_order() {
        let mut t = VarTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let got: Vec<Var> = t.iter().collect();
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn var_display_and_ord() {
        assert_eq!(Var(3).to_string(), "x3");
        assert!(Var(1) < Var(2));
        assert_eq!(Var(7).index(), 7);
    }
}
