//! A small recursive-descent parser for Boolean formulas.
//!
//! Grammar (precedence low → high; `|`/`+`/`\/` are synonyms, as are
//! `&`/`*`/`/\` and `~`/`!`):
//!
//! ```text
//! or    := xor ( ("|" | "+" | "\/") xor )*
//! xor   := and ( "^" and )*
//! and   := not ( ("&" | "*" | "/\") not )*
//! not   := ("~" | "!") not | atom
//! atom  := "0" | "1" | ident | "(" or ")"
//! ident := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! Identifiers are interned into the caller's [`VarTable`], so parsing the
//! same name in two formulas yields the same [`crate::Var`].

use std::fmt;

use crate::formula::Formula;
use crate::var::VarTable;

/// Error produced by [`parse_formula`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position of the offending token.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Zero,
    One,
    Ident(String),
    Not,
    And,
    Or,
    Xor,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '0' => {
                toks.push((i, Tok::Zero));
                i += 1;
            }
            '1' => {
                toks.push((i, Tok::One));
                i += 1;
            }
            '~' | '!' => {
                toks.push((i, Tok::Not));
                i += 1;
            }
            '&' | '*' => {
                toks.push((i, Tok::And));
                i += 1;
            }
            '|' | '+' => {
                toks.push((i, Tok::Or));
                i += 1;
            }
            '^' => {
                toks.push((i, Tok::Xor));
                i += 1;
            }
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'\\' => {
                toks.push((i, Tok::And));
                i += 2;
            }
            '\\' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                toks.push((i, Tok::Or));
                i += 2;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((start, Tok::Ident(input[start..i].to_owned())));
            }
            other => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    table: &'a mut VarTable,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(p, _)| p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn or_expr(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.xor_expr()?;
        while matches!(self.peek(), Some(Tok::Or)) {
            self.bump();
            let g = self.xor_expr()?;
            f = Formula::or(f, g);
        }
        Ok(f)
    }

    fn xor_expr(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Xor)) {
            self.bump();
            let g = self.and_expr()?;
            f = Formula::xor(f, g);
        }
        Ok(f)
    }

    fn and_expr(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.not_expr()?;
        while matches!(self.peek(), Some(Tok::And)) {
            self.bump();
            let g = self.not_expr()?;
            f = Formula::and(f, g);
        }
        Ok(f)
    }

    fn not_expr(&mut self) -> Result<Formula, ParseError> {
        if matches!(self.peek(), Some(Tok::Not)) {
            self.bump();
            let f = self.not_expr()?;
            return Ok(Formula::not(f));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Zero) => Ok(Formula::Zero),
            Some(Tok::One) => Ok(Formula::One),
            Some(Tok::Ident(name)) => Ok(Formula::var(self.table.intern(&name))),
            Some(Tok::LParen) => {
                let f = self.or_expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(f),
                    _ => Err(ParseError {
                        position: at,
                        message: "unclosed parenthesis".into(),
                    }),
                }
            }
            Some(t) => Err(ParseError {
                position: at,
                message: format!("unexpected token {t:?}"),
            }),
            None => Err(ParseError {
                position: at,
                message: "unexpected end of input".into(),
            }),
        }
    }
}

/// Parses a formula, interning variable names into `table`.
///
/// ```
/// use scq_boolean::{parse_formula, VarTable};
/// let mut t = VarTable::new();
/// let f = parse_formula("(A | B) & ~C", &mut t).unwrap();
/// assert_eq!(f.display(&t).to_string(), "(A | B) & ~C");
/// ```
pub fn parse_formula(input: &str, table: &mut VarTable) -> Result<Formula, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        table,
        input_len: input.len(),
    };
    let f = p.or_expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            position: p.here(),
            message: "trailing input".into(),
        });
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::Bdd;
    use crate::var::Var;

    fn parse(s: &str) -> (Formula, VarTable) {
        let mut t = VarTable::new();
        let f = parse_formula(s, &mut t).unwrap();
        (f, t)
    }

    #[test]
    fn precedence() {
        let (f, t) = parse("a | b & c");
        let a = Formula::var(t.get("a").unwrap());
        let b = Formula::var(t.get("b").unwrap());
        let c = Formula::var(t.get("c").unwrap());
        assert_eq!(f, Formula::or(a, Formula::and(b, c)));
    }

    #[test]
    fn synonyms() {
        let (f1, _) = parse("a /\\ b \\/ ~c");
        let (f2, _) = parse("a & b | !c");
        let (f3, _) = parse("a * b + ~c");
        assert_eq!(f1, f2);
        assert_eq!(f2, f3);
    }

    #[test]
    fn xor_parses() {
        let (f, _) = parse("a ^ b");
        let mut bdd = Bdd::new();
        let g = Formula::xor(Formula::var(Var(0)), Formula::var(Var(1)));
        assert!(bdd.equivalent(&f, &g));
    }

    #[test]
    fn constants_and_parens() {
        let (f, _) = parse("(0 | 1) & (a)");
        assert_eq!(f.to_string(), "x0");
    }

    #[test]
    fn same_name_same_var() {
        let mut t = VarTable::new();
        let f = parse_formula("A & A", &mut t).unwrap();
        assert_eq!(f, Formula::var(t.get("A").unwrap()));
        let g = parse_formula("A | B", &mut t).unwrap();
        assert!(g.mentions(t.get("A").unwrap()));
    }

    #[test]
    fn errors() {
        let mut t = VarTable::new();
        assert!(parse_formula("", &mut t).is_err());
        assert!(parse_formula("a &", &mut t).is_err());
        assert!(parse_formula("(a", &mut t).is_err());
        assert!(parse_formula("a b", &mut t).is_err());
        assert!(parse_formula("a $ b", &mut t).is_err());
        let e = parse_formula("a @", &mut t).unwrap_err();
        assert_eq!(e.position, 2);
        assert!(e.to_string().contains("byte 2"));
    }

    #[test]
    fn display_round_trip() {
        for src in ["a & b | ~c", "(a | b) & c", "~(a & b)", "a ^ b & c"] {
            let mut t = VarTable::new();
            let f = parse_formula(src, &mut t).unwrap();
            let printed = f.display(&t).to_string();
            let mut t2 = t.clone();
            let g = parse_formula(&printed, &mut t2).unwrap();
            let mut bdd = Bdd::new();
            assert!(bdd.equivalent(&f, &g), "{src} -> {printed}");
        }
    }
}
