//! The Boolean formula AST.
//!
//! Formulas are immutable trees with [`Arc`]-shared subterms, so cloning is
//! O(1) and the cofactor/substitution machinery used by the triangularizer
//! can freely duplicate subformulas.
//!
//! All constructors perform *light* simplification (constant folding,
//! involution, idempotence on structurally equal operands). Semantic
//! simplification and equivalence checks are the job of
//! [`crate::Bdd`] and [`crate::bcf`].

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::var::{Var, VarTable};

/// A Boolean formula over [`Var`]s with constants `0` and `1`.
///
/// The representation deliberately keeps only the three classical
/// connectives (complement, meet, join). Derived connectives (xor,
/// difference, implication) are provided as constructor methods.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The bottom element `0` (the empty region).
    Zero,
    /// The top element `1` (the universe).
    One,
    /// A variable.
    Var(Var),
    /// Complement.
    Not(Arc<Formula>),
    /// Meet (intersection / conjunction).
    And(Arc<Formula>, Arc<Formula>),
    /// Join (union / disjunction).
    Or(Arc<Formula>, Arc<Formula>),
}

impl Formula {
    /// The constant `0`.
    pub fn zero() -> Self {
        Formula::Zero
    }

    /// The constant `1`.
    pub fn one() -> Self {
        Formula::One
    }

    /// A variable atom.
    pub fn var(v: Var) -> Self {
        Formula::Var(v)
    }

    /// Complement with involution and constant folding.
    #[allow(clippy::should_implement_trait)] // algebraic constructor, not unary operator
    pub fn not(f: Formula) -> Self {
        match f {
            Formula::Zero => Formula::One,
            Formula::One => Formula::Zero,
            Formula::Not(inner) => (*inner).clone(),
            other => Formula::Not(Arc::new(other)),
        }
    }

    /// Meet with unit/zero/idempotence folding.
    pub fn and(a: Formula, b: Formula) -> Self {
        match (&a, &b) {
            (Formula::Zero, _) | (_, Formula::Zero) => Formula::Zero,
            (Formula::One, _) => b,
            (_, Formula::One) => a,
            _ if a == b => a,
            _ => Formula::And(Arc::new(a), Arc::new(b)),
        }
    }

    /// Join with unit/zero/idempotence folding.
    pub fn or(a: Formula, b: Formula) -> Self {
        match (&a, &b) {
            (Formula::One, _) | (_, Formula::One) => Formula::One,
            (Formula::Zero, _) => b,
            (_, Formula::Zero) => a,
            _ if a == b => a,
            _ => Formula::Or(Arc::new(a), Arc::new(b)),
        }
    }

    /// `a \ b` — set difference, `a ∧ ¬b`.
    pub fn diff(a: Formula, b: Formula) -> Self {
        Formula::and(a, Formula::not(b))
    }

    /// Symmetric difference `a ⊕ b = (a ∧ ¬b) ∨ (¬a ∧ b)`.
    ///
    /// This is the classical encoding of the equality constraint `a = b`
    /// as a single equation `a ⊕ b = 0` (paper, Theorem 1).
    pub fn xor(a: Formula, b: Formula) -> Self {
        Formula::or(Formula::diff(a.clone(), b.clone()), Formula::diff(b, a))
    }

    /// n-ary join of an iterator of formulas.
    pub fn or_all<I: IntoIterator<Item = Formula>>(it: I) -> Self {
        it.into_iter().fold(Formula::Zero, Formula::or)
    }

    /// n-ary meet of an iterator of formulas.
    pub fn and_all<I: IntoIterator<Item = Formula>>(it: I) -> Self {
        it.into_iter().fold(Formula::One, Formula::and)
    }

    /// Whether this formula is syntactically the constant `0`.
    ///
    /// For a *semantic* zero test use [`crate::Bdd::is_zero_formula`].
    pub fn is_zero(&self) -> bool {
        matches!(self, Formula::Zero)
    }

    /// Whether this formula is syntactically the constant `1`.
    pub fn is_one(&self) -> bool {
        matches!(self, Formula::One)
    }

    /// The set of variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::Zero | Formula::One => {}
            Formula::Var(v) => {
                out.insert(*v);
            }
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Whether `v` occurs in the formula.
    pub fn mentions(&self, v: Var) -> bool {
        match self {
            Formula::Zero | Formula::One => false,
            Formula::Var(w) => *w == v,
            Formula::Not(f) => f.mentions(v),
            Formula::And(a, b) | Formula::Or(a, b) => a.mentions(v) || b.mentions(v),
        }
    }

    /// Substitutes `replacement` for every occurrence of `v`, re-running
    /// the simplifying constructors bottom-up.
    pub fn subst(&self, v: Var, replacement: &Formula) -> Formula {
        match self {
            Formula::Zero | Formula::One => self.clone(),
            Formula::Var(w) => {
                if *w == v {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Formula::Not(f) => Formula::not(f.subst(v, replacement)),
            Formula::And(a, b) => Formula::and(a.subst(v, replacement), b.subst(v, replacement)),
            Formula::Or(a, b) => Formula::or(a.subst(v, replacement), b.subst(v, replacement)),
        }
    }

    /// The cofactor `f[v ← value]`: `v` replaced by a constant.
    ///
    /// Cofactors are the workhorse of Boole's method: the paper writes
    /// `f_x(0)` and `f_x(1)` for `cofactor(x, false)` / `cofactor(x, true)`.
    pub fn cofactor(&self, v: Var, value: bool) -> Formula {
        let c = if value { Formula::One } else { Formula::Zero };
        self.subst(v, &c)
    }

    /// Two-valued evaluation under an assignment of `bool`s to variables.
    ///
    /// This is evaluation in the two-element Boolean algebra; evaluation in
    /// arbitrary algebras lives in `scq-algebra`.
    pub fn eval2<F: Fn(Var) -> bool + Copy>(&self, assign: F) -> bool {
        match self {
            Formula::Zero => false,
            Formula::One => true,
            Formula::Var(v) => assign(*v),
            Formula::Not(f) => !f.eval2(assign),
            Formula::And(a, b) => a.eval2(assign) && b.eval2(assign),
            Formula::Or(a, b) => a.eval2(assign) || b.eval2(assign),
        }
    }

    /// Number of AST nodes — a crude size metric used by benches and by
    /// the triangularizer's statistics.
    pub fn size(&self) -> usize {
        match self {
            Formula::Zero | Formula::One | Formula::Var(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(a, b) | Formula::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Pretty-prints the formula with names resolved through `table`.
    pub fn display<'a>(&'a self, table: &'a VarTable) -> FormulaDisplay<'a> {
        FormulaDisplay {
            f: self,
            table: Some(table),
        }
    }

    fn fmt_prec(
        &self,
        out: &mut fmt::Formatter<'_>,
        table: Option<&VarTable>,
        prec: u8,
    ) -> fmt::Result {
        // precedence: Or = 1, And = 2, Not = 3, atoms = 4
        match self {
            Formula::Zero => write!(out, "0"),
            Formula::One => write!(out, "1"),
            Formula::Var(v) => match table {
                Some(t) => write!(out, "{}", t.display(*v)),
                None => write!(out, "{v}"),
            },
            Formula::Not(f) => {
                write!(out, "~")?;
                f.fmt_prec(out, table, 3)
            }
            Formula::And(a, b) => {
                let need = prec > 2;
                if need {
                    write!(out, "(")?;
                }
                a.fmt_prec(out, table, 2)?;
                write!(out, " & ")?;
                b.fmt_prec(out, table, 2)?;
                if need {
                    write!(out, ")")?;
                }
                Ok(())
            }
            Formula::Or(a, b) => {
                let need = prec > 1;
                if need {
                    write!(out, "(")?;
                }
                a.fmt_prec(out, table, 1)?;
                write!(out, " | ")?;
                b.fmt_prec(out, table, 1)?;
                if need {
                    write!(out, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, None, 0)
    }
}

/// Helper returned by [`Formula::display`] that prints variable names.
pub struct FormulaDisplay<'a> {
    f: &'a Formula,
    table: Option<&'a VarTable>,
}

impl fmt::Display for FormulaDisplay<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.f.fmt_prec(out, self.table, 0)
    }
}

impl From<Var> for Formula {
    fn from(v: Var) -> Self {
        Formula::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn constructors_fold_constants() {
        assert_eq!(Formula::and(Formula::Zero, v(0)), Formula::Zero);
        assert_eq!(Formula::and(v(0), Formula::One), v(0));
        assert_eq!(Formula::or(Formula::One, v(0)), Formula::One);
        assert_eq!(Formula::or(v(0), Formula::Zero), v(0));
        assert_eq!(Formula::not(Formula::Zero), Formula::One);
        assert_eq!(Formula::not(Formula::not(v(1))), v(1));
    }

    #[test]
    fn idempotence_on_equal_operands() {
        let f = Formula::and(v(0), v(0));
        assert_eq!(f, v(0));
        let g = Formula::or(Formula::and(v(0), v(1)), Formula::and(v(0), v(1)));
        assert_eq!(g, Formula::and(v(0), v(1)));
    }

    #[test]
    fn xor_truth_table() {
        let f = Formula::xor(v(0), v(1));
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let got = f.eval2(|x| if x == Var(0) { a } else { b });
            assert_eq!(got, a ^ b, "xor({a},{b})");
        }
    }

    #[test]
    fn cofactor_eliminates_variable() {
        let f = Formula::or(Formula::and(v(0), v(1)), Formula::not(v(0)));
        let f0 = f.cofactor(Var(0), false);
        let f1 = f.cofactor(Var(0), true);
        assert!(!f0.mentions(Var(0)));
        assert!(!f1.mentions(Var(0)));
        assert_eq!(f0, Formula::One);
        assert_eq!(f1, v(1));
    }

    #[test]
    fn subst_replaces_all_occurrences() {
        let f = Formula::or(v(0), Formula::and(v(0), v(1)));
        let g = f.subst(Var(0), &v(2));
        assert!(!g.mentions(Var(0)));
        assert!(g.mentions(Var(2)));
    }

    #[test]
    fn vars_collects_all() {
        let f = Formula::and(Formula::or(v(0), v(3)), Formula::not(v(1)));
        let vs = f.vars();
        assert_eq!(
            vs.into_iter().collect::<Vec<_>>(),
            vec![Var(0), Var(1), Var(3)]
        );
    }

    #[test]
    fn display_respects_precedence() {
        let f = Formula::and(Formula::or(v(0), v(1)), Formula::not(v(2)));
        assert_eq!(f.to_string(), "(x0 | x1) & ~x2");
        let g = Formula::or(Formula::and(v(0), v(1)), v(2));
        assert_eq!(g.to_string(), "x0 & x1 | x2");
    }

    #[test]
    fn display_with_table_uses_names() {
        let mut t = VarTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        let f = Formula::and(Formula::var(a), Formula::not(Formula::var(b)));
        assert_eq!(f.display(&t).to_string(), "A & ~B");
    }

    #[test]
    fn size_counts_nodes() {
        let f = Formula::and(v(0), Formula::not(v(1)));
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn n_ary_helpers() {
        let f = Formula::or_all([v(0), v(1), v(2)]);
        assert!(f.eval2(|x| x == Var(2)));
        let g = Formula::and_all([v(0), v(1)]);
        assert!(!g.eval2(|x| x == Var(1)));
        assert_eq!(Formula::or_all(std::iter::empty()), Formula::Zero);
        assert_eq!(Formula::and_all(std::iter::empty()), Formula::One);
    }
}
