//! A reduced ordered binary decision diagram (ROBDD) engine.
//!
//! The optimizer needs fast *semantic* answers about formulas produced by
//! repeated cofactoring — is this constraint identically `0` (so the
//! disequation `g ≠ 0` is unsatisfiable)? identically `1`? are two
//! formulas equivalent? By Theorem 8 of the paper, equivalence of
//! constraint formulas over all (atomless) Boolean algebras coincides with
//! propositional equivalence, which BDDs decide canonically.
//!
//! The implementation is a classic Bryant-style manager: a node arena, a
//! unique table enforcing sharing, and a memoized binary `apply`.

use std::collections::HashMap;

use crate::formula::Formula;
use crate::var::Var;

/// Index of a BDD node inside a [`Bdd`] manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(u32);

/// The terminal `0`.
pub const ZERO: NodeId = NodeId(0);
/// The terminal `1`.
pub const ONE: NodeId = NodeId(1);

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    /// Variable level (order position). Terminals use `u32::MAX`.
    level: u32,
    lo: NodeId,
    hi: NodeId,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
    Xor,
}

/// A BDD manager. Variables are ordered by their [`Var`] index.
///
/// ```
/// use scq_boolean::{Bdd, Formula, Var};
/// let mut bdd = Bdd::new();
/// let f = Formula::and(Formula::var(Var(0)), Formula::not(Formula::var(Var(0))));
/// assert!(bdd.is_zero_formula(&f));
/// ```
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    apply_memo: HashMap<(Op, NodeId, NodeId), NodeId>,
    not_memo: HashMap<NodeId, NodeId>,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    /// Creates a manager containing only the two terminals.
    pub fn new() -> Self {
        let nodes = vec![
            Node {
                level: u32::MAX,
                lo: ZERO,
                hi: ZERO,
            }, // 0
            Node {
                level: u32::MAX,
                lo: ONE,
                hi: ONE,
            }, // 1
        ];
        Bdd {
            nodes,
            unique: HashMap::new(),
            apply_memo: HashMap::new(),
            not_memo: HashMap::new(),
        }
    }

    /// Number of live nodes (including terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn level(&self, n: NodeId) -> u32 {
        self.nodes[n.0 as usize].level
    }

    fn node(&self, n: NodeId) -> Node {
        self.nodes[n.0 as usize]
    }

    /// Hash-consed node constructor maintaining the reduction invariants.
    fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        let node = Node { level, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// The BDD of a single variable.
    pub fn var(&mut self, v: Var) -> NodeId {
        self.mk(v.0, ZERO, ONE)
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Xor, a, b)
    }

    /// Complement.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        if a == ZERO {
            return ONE;
        }
        if a == ONE {
            return ZERO;
        }
        if let Some(&r) = self.not_memo.get(&a) {
            return r;
        }
        let n = self.node(a);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.level, lo, hi);
        self.not_memo.insert(a, r);
        r
    }

    #[allow(clippy::if_same_then_else)] // symmetric unit cases read clearer unmerged
    fn terminal_op(op: Op, a: NodeId, b: NodeId) -> Option<NodeId> {
        match op {
            Op::And => {
                if a == ZERO || b == ZERO {
                    Some(ZERO)
                } else if a == ONE {
                    Some(b)
                } else if b == ONE {
                    Some(a)
                } else if a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Or => {
                if a == ONE || b == ONE {
                    Some(ONE)
                } else if a == ZERO {
                    Some(b)
                } else if b == ZERO {
                    Some(a)
                } else if a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Xor => {
                if a == b {
                    Some(ZERO)
                } else if a == ZERO {
                    Some(b)
                } else if b == ZERO {
                    Some(a)
                } else {
                    None
                }
            }
        }
    }

    fn apply(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        if let Some(t) = Self::terminal_op(op, a, b) {
            return t;
        }
        // Commutative ops: canonicalize the memo key.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.apply_memo.get(&key) {
            return r;
        }
        let (na, nb) = (self.node(a), self.node(b));
        let level = na.level.min(nb.level);
        let (alo, ahi) = if na.level == level {
            (na.lo, na.hi)
        } else {
            (a, a)
        };
        let (blo, bhi) = if nb.level == level {
            (nb.lo, nb.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, alo, blo);
        let hi = self.apply(op, ahi, bhi);
        let r = self.mk(level, lo, hi);
        self.apply_memo.insert(key, r);
        r
    }

    /// Builds the BDD of a formula.
    pub fn from_formula(&mut self, f: &Formula) -> NodeId {
        match f {
            Formula::Zero => ZERO,
            Formula::One => ONE,
            Formula::Var(v) => self.var(*v),
            Formula::Not(g) => {
                let n = self.from_formula(g);
                self.not(n)
            }
            Formula::And(a, b) => {
                let x = self.from_formula(a);
                let y = self.from_formula(b);
                self.and(x, y)
            }
            Formula::Or(a, b) => {
                let x = self.from_formula(a);
                let y = self.from_formula(b);
                self.or(x, y)
            }
        }
    }

    /// Existential quantification `∃v. n`.
    pub fn exists(&mut self, n: NodeId, v: Var) -> NodeId {
        let (lo, hi) = self.cofactors(n, v);
        self.or(lo, hi)
    }

    /// Universal quantification `∀v. n`.
    pub fn forall(&mut self, n: NodeId, v: Var) -> NodeId {
        let (lo, hi) = self.cofactors(n, v);
        self.and(lo, hi)
    }

    /// Both cofactors of `n` by `v`.
    pub fn cofactors(&mut self, n: NodeId, v: Var) -> (NodeId, NodeId) {
        (self.restrict(n, v, false), self.restrict(n, v, true))
    }

    /// Restriction `n[v ← value]`.
    pub fn restrict(&mut self, n: NodeId, v: Var, value: bool) -> NodeId {
        if n == ZERO || n == ONE {
            return n;
        }
        let node = self.node(n);
        if node.level > v.0 {
            return n; // v does not occur below
        }
        if node.level == v.0 {
            return if value { node.hi } else { node.lo };
        }
        let lo = self.restrict(node.lo, v, value);
        let hi = self.restrict(node.hi, v, value);
        self.mk(node.level, lo, hi)
    }

    /// Whether the node denotes the constant `0` (unsatisfiable).
    pub fn is_zero(&self, n: NodeId) -> bool {
        n == ZERO
    }

    /// Whether the node denotes the constant `1` (valid).
    pub fn is_one(&self, n: NodeId) -> bool {
        n == ONE
    }

    /// Semantic zero test for a formula: `f ≡ 0`?
    pub fn is_zero_formula(&mut self, f: &Formula) -> bool {
        self.from_formula(f) == ZERO
    }

    /// Semantic one test for a formula: `f ≡ 1`?
    pub fn is_one_formula(&mut self, f: &Formula) -> bool {
        self.from_formula(f) == ONE
    }

    /// Semantic equivalence of two formulas.
    pub fn equivalent(&mut self, f: &Formula, g: &Formula) -> bool {
        self.from_formula(f) == self.from_formula(g)
    }

    /// Semantic implication `f ⟹ g`.
    pub fn implies(&mut self, f: &Formula, g: &Formula) -> bool {
        let a = self.from_formula(f);
        let ng = {
            let b = self.from_formula(g);
            self.not(b)
        };
        self.and(a, ng) == ZERO
    }

    /// One satisfying assignment over the given variable support, if any.
    pub fn any_sat(&self, n: NodeId) -> Option<Vec<(Var, bool)>> {
        if n == ZERO {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = n;
        while cur != ONE {
            let node = self.node(cur);
            // Prefer the child that is not ZERO; reduction guarantees one is.
            if node.hi != ZERO {
                path.push((Var(node.level), true));
                cur = node.hi;
            } else {
                path.push((Var(node.level), false));
                cur = node.lo;
            }
        }
        Some(path)
    }

    /// Counts satisfying assignments over exactly `nvars` variables
    /// `x0..x{nvars-1}` (all of which must be ≥ every level in `n`).
    pub fn sat_count(&self, n: NodeId, nvars: u32) -> u64 {
        fn go(
            bdd: &Bdd,
            n: NodeId,
            level: u32,
            nvars: u32,
            memo: &mut HashMap<(NodeId, u32), u64>,
        ) -> u64 {
            if n == ZERO {
                return 0;
            }
            let node_level = if n == ONE {
                nvars
            } else {
                bdd.level(n).min(nvars)
            };
            if n == ONE {
                return 1u64 << (nvars - level);
            }
            if let Some(&c) = memo.get(&(n, level)) {
                return c;
            }
            let skipped = node_level - level;
            let node = bdd.node(n);
            let below = go(bdd, node.lo, node_level + 1, nvars, memo)
                + go(bdd, node.hi, node_level + 1, nvars, memo);
            let c = below << skipped;
            memo.insert((n, level), c);
            c
        }
        let mut memo = HashMap::new();
        go(self, n, 0, nvars, &mut memo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn terminals() {
        let mut b = Bdd::new();
        assert!(b.is_zero_formula(&Formula::Zero));
        assert!(b.is_one_formula(&Formula::One));
        assert!(!b.is_zero_formula(&v(0)));
    }

    #[test]
    fn contradiction_and_tautology() {
        let mut b = Bdd::new();
        let f = Formula::And(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        assert!(b.is_zero_formula(&f));
        let g = Formula::Or(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        assert!(b.is_one_formula(&g));
    }

    #[test]
    fn equivalence_of_distinct_syntaxes() {
        let mut b = Bdd::new();
        // De Morgan
        let f = Formula::not(Formula::and(v(0), v(1)));
        let g = Formula::or(Formula::not(v(0)), Formula::not(v(1)));
        assert!(b.equivalent(&f, &g));
        // absorption law
        let h = Formula::Or(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::and(v(0), v(1))),
        );
        assert!(b.equivalent(&h, &v(0)));
    }

    #[test]
    fn implication() {
        let mut b = Bdd::new();
        assert!(b.implies(&Formula::and(v(0), v(1)), &v(0)));
        assert!(!b.implies(&v(0), &Formula::and(v(0), v(1))));
        assert!(b.implies(&Formula::Zero, &v(5)));
    }

    #[test]
    fn sharing_via_unique_table() {
        let mut b = Bdd::new();
        let f1 = b.from_formula(&Formula::and(v(0), v(1)));
        let before = b.node_count();
        let f2 = b.from_formula(&Formula::and(v(0), v(1)));
        assert_eq!(f1, f2);
        assert_eq!(
            b.node_count(),
            before,
            "no new nodes for an existing function"
        );
    }

    #[test]
    fn restrict_and_cofactors() {
        let mut b = Bdd::new();
        let f = Formula::or(
            Formula::and(v(0), v(1)),
            Formula::and(Formula::not(v(0)), v(2)),
        );
        let n = b.from_formula(&f);
        let (lo, hi) = b.cofactors(n, Var(0));
        let want_lo = b.from_formula(&v(2));
        let want_hi = b.from_formula(&v(1));
        assert_eq!(lo, want_lo);
        assert_eq!(hi, want_hi);
    }

    #[test]
    fn exists_matches_boole() {
        // ∃x. f should equal f0 | f1 built through formulas.
        let mut b = Bdd::new();
        let f = Formula::or(
            Formula::and(v(0), v(1)),
            Formula::and(Formula::not(v(0)), v(2)),
        );
        let n = b.from_formula(&f);
        let e = b.exists(n, Var(0));
        let or01 = Formula::or(f.cofactor(Var(0), false), f.cofactor(Var(0), true));
        let want = b.from_formula(&or01);
        assert_eq!(e, want);
    }

    #[test]
    fn forall_dual() {
        let mut b = Bdd::new();
        let f = Formula::or(v(0), v(1));
        let n = b.from_formula(&f);
        let a = b.forall(n, Var(0));
        let want = b.from_formula(&v(1));
        assert_eq!(a, want);
    }

    #[test]
    fn any_sat_finds_model() {
        let mut b = Bdd::new();
        let f = Formula::and(Formula::not(v(0)), v(1));
        let n = b.from_formula(&f);
        let model = b.any_sat(n).unwrap();
        let assign = |x: Var| {
            model
                .iter()
                .find(|(v, _)| *v == x)
                .map(|&(_, p)| p)
                .unwrap_or(false)
        };
        assert!(f.eval2(assign));
        let zero = b.from_formula(&Formula::Zero);
        assert!(b.any_sat(zero).is_none());
    }

    #[test]
    fn sat_count_small() {
        let mut b = Bdd::new();
        let f = Formula::or(v(0), v(1)); // 3 of 4
        let n = b.from_formula(&f);
        assert_eq!(b.sat_count(n, 2), 3);
        let g = Formula::xor(v(0), v(1)); // 2 of 4
        let m = b.from_formula(&g);
        assert_eq!(b.sat_count(m, 2), 2);
        assert_eq!(b.sat_count(ONE, 3), 8);
        assert_eq!(b.sat_count(ZERO, 3), 0);
    }

    #[test]
    fn xor_op() {
        let mut b = Bdd::new();
        let x = b.var(Var(0));
        let y = b.var(Var(1));
        let viaxor = b.xor(x, y);
        let f = Formula::xor(v(0), v(1));
        let direct = b.from_formula(&f);
        assert_eq!(viaxor, direct);
        let self_xor = b.xor(x, x);
        assert_eq!(self_xor, ZERO);
    }
}
