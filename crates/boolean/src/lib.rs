#![warn(missing_docs)]

//! Symbolic Boolean formulas and the classical algebraic machinery used by
//! the constraint-based spatial query optimizer of Helm, Marriott and
//! Odersky (PODS 1991).
//!
//! This crate is a *substrate*: it knows nothing about regions or spatial
//! indexes. It provides
//!
//! * [`Formula`] — a shared-subterm Boolean formula AST with smart
//!   constructors, substitution and cofactors,
//! * [`Cube`] / [`Sop`] — terms (conjunctions of literals) and
//!   sum-of-products forms, with consensus and absorption,
//! * [`bcf`] — the Blake canonical form (the sum of all prime implicants),
//!   computed by iterated consensus, together with the syllogistic order
//!   used by Blake's theorem,
//! * [`Bdd`] — a reduced ordered binary decision diagram engine used for
//!   semantic checks (equivalence, constancy, satisfiability),
//! * [`quant`] — Boole's and Schröder's theorems as executable functions
//!   (existential quantification of equations, range form, expansion),
//! * [`parse`] — a small text syntax for formulas,
//! * [`random`] — seeded random formula generators for tests and benches.
//!
//! Formulas are interpreted over an *arbitrary* Boolean algebra (regions,
//! bit sets, the two-valued algebra…); evaluation lives in `scq-algebra`.
//! Two formulas are considered equivalent when they are equivalent in the
//! free Boolean algebra, i.e. propositionally — which by the paper's
//! Theorem 8 coincides with equivalence over all (atomless) algebras.

pub mod bcf;
pub mod bdd;
pub mod cnf;
pub mod cube;
pub mod dnf;
pub mod formula;
pub mod minimize;
pub mod parse;
pub mod quant;
pub mod random;
pub mod var;

pub use bcf::{blake_canonical_form, prime_implicants, syllogistic_le};
pub use bdd::Bdd;
pub use cnf::{dual_blake_canonical_form, formula_to_pos, prime_implicates, Pos};
pub use cube::{Cube, Literal, Sop};
pub use dnf::{formula_to_sop, sop_to_formula};
pub use formula::Formula;
pub use minimize::{irredundant_sop, minimize};
pub use parse::{parse_formula, ParseError};
pub use var::{Var, VarTable};
