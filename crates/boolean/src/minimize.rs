//! Two-level minimization: irredundant sums of prime implicants.
//!
//! The Blake canonical form contains *all* prime implicants, which is
//! canonical but often redundant as an executable formula. Quine's
//! classical second step selects a subset that still covers the
//! function: essential prime implicants first, then a greedy cover of
//! the remainder. The result is an equivalent, usually much smaller SOP
//! — the query compiler uses it to shrink solved-row formulas before
//! they are evaluated per candidate tuple.
//!
//! Selection works on the implicant lattice itself (no truth tables):
//! a prime `p` is redundant iff it is implied by the disjunction of the
//! other selected primes, decided with the BDD engine. This keeps the
//! procedure exact for any number of variables, at BDD cost rather than
//! `2^n` table cost.

use crate::bcf::bcf_of_sop;
use crate::bdd::Bdd;
use crate::cube::{Cube, Sop};
use crate::dnf::formula_to_sop;
use crate::formula::Formula;

/// Returns an irredundant prime cover of `f`: a subset of the prime
/// implicants whose disjunction is equivalent to `f` and from which no
/// member can be dropped.
///
/// Greedy, so not guaranteed *minimum*, but always irredundant and
/// equivalent; essential primes (the only prime covering some minterm)
/// are always retained.
pub fn irredundant_sop(f: &Formula) -> Sop {
    let bcf = bcf_of_sop(formula_to_sop(f));
    irredundant_cover(&bcf)
}

/// Irredundant cover of an SOP already consisting of prime implicants.
pub fn irredundant_cover(primes: &Sop) -> Sop {
    if primes.is_zero() || primes.is_one() {
        return primes.clone();
    }
    let mut bdd = Bdd::new();
    let cubes: Vec<Cube> = primes.sorted_cubes();
    let full = bdd.from_formula(&primes.to_formula());

    // Order candidates largest-cube-first (fewest literals = biggest
    // coverage), so the greedy pass keeps strong implicants.
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| cubes[i].len());

    let mut selected: Vec<bool> = vec![true; cubes.len()];
    // Try to drop cubes one at a time, weakest (most literals) first.
    for &i in order.iter().rev() {
        selected[i] = false;
        let rest = Formula::or_all(
            cubes
                .iter()
                .zip(&selected)
                .filter(|(_, &keep)| keep)
                .map(|(c, _)| c.to_formula()),
        );
        let rest_node = bdd.from_formula(&rest);
        if rest_node != full {
            selected[i] = true; // cube was essential w.r.t. current set
        }
    }
    Sop::from_cubes(
        cubes
            .into_iter()
            .zip(selected)
            .filter(|(_, keep)| *keep)
            .map(|(c, _)| c),
    )
}

/// Minimized formula: the irredundant prime cover as a formula.
pub fn minimize(f: &Formula) -> Formula {
    let mut bdd = Bdd::new();
    let n = bdd.from_formula(f);
    if bdd.is_zero(n) {
        return Formula::Zero;
    }
    if bdd.is_one(n) {
        return Formula::One;
    }
    irredundant_sop(f).to_formula()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blake_canonical_form;
    use crate::var::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn drops_consensus_redundancy() {
        // x·y ∨ ¬x·z ∨ y·z: the consensus term y·z is redundant.
        let f = Formula::or_all([
            Formula::and(v(0), v(1)),
            Formula::and(Formula::not(v(0)), v(2)),
            Formula::and(v(1), v(2)),
        ]);
        let bcf = blake_canonical_form(&f);
        assert_eq!(bcf.len(), 3, "BCF keeps all three primes");
        let irr = irredundant_sop(&f);
        assert_eq!(irr.len(), 2, "cover drops the consensus term");
        let mut bdd = Bdd::new();
        assert!(bdd.equivalent(&f, &irr.to_formula()));
    }

    #[test]
    fn keeps_essential_primes() {
        // xor has two essential primes; nothing can be dropped.
        let f = Formula::xor(v(0), v(1));
        let irr = irredundant_sop(&f);
        assert_eq!(irr.len(), 2);
    }

    #[test]
    fn constants() {
        assert_eq!(minimize(&Formula::Zero), Formula::Zero);
        assert_eq!(minimize(&Formula::One), Formula::One);
        let taut = Formula::Or(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        assert_eq!(minimize(&taut), Formula::One);
    }

    #[test]
    fn equivalence_on_random_formulas() {
        use crate::random::{random_formula, FormulaConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(909);
        let cfg = FormulaConfig {
            nvars: 5,
            depth: 5,
            const_prob: 0.05,
        };
        let mut bdd = Bdd::new();
        for _ in 0..60 {
            let f = random_formula(&mut rng, &cfg);
            let m = minimize(&f);
            assert!(bdd.equivalent(&f, &m), "minimize changed semantics of {f}");
            // never more cubes than the BCF
            let bcf = blake_canonical_form(&f);
            let irr = formula_to_sop(&m);
            assert!(irr.len() <= bcf.len().max(1));
        }
    }

    #[test]
    fn irredundance_property() {
        use crate::random::{random_formula, FormulaConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(44);
        let cfg = FormulaConfig {
            nvars: 4,
            depth: 4,
            const_prob: 0.0,
        };
        let mut bdd = Bdd::new();
        for _ in 0..30 {
            let f = random_formula(&mut rng, &cfg);
            let irr = irredundant_sop(&f);
            let cubes = irr.sorted_cubes();
            let full = bdd.from_formula(&irr.to_formula());
            for skip in 0..cubes.len() {
                let rest = Formula::or_all(
                    cubes
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, c)| c.to_formula()),
                );
                let rest_node = bdd.from_formula(&rest);
                assert_ne!(rest_node, full, "cube {} was droppable in {f}", cubes[skip]);
            }
        }
    }
}
