#![warn(missing_docs)]

//! The paper's primary contribution: compiling systems of multivariate
//! Boolean constraints into sequences of univariate **range queries**.
//!
//! Pipeline (mirroring the paper's sections):
//!
//! 1. [`constraint`] — the surface constraint language (`f ⊆ g`,
//!    `f = g`, `f ∩ g = ∅`, their negations …) and **Theorem 1**
//!    normalization into `f = 0 ∧ g₁ ≠ 0 ∧ … ∧ gₘ ≠ 0`.
//! 2. [`mod@proj`] — the best unquantified approximation `proj(S, x)` of
//!    `∃x S` (**Theorem 4** and the Definition after it), exact on
//!    atomless algebras (**Theorems 6–7**).
//! 3. [`triangular`] — **Algorithm 1**: repeated projection yields the
//!    triangular solved form `C₁(x₁) ∧ C₂(x₁,x₂) ∧ … ∧ Cₙ(x₁…xₙ)`, each
//!    row a range constraint `s ≤ xᵢ ≤ t` plus disequations
//!    `xᵢ·p ∨ ¬xᵢ·q ≠ 0` (**Theorems 10–11**).
//! 4. [`approx`] — **Algorithm 2**: best lower/upper bounding-box
//!    function approximations `L_f`, `U_f` via the Blake canonical form
//!    (**Theorems 16 & 18**).
//! 5. [`plan`] — assembling per-variable [`scq_bbox::CornerQuery`]
//!    builders: one spatial range query per retrieval step (Figure 3).
//!
//! The crate is algebra-generic: `check` evaluates everything exactly in
//! any [`scq_algebra::BooleanAlgebra`], and the compiled plans only
//! assume the bounding-box operator `⌈·⌉`.

pub mod approx;
pub mod check;
pub mod constraint;
pub mod parser;
pub mod plan;
pub mod proj;
pub mod simplify;
pub mod solve;
pub mod triangular;

pub use approx::{lower_bbox_fn, upper_bbox_fn, UpperBound};
pub use check::{
    check_constraint, check_constraint_in, check_normal, check_normal_in, check_system,
    check_system_in,
};
pub use constraint::{Constraint, ConstraintSystem, NormalSystem};
pub use parser::parse_system;
pub use plan::{BboxPlan, CompiledRow};
pub use proj::{proj, witness};
pub use simplify::simplify;
pub use solve::{solve, solve_system};
pub use triangular::{triangularize, DiseqRow, SolvedRow, TriangularSystem};
