//! Semantic formula simplification used throughout the compiler.

use scq_boolean::{blake_canonical_form, Bdd, Formula};

/// Simplifies a formula to a canonical small form:
///
/// * propositional constants collapse to `0`/`1` (BDD check);
/// * everything else becomes its Blake canonical form (the disjunction
///   of all prime implicants), which is canonical per function — two
///   equivalent formulas simplify to the identical AST.
///
/// Exponential in the worst case, which the paper accepts for query
/// *compilation* ("the number of variables in a constraint system can be
/// expected to be reasonably small").
pub fn simplify(f: &Formula) -> Formula {
    let mut bdd = Bdd::new();
    let n = bdd.from_formula(f);
    if bdd.is_zero(n) {
        return Formula::Zero;
    }
    if bdd.is_one(n) {
        return Formula::One;
    }
    blake_canonical_form(f).to_formula()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_boolean::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn constants_collapse() {
        let taut = Formula::Or(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        assert_eq!(simplify(&taut), Formula::One);
        let contra = Formula::And(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::not(v(0))),
        );
        assert_eq!(simplify(&contra), Formula::Zero);
    }

    #[test]
    fn canonical_across_syntax() {
        let f1 = Formula::and(Formula::or(v(0), v(1)), Formula::or(v(0), v(2)));
        let f2 = Formula::or(v(0), Formula::and(v(1), v(2)));
        assert_eq!(simplify(&f1), simplify(&f2));
    }

    #[test]
    fn preserves_semantics() {
        let f = Formula::or(
            Formula::and(v(0), Formula::not(v(1))),
            Formula::and(Formula::not(v(0)), v(2)),
        );
        let s = simplify(&f);
        let mut bdd = Bdd::new();
        assert!(bdd.equivalent(&f, &s));
    }

    #[test]
    fn absorbs_redundancy() {
        let f = Formula::Or(
            std::sync::Arc::new(v(0)),
            std::sync::Arc::new(Formula::and(v(0), v(1))),
        );
        assert_eq!(simplify(&f), v(0));
    }
}
