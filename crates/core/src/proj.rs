//! The projection operator `proj(S, x)` — the best unquantified
//! approximation of `∃x S` (paper, Theorem 4 and the Definition after
//! it; Theorem 9 for optimality).
//!
//! With `S = (f = 0 ∧ g₁ ≠ 0 ∧ … ∧ gₘ ≠ 0)`, write `A = f[x←0]`,
//! `B = f[x←1]`, `Cᵢ = gᵢ[x←0]`, `Dᵢ = gᵢ[x←1]`. Then
//!
//! ```text
//! proj(S, x)  =  A·B = 0  ∧  ⋀ᵢ ( ¬B·Dᵢ ∨ ¬A·Cᵢ ≠ 0 )
//! ```
//!
//! `∃x S ⟹ proj(S, x)` always (soundness, Theorem 4 + weak
//! independence); on **atomless** algebras the converse holds too
//! (Theorems 6–7), so projection is exact quantifier elimination there.
//!
//! The module also ships witness construction: given an assignment
//! satisfying `proj(S, x)` in an atomless algebra, [`witness`] builds an
//! element for `x` satisfying `S`, following the constructive proofs of
//! Lemma 3 and Theorem 6.

use scq_algebra::Atomless;
use scq_boolean::{Formula, Var};

use crate::constraint::NormalSystem;
use crate::simplify::simplify;

/// Computes `proj(S, x)`, with formulas simplified to Blake canonical
/// form.
pub fn proj(s: &NormalSystem, x: Var) -> NormalSystem {
    let a = s.eq.cofactor(x, false);
    let b = s.eq.cofactor(x, true);
    let eq = simplify(&Formula::and(a.clone(), b.clone()));
    let not_a = Formula::not(a);
    let not_b = Formula::not(b);
    let neqs = s
        .neqs
        .iter()
        .map(|g| {
            let c = g.cofactor(x, false);
            let d = g.cofactor(x, true);
            simplify(&Formula::or(
                Formula::and(not_b.clone(), d),
                Formula::and(not_a.clone(), c),
            ))
        })
        .collect();
    NormalSystem { eq, neqs }
}

/// Constructs a witness for `x` in an atomless algebra.
///
/// Given concrete values `a = f[x←0]`, `b̄ = ¬f[x←1]` (the Schröder range
/// `a ≤ x ≤ b̄`) and disequation pairs `(pᵢ, qᵢ)` (meaning
/// `x·pᵢ ∨ ¬x·qᵢ ≠ 0`), all evaluated in `alg`, finds an `x` satisfying
/// the row — or `None` if the row is unsatisfiable.
///
/// Construction (following Lemma 3 / Theorem 6): start from the minimal
/// solution `x = lower`. A disequation still unsatisfied at the minimum
/// has `lower·pᵢ = 0` and `qᵢ ≤ lower`; it can only be fixed by growing
/// `x` inside `pᵢ`'s available slack `pᵢ · upper · ¬x`. Two passes keep
/// growth from breaking `¬x·qⱼ`-satisfied disequations: first a
/// *reservation* pass sets aside a nonzero proper part of each needed
/// `qⱼ ∧ ¬x` (a proper part exists because the algebra is atomless);
/// then the growth pass only consumes slack outside the reservations.
/// A final verification keeps the function sound even where the
/// reservation heuristic would fall short of Theorem 6's full
/// partition-refinement construction.
pub fn witness<A: Atomless>(
    alg: &A,
    lower: &A::Elem,
    upper: &A::Elem,
    diseqs: &[(A::Elem, A::Elem)],
) -> Option<A::Elem> {
    if !alg.le(lower, upper) {
        return None; // range empty: no solution to the equation
    }
    let mut x = lower.clone();

    // Reservation pass: for every disequation currently satisfiable
    // through its ¬x·q side, set aside a nonzero piece of `q ∧ ¬x` that
    // later growth is forbidden to consume. Reserving only a *proper
    // part* (atomlessness) keeps most of the space available to the
    // growth pass.
    let mut reserved = alg.zero();
    for (p, q) in diseqs {
        if !alg.is_zero(&alg.meet(&x, p)) {
            continue; // already satisfied via the x side; growth keeps it
        }
        let q_avail = alg.diff(q, &x);
        if !alg.is_zero(&q_avail) {
            let piece = alg.proper_part(&q_avail).unwrap_or(q_avail);
            reserved = alg.join(&reserved, &piece);
        }
    }

    // Growth pass: disequations with no ¬x·q escape must be satisfied
    // by growing x inside p's slack (minus reservations).
    for (p, q) in diseqs {
        if !alg.is_zero(&alg.meet(&x, p)) || !alg.is_zero(&alg.diff(q, &x)) {
            continue;
        }
        let slack = alg.diff(&alg.meet(p, &alg.diff(upper, &x)), &reserved);
        if alg.is_zero(&slack) {
            return None; // cannot satisfy this disequation
        }
        let piece = alg.proper_part(&slack).unwrap_or(slack);
        x = alg.join(&x, &piece);
    }

    // Defensive re-verification: the reservation discipline should make
    // this a no-op, but soundness must not rest on the heuristic.
    for (p, q) in diseqs {
        if alg.is_zero(&alg.meet(&x, p)) && alg.is_zero(&alg.diff(q, &x)) {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_algebra::{eval_formula, Assignment, BitsetAlgebra, BooleanAlgebra};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// Evaluates a normal system over the bitset algebra.
    fn holds(alg: &BitsetAlgebra, s: &NormalSystem, assign: &Assignment<u64>) -> bool {
        if !alg.is_zero(&eval_formula(alg, &s.eq, assign).unwrap()) {
            return false;
        }
        s.neqs
            .iter()
            .all(|g| !alg.is_zero(&eval_formula(alg, g, assign).unwrap()))
    }

    #[test]
    fn paper_example_1() {
        // S = (x·y = 0 ∧ ¬x·y ≠ 0); proj(S, x) should be y ≠ 0.
        let s = NormalSystem {
            eq: Formula::and(v(0), v(1)),
            neqs: vec![Formula::and(Formula::not(v(0)), v(1))],
        };
        let p = proj(&s, Var(0));
        assert_eq!(p.eq, Formula::Zero);
        assert_eq!(p.neqs, vec![v(1)]);
    }

    #[test]
    fn boole_on_pure_equation() {
        // proj of an equation-only system is Boole's theorem: f0 · f1 = 0.
        let f = Formula::or(
            Formula::and(v(0), v(1)),
            Formula::and(Formula::not(v(0)), v(2)),
        );
        let s = NormalSystem {
            eq: f.clone(),
            neqs: vec![],
        };
        let p = proj(&s, Var(0));
        let boole = simplify(&Formula::and(
            f.cofactor(Var(0), false),
            f.cofactor(Var(0), true),
        ));
        assert_eq!(p.eq, boole);
        assert!(p.neqs.is_empty());
    }

    #[test]
    fn soundness_exhaustive_on_bitsets() {
        // ∃x S ⟹ proj(S, x), checked exhaustively on 2^3 bitsets for a
        // batch of random systems over 3 variables.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use scq_boolean::random::{random_formula, FormulaConfig};

        let alg = BitsetAlgebra::new(3);
        let mut rng = StdRng::seed_from_u64(2024);
        let cfg = FormulaConfig {
            nvars: 3,
            depth: 4,
            const_prob: 0.1,
        };
        for _ in 0..30 {
            let s = NormalSystem {
                eq: random_formula(&mut rng, &cfg),
                neqs: vec![
                    random_formula(&mut rng, &cfg),
                    random_formula(&mut rng, &cfg),
                ],
            };
            let p = proj(&s, Var(0));
            for y in alg.elements() {
                for z in alg.elements() {
                    let base = Assignment::new().with(Var(1), y).with(Var(2), z);
                    let exists = alg.elements().any(|x| {
                        let a = base.clone().with(Var(0), x);
                        holds(&alg, &s, &a)
                    });
                    if exists {
                        assert!(
                            holds(&alg, &p, &base),
                            "proj must be implied; y={y:b} z={z:b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn strictness_on_atomic_algebras() {
        // The paper's non-closure example: x ⊆ y, x ≠ 0, y∖x ≠ 0 forces
        // |y| ≥ 2. proj says y ≠ 0 — satisfiable by a singleton y in the
        // powerset algebra even though no x exists. This demonstrates
        // that proj is a strict over-approximation on ATOMIC algebras.
        let s = NormalSystem {
            eq: Formula::diff(v(0), v(1)), // x∖y = 0, i.e. x ⊆ y
            neqs: vec![v(0), Formula::diff(v(1), v(0))],
        };
        let p = proj(&s, Var(0));
        let alg = BitsetAlgebra::new(4);
        let singleton = alg.singleton(2);
        let base = Assignment::new().with(Var(1), singleton);
        assert!(holds(&alg, &p, &base), "proj holds for singleton y");
        let exists = alg
            .elements()
            .any(|x| holds(&alg, &s, &base.clone().with(Var(0), x)));
        assert!(!exists, "but no x exists: |y| = 1");
        // ... and for |y| = 2 a witness exists, matching proj.
        let doubleton = alg.singleton(0) | alg.singleton(1);
        let base2 = Assignment::new().with(Var(1), doubleton);
        assert!(holds(&alg, &p, &base2));
        assert!(alg
            .elements()
            .any(|x| holds(&alg, &s, &base2.clone().with(Var(0), x))));
    }

    #[test]
    fn exactness_on_atomless_regions() {
        // Same system, but in the (atomless) region algebra the proj
        // verdict y ≠ 0 is EXACT: a witness x exists for every nonzero
        // y, built by splitting y.
        use scq_region::{AaBox, Region, RegionAlgebra};
        let alg = RegionAlgebra::new(AaBox::new([0.0], [10.0]));
        let y = Region::from_box(AaBox::new([2.0], [3.0]));
        // S: x ⊆ y ∧ x ≠ 0 ∧ y∖x ≠ 0. Row for x: range 0 ≤ x ≤ y,
        // diseqs (p=1 restricted): x·1 ≠ 0 → (p=1,q=0); ¬x·? for y∖x:
        // y∖x = y·¬x → p' = 0? Expressed as pairs (p, q) for
        // x·p ∨ ¬x·q ≠ 0: x ≠ 0 is (1, 0); y∖x ≠ 0 is (0, y).
        let lower = Region::empty();
        let upper = y.clone();
        let one = Region::from_box(*alg.universe());
        let diseqs = vec![(one.clone(), Region::empty()), (Region::empty(), y.clone())];
        let x = witness(&alg, &lower, &upper, &diseqs).expect("atomless witness");
        // verify: x ⊆ y, x ≠ 0, y∖x ≠ 0
        assert!(x.subset_of(&y));
        assert!(!x.is_empty());
        assert!(!y.difference(&x).is_empty());
    }

    #[test]
    fn witness_handles_unsatisfiable_rows() {
        use scq_region::{AaBox, Region, RegionAlgebra};
        let alg = RegionAlgebra::new(AaBox::new([0.0], [10.0]));
        let a = Region::from_box(AaBox::new([0.0], [5.0]));
        let b = Region::from_box(AaBox::new([6.0], [7.0]));
        // range a ≤ x ≤ b with a ⊄ b: empty range
        assert!(witness(&alg, &a, &b, &[]).is_none());
        // x ≤ b but x·p ≠ 0 with p disjoint from b: impossible
        let p = Region::from_box(AaBox::new([8.0], [9.0]));
        assert!(witness(&alg, &Region::empty(), &b, &[(p, Region::empty())]).is_none());
    }

    #[test]
    fn witness_multiple_diseqs_share_slack() {
        use scq_region::{AaBox, Region, RegionAlgebra};
        let alg = RegionAlgebra::new(AaBox::new([0.0], [10.0]));
        let u = Region::from_box(AaBox::new([0.0], [10.0]));
        let p = Region::from_box(AaBox::new([2.0], [4.0]));
        // Three disequations all needing pieces: x·p ≠ 0, ¬x·p ≠ 0,
        // x·u ≠ 0. Atomlessness lets x take only part of p.
        let diseqs = vec![
            (p.clone(), Region::empty()),
            (Region::empty(), p.clone()),
            (u.clone(), Region::empty()),
        ];
        let x = witness(&alg, &Region::empty(), &u, &diseqs).expect("witness");
        assert!(!x.intersection(&p).is_empty());
        assert!(!p.difference(&x).is_empty());
    }

    #[test]
    fn proj_eliminates_variable() {
        let s = NormalSystem {
            eq: Formula::xor(v(0), v(1)),
            neqs: vec![Formula::and(v(0), v(2))],
        };
        let p = proj(&s, Var(0));
        assert!(!p.eq.mentions(Var(0)));
        for g in &p.neqs {
            assert!(!g.mentions(Var(0)));
        }
    }
}
