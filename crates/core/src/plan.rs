//! Compilation of a triangular system into per-variable **range-query
//! plans** (Section 4 of the paper, assembled for execution).
//!
//! Each solved row
//!
//! ```text
//! s ≤ xᵢ ≤ t   ∧   ⋀ⱼ ( xᵢ·pⱼ ∨ ¬xᵢ·qⱼ ≠ 0 )
//! ```
//!
//! compiles to bounding-box functions evaluated on the boxes of the
//! already-retrieved prefix:
//!
//! * `L_s ⊑ ⌈xᵢ⌉` — from `s ≤ x ⟹ ⌈s⌉ ⊑ ⌈x⌉` and `L_s ⊑ ⌈s⌉`;
//! * `⌈xᵢ⌉ ⊑ U_t` — from `x ≤ t ⟹ ⌈x⌉ ⊑ ⌈t⌉ ⊑ U_t`;
//! * `⌈xᵢ⌉ ⊓ U_pⱼ ≠ ∅` — applicable only when `qⱼ` is known to be `0`
//!   (compile-time, via BDD) or its upper bound evaluates to `∅` at run
//!   time (`U_q = ∅ ⟹ ⌈q⌉ = ∅ ⟹ q = 0`), since otherwise the
//!   disequation can be satisfied through `¬x·q` and constrains `x` not
//!   at all (paper, §4).
//!
//! All three shapes land in one [`CornerQuery`] — a single spatial range
//! query per retrieval step (Figure 3).

use scq_bbox::{Bbox, BboxExpr, CornerQuery};
use scq_boolean::{Bdd, Var};

use crate::approx::{lower_bbox_fn, upper_bbox_fn, UpperBound};
use crate::constraint::GroundStatus;
use crate::triangular::{SolvedRow, TriangularSystem};

/// A compiled disequation filter.
#[derive(Clone, Debug)]
pub struct OverlapFilter<const K: usize> {
    /// `U_p`: upper bound of the `x`-coefficient.
    pub p_upper: UpperBound<K>,
    /// `U_q`: upper bound of the `¬x`-coefficient (runtime guard).
    pub q_upper: UpperBound<K>,
    /// Whether `q ≡ 0` was proved at compile time.
    pub q_is_zero: bool,
}

/// The compiled plan row for one retrieval step.
#[derive(Clone, Debug)]
pub struct CompiledRow<const K: usize> {
    /// The variable this row retrieves.
    pub var: Var,
    /// `L_s`: lower bounding-box function of the row's lower bound.
    pub lower: BboxExpr<K>,
    /// `U_t`: upper bounding-box function of the row's upper bound.
    pub upper: UpperBound<K>,
    /// Disequation filters.
    pub overlaps: Vec<OverlapFilter<K>>,
    /// The exact solved row, for verification after the bbox filter.
    pub exact: SolvedRow,
}

impl<const K: usize> CompiledRow<K> {
    /// Builds the single corner-transform range query for this step,
    /// given the bounding boxes of the already-bound variables
    /// (`lookup` maps *variable index* to box).
    pub fn corner_query<F: Fn(usize) -> Bbox<K> + Copy>(&self, lookup: F) -> CornerQuery<K> {
        let mut q = CornerQuery::unconstrained();
        let lo = self.lower.eval(lookup);
        if !lo.is_empty() {
            q = q.and_contains(&lo);
        }
        if let Some(ub) = self.upper.eval(lookup) {
            q = q.and_contained_in(&ub);
        }
        for f in &self.overlaps {
            let q_known_zero = f.q_is_zero
                || match f.q_upper.eval(lookup) {
                    Some(b) => b.is_empty(),
                    None => false,
                };
            if !q_known_zero {
                continue; // the ¬x·q side may satisfy the disequation
            }
            // x must overlap U_p; ∅ here means the disequation is
            // unsatisfiable and the query correctly matches nothing. A
            // Top bound imposes no constraint (any nonempty x may
            // overlap p).
            if let Some(pb) = f.p_upper.eval(lookup) {
                q = q.and_overlaps(&pb);
            }
        }
        q
    }
}

/// The full compiled plan: one row per retrieval step, in order.
#[derive(Clone, Debug)]
pub struct BboxPlan<const K: usize> {
    /// Retrieval order (same as the triangular system's).
    pub order: Vec<Var>,
    /// Compiled rows, `rows[i]` for `order[i]`.
    pub rows: Vec<CompiledRow<K>>,
    /// Whether the ground residue is satisfiable at all.
    pub satisfiable: bool,
}

impl<const K: usize> BboxPlan<K> {
    /// Compiles a triangular system (Algorithm 2 applied to every row).
    pub fn compile(tri: &TriangularSystem) -> Self {
        let mut bdd = Bdd::new();
        let rows = tri
            .rows
            .iter()
            .map(|row| CompiledRow {
                var: row.var,
                lower: lower_bbox_fn(&row.lower),
                upper: upper_bbox_fn(&row.upper),
                overlaps: row
                    .diseqs
                    .iter()
                    .map(|d| OverlapFilter {
                        p_upper: upper_bbox_fn(&d.p),
                        q_upper: upper_bbox_fn(&d.q),
                        q_is_zero: bdd.is_zero_formula(&d.q),
                    })
                    .collect(),
                exact: row.clone(),
            })
            .collect();
        BboxPlan {
            order: tri.order.clone(),
            rows,
            satisfiable: tri.ground.ground_status() == GroundStatus::Valid,
        }
    }

    /// The compiled row for a variable.
    pub fn row_for(&self, v: Var) -> Option<&CompiledRow<K>> {
        self.rows.iter().find(|r| r.var == v)
    }

    /// EXPLAIN output: one line per retrieval step describing the range
    /// query that will be issued and the exact residual checks.
    pub fn explain(&self, table: &scq_boolean::VarTable) -> String {
        fn render<const K: usize>(e: &BboxExpr<K>, table: &scq_boolean::VarTable) -> String {
            match e {
                BboxExpr::Var(i) => {
                    format!("⌈{}⌉", table.display(Var(*i as u32)))
                }
                BboxExpr::Const(b) => format!("{b}"),
                BboxExpr::Meet(a, b) => {
                    format!("({} ⊓ {})", render(a, table), render(b, table))
                }
                BboxExpr::Join(a, b) => {
                    format!("({} ⊔ {})", render(a, table), render(b, table))
                }
            }
        }
        fn render_upper<const K: usize>(
            u: &UpperBound<K>,
            table: &scq_boolean::VarTable,
        ) -> String {
            match u {
                UpperBound::Top => "⊤".to_string(),
                UpperBound::Expr(e) => render(e, table),
            }
        }
        use std::fmt::Write;
        let mut out = String::new();
        if !self.satisfiable {
            out.push_str(
                "UNSATISFIABLE (ground residue fails; no retrieval)
",
            );
            return out;
        }
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "step {:>2}: retrieve {}",
                i + 1,
                table.display(row.var)
            );
            if !row.lower.is_const_empty() {
                let _ = writeln!(out, "         contains   {}", render(&row.lower, table));
            }
            match &row.upper {
                UpperBound::Top => {}
                UpperBound::Expr(e) => {
                    let _ = writeln!(out, "         within     {}", render(e, table));
                }
            }
            for f in &row.overlaps {
                let guard = if f.q_is_zero {
                    "".to_string()
                } else {
                    format!("   [if {} = ∅]", render_upper(&f.q_upper, table))
                };
                let _ = writeln!(
                    out,
                    "         overlaps   {}{}",
                    render_upper(&f.p_upper, table),
                    guard
                );
            }
            let _ = writeln!(out, "         verify     {}", row.exact.display(table));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{normalize, Constraint};
    use crate::triangular::triangularize;
    use scq_boolean::Formula;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn b1(lo: f64, hi: f64) -> Bbox<1> {
        Bbox::new([lo], [hi])
    }

    /// x1 ⊆ x0 ∧ x1 ∩ x2 ≠ ∅, order x0, x2, x1.
    fn simple_plan() -> BboxPlan<1> {
        let cs = vec![
            Constraint::Subset(v(1), v(0)),
            Constraint::Overlaps(v(1), v(2)),
        ];
        let sys = normalize(&cs);
        let tri = triangularize(&sys, &[Var(0), Var(2), Var(1)]);
        BboxPlan::compile(&tri)
    }

    #[test]
    fn compiles_containment_and_overlap() {
        let plan = simple_plan();
        assert!(plan.satisfiable);
        let row = plan.row_for(Var(1)).unwrap();
        // upper: U_{x0} = ⌈x0⌉
        assert_eq!(row.upper, UpperBound::Expr(BboxExpr::var(0)));
        // one overlap filter with p = x2, q = 0 proved at compile time
        assert_eq!(row.overlaps.len(), 1);
        assert!(row.overlaps[0].q_is_zero);
        assert_eq!(row.overlaps[0].p_upper, UpperBound::Expr(BboxExpr::var(2)));
    }

    #[test]
    fn corner_query_combines_parts() {
        let plan = simple_plan();
        let row = plan.row_for(Var(1)).unwrap();
        let boxes = [b1(0.0, 10.0), Bbox::Empty, b1(4.0, 6.0)];
        let q = row.corner_query(|i| boxes[i]);
        assert!(q.matches(&b1(3.0, 5.0)), "inside x0, overlaps x2");
        assert!(!q.matches(&b1(-1.0, 5.0)), "outside x0");
        assert!(!q.matches(&b1(0.0, 3.0)), "misses x2");
    }

    #[test]
    fn filter_is_necessary_condition() {
        // Soundness on concrete regions: any x1 satisfying the exact row
        // passes the corner query built from the prefix boxes.
        use scq_algebra::Assignment;
        use scq_region::{AaBox, Region, RegionAlgebra};
        let plan = simple_plan();
        let row = plan.row_for(Var(1)).unwrap();
        let alg = RegionAlgebra::new(AaBox::new([0.0], [100.0]));
        let x0 = Region::from_box(AaBox::new([10.0], [50.0]));
        let x2 = Region::from_box(AaBox::new([30.0], [40.0]));
        let boxes = [x0.bbox(), Bbox::Empty, x2.bbox()];
        let q = row.corner_query(|i| boxes[i]);
        // enumerate candidate x1 intervals on a grid
        for lo in 0..60 {
            for w in 1..30 {
                let x1 = Region::from_box(AaBox::new([lo as f64], [(lo + w) as f64]));
                let assign = Assignment::new()
                    .with(Var(0), x0.clone())
                    .with(Var(1), x1.clone())
                    .with(Var(2), x2.clone());
                if row.exact.check(&alg, &assign).unwrap() {
                    assert!(
                        q.matches(&x1.bbox()),
                        "exact solution {:?} rejected by bbox filter",
                        x1.bbox()
                    );
                }
            }
        }
    }

    #[test]
    fn runtime_q_guard() {
        // x0 ≠ x1 gives a diseq with both p and q nonzero: the filter
        // must NOT constrain x (q might satisfy the diseq).
        let cs = vec![Constraint::Neq(v(1), v(0))];
        let sys = normalize(&cs);
        let tri = triangularize(&sys, &[Var(0), Var(1)]);
        let plan: BboxPlan<1> = BboxPlan::compile(&tri);
        let row = plan.row_for(Var(1)).unwrap();
        assert_eq!(row.overlaps.len(), 1);
        assert!(!row.overlaps[0].q_is_zero);
        let boxes = [b1(0.0, 1.0), Bbox::Empty];
        let q = row.corner_query(|i| boxes[i]);
        // any box matches: the disequation can hold via ¬x·q
        assert!(q.matches(&b1(50.0, 60.0)));
    }

    #[test]
    fn unsatisfiable_ground_is_reported() {
        let sys = normalize(&[
            Constraint::Subset(v(0), Formula::Zero),
            Constraint::NotSubset(v(0), Formula::Zero),
        ]);
        let tri = triangularize(&sys, &[Var(0)]);
        let plan: BboxPlan<1> = BboxPlan::compile(&tri);
        assert!(!plan.satisfiable);
    }

    #[test]
    fn explain_renders_plan() {
        use scq_boolean::VarTable;
        let plan = simple_plan();
        let mut table = VarTable::new();
        for n in ["X0", "X2", "X1"] {
            table.intern(n);
        }
        let text = plan.explain(&table);
        assert!(text.contains("step  1: retrieve X0"), "{text}");
        assert!(text.contains("within"), "{text}");
        assert!(text.contains("overlaps"), "{text}");
        assert!(text.contains("verify"), "{text}");

        // unsat plan explains itself
        let sys = normalize(&[
            Constraint::Subset(v(0), Formula::Zero),
            Constraint::NotSubset(v(0), Formula::Zero),
        ]);
        let tri = triangularize(&sys, &[Var(0)]);
        let plan: BboxPlan<1> = BboxPlan::compile(&tri);
        assert!(plan.explain(&table).contains("UNSATISFIABLE"));
    }

    #[test]
    fn empty_lower_adds_no_constraint() {
        let plan = simple_plan();
        let row0 = plan.row_for(Var(0)).unwrap();
        // x0 is first: nothing constrains it from below
        let q = row0.corner_query(|_| Bbox::Empty);
        assert!(q.matches(&b1(0.0, 1.0)));
    }
}
