//! Text syntax for constraint systems — the "high-level query language"
//! of the paper's introduction.
//!
//! A system is a sequence of statements separated by `;` or newlines.
//! Each statement relates two formulas (formula syntax per
//! [`scq_boolean::parse_formula`]):
//!
//! ```text
//! f <= g     f ⊆ g           (positive)
//! f >= g     f ⊇ g
//! f <  g     f ⊂ g           (strict containment)
//! f >  g     f ⊃ g
//! f =  g     f = g
//! f != g     f ≠ g
//! f !<= g    f ⊄ g           (negative containment)
//! f !>= g    f ⊉ g
//! ```
//!
//! Disjointness and overlap are written through the formula language:
//! `A & B = 0`, `R & T != 0`. Comments start with `#` and run to the end
//! of the line.
//!
//! ```
//! use scq_core::parse_system;
//! let sys = parse_system("
//!     A <= C;  B <= C
//!     R <= A | B | T
//!     R & A != 0;  R & T != 0
//!     T < C
//! ").unwrap();
//! assert_eq!(sys.constraints.len(), 6);
//! ```

use scq_boolean::{parse_formula, Formula, ParseError, VarTable};

use crate::constraint::{Constraint, ConstraintSystem};

/// Error from [`parse_system`]: the statement index plus the underlying
/// cause.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemParseError {
    /// Zero-based statement number.
    pub statement: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SystemParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "statement {}: {}", self.statement + 1, self.message)
    }
}

impl std::error::Error for SystemParseError {}

fn formula_err(statement: usize, e: ParseError) -> SystemParseError {
    SystemParseError {
        statement,
        message: e.to_string(),
    }
}

/// Builds a constraint from the two operand formulas of a statement.
type ConstraintBuilder = fn(Formula, Formula) -> Constraint;

/// The relational operators, longest first so scanning is unambiguous.
/// Superset forms are sugar for their mirrored subset forms.
const OPS: [(&str, ConstraintBuilder); 8] = [
    ("!<=", |a, b| Constraint::NotSubset(a, b)),
    ("!>=", |a, b| Constraint::NotSubset(b, a)),
    ("!=", |a, b| Constraint::Neq(a, b)),
    ("<=", |a, b| Constraint::Subset(a, b)),
    (">=", |a, b| Constraint::Subset(b, a)),
    ("<", |a, b| Constraint::ProperSubset(a, b)),
    (">", |a, b| Constraint::ProperSubset(b, a)),
    ("=", |a, b| Constraint::Eq(a, b)),
];

/// Finds the single top-level relational operator in a statement.
fn find_op(stmt: &str) -> Option<(usize, &'static str, ConstraintBuilder)> {
    let bytes = stmt.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        for (tok, build) in OPS {
            if stmt[i..].starts_with(tok) {
                // "!" alone is negation; only treat '!' as operator start
                // when it begins "!=" or "!<=" (ensured by token list).
                return Some((i, tok, build));
            }
        }
        i += 1;
    }
    None
}

/// Parses a constraint system. Special forms `f = 0`, `f != 0` map to
/// the dedicated equation/disequation constraints via `Eq`/`Neq` with a
/// zero right-hand side (normalization treats them identically).
pub fn parse_system(input: &str) -> Result<ConstraintSystem, SystemParseError> {
    let mut sys = ConstraintSystem::new();
    let mut statement = 0usize;
    for raw in input.split([';', '\n']) {
        let stmt = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let (pos, tok, build) = find_op(stmt).ok_or_else(|| SystemParseError {
            statement,
            message: format!("no relational operator in {stmt:?}"),
        })?;
        let lhs_src = &stmt[..pos];
        let rhs_src = &stmt[pos + tok.len()..];
        let lhs = parse_formula(lhs_src, &mut sys.table).map_err(|e| formula_err(statement, e))?;
        let rhs = parse_formula(rhs_src, &mut sys.table).map_err(|e| formula_err(statement, e))?;
        sys.push(build(lhs, rhs));
        statement += 1;
    }
    Ok(sys)
}

/// Parses a whitespace/comma separated list of variable names against an
/// existing table — the retrieval-order companion of [`parse_system`].
pub fn parse_order(input: &str, table: &VarTable) -> Result<Vec<scq_boolean::Var>, String> {
    input
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|s| !s.is_empty())
        .map(|name| {
            table
                .get(name)
                .ok_or_else(|| format!("unknown variable {name:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smuggler_system_parses() {
        let sys =
            parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C").unwrap();
        assert_eq!(sys.constraints.len(), 6);
        assert!(matches!(sys.constraints[0], Constraint::Subset(..)));
        assert!(matches!(sys.constraints[3], Constraint::Neq(..)));
        assert!(matches!(sys.constraints[5], Constraint::ProperSubset(..)));
        assert_eq!(sys.vars().len(), 5);
    }

    #[test]
    fn newlines_and_comments() {
        let sys = parse_system("# the country\nA <= C   # area inside country\n\nB != 0").unwrap();
        assert_eq!(sys.constraints.len(), 2);
    }

    #[test]
    fn not_subset_vs_negation() {
        let sys = parse_system("~A <= B; A !<= B").unwrap();
        assert!(
            matches!(&sys.constraints[0], Constraint::Subset(f, _) if f.to_string().starts_with('~'))
        );
        assert!(matches!(sys.constraints[1], Constraint::NotSubset(..)));
    }

    #[test]
    fn neq_and_eq_zero_forms() {
        let sys = parse_system("A & B = 0; A | B != 0").unwrap();
        assert!(matches!(sys.constraints[0], Constraint::Eq(..)));
        assert!(matches!(sys.constraints[1], Constraint::Neq(..)));
        // normalization turns them into the expected shapes
        let n = sys.normalize();
        assert_eq!(n.neqs.len(), 1);
    }

    #[test]
    fn errors_carry_statement_numbers() {
        let err = parse_system("A <= B; C <").unwrap_err();
        assert_eq!(err.statement, 1);
        assert!(err.to_string().contains("statement 2"));
        let err = parse_system("A B").unwrap_err();
        assert!(err.message.contains("no relational operator"));
    }

    #[test]
    fn shared_names_share_variables() {
        let sys = parse_system("A <= B; B <= C; C & A = 0").unwrap();
        assert_eq!(sys.vars().len(), 3);
    }

    #[test]
    fn superset_forms_mirror() {
        let sys = parse_system("A >= B; A > B; A !>= B").unwrap();
        match &sys.constraints[0] {
            Constraint::Subset(f, g) => {
                assert_eq!(f.to_string(), "x1");
                assert_eq!(g.to_string(), "x0");
            }
            other => panic!("expected mirrored Subset, got {other:?}"),
        }
        assert!(matches!(sys.constraints[1], Constraint::ProperSubset(..)));
        assert!(matches!(sys.constraints[2], Constraint::NotSubset(..)));
    }

    #[test]
    fn parse_order_resolves_names() {
        let sys = parse_system("A <= C; T < C").unwrap();
        let order = parse_order("C, A T", &sys.table).unwrap();
        assert_eq!(order.len(), 3);
        assert!(parse_order("C, X", &sys.table).is_err());
    }
}
