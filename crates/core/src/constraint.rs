//! The surface constraint language and Theorem 1 normalization.
//!
//! A *positive* constraint is `f ⊆ g`; a *negative* one is `f ⊄ g`.
//! Following Boole (paper, Theorem 1), any system of such constraints is
//! equivalent to one equation and a set of disequations:
//!
//! ```text
//! f = 0  ∧  g₁ ≠ 0  ∧ … ∧  gₘ ≠ 0
//! ```
//!
//! The equation collects every positive constraint (`f ⊆ g ↦ f∧¬g = 0`,
//! joined disjunctively); each negative constraint contributes one
//! disequation.

use std::fmt;

use scq_boolean::var::Var;
use scq_boolean::{Bdd, Formula, VarTable};

use crate::simplify::simplify;

/// A single constraint of the surface language.
///
/// The paper's primitive forms are [`Constraint::Subset`] (positive) and
/// [`Constraint::NotSubset`] (negative); the rest are the derived forms
/// listed in the paper's introduction (equality, disequality, strict
/// containment, plus the disjointness/overlap idioms every example uses).
#[derive(Clone, PartialEq, Debug)]
pub enum Constraint {
    /// `f ⊆ g` — positive.
    Subset(Formula, Formula),
    /// `f ⊄ g` — negative.
    NotSubset(Formula, Formula),
    /// `f = g` (both inclusions).
    Eq(Formula, Formula),
    /// `f ≠ g`.
    Neq(Formula, Formula),
    /// `f ⊂ g` — strict containment: `f ⊆ g ∧ f ≠ g` (paper, §1).
    ProperSubset(Formula, Formula),
    /// `f ∩ g = ∅`.
    Disjoint(Formula, Formula),
    /// `f ∩ g ≠ ∅`.
    Overlaps(Formula, Formula),
}

impl Constraint {
    /// The variables mentioned by the constraint.
    pub fn vars(&self) -> std::collections::BTreeSet<Var> {
        let (a, b) = self.operands();
        let mut v = a.vars();
        if let Some(b) = b {
            v.extend(b.vars());
        }
        v
    }

    fn operands(&self) -> (&Formula, Option<&Formula>) {
        match self {
            Constraint::Subset(a, b)
            | Constraint::NotSubset(a, b)
            | Constraint::Eq(a, b)
            | Constraint::Neq(a, b)
            | Constraint::ProperSubset(a, b)
            | Constraint::Disjoint(a, b)
            | Constraint::Overlaps(a, b) => (a, Some(b)),
        }
    }

    /// Pretty-prints with variable names.
    pub fn display<'a>(&'a self, table: &'a VarTable) -> ConstraintDisplay<'a> {
        ConstraintDisplay { c: self, table }
    }
}

/// Pretty-printer for constraints.
pub struct ConstraintDisplay<'a> {
    c: &'a Constraint,
    table: &'a VarTable,
}

impl fmt::Display for ConstraintDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.table;
        match self.c {
            Constraint::Subset(a, b) => write!(f, "{} <= {}", a.display(t), b.display(t)),
            Constraint::NotSubset(a, b) => write!(f, "{} !<= {}", a.display(t), b.display(t)),
            Constraint::Eq(a, b) => write!(f, "{} = {}", a.display(t), b.display(t)),
            Constraint::Neq(a, b) => write!(f, "{} != {}", a.display(t), b.display(t)),
            Constraint::ProperSubset(a, b) => write!(f, "{} < {}", a.display(t), b.display(t)),
            Constraint::Disjoint(a, b) => {
                write!(f, "{} & {} = 0", a.display(t), b.display(t))
            }
            Constraint::Overlaps(a, b) => {
                write!(f, "{} & {} != 0", a.display(t), b.display(t))
            }
        }
    }
}

/// A constraint system: the conjunction of its constraints, plus the
/// name table for its variables.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSystem {
    /// The conjuncts.
    pub constraints: Vec<Constraint>,
    /// Names for the variables appearing in the constraints.
    pub table: VarTable,
}

impl ConstraintSystem {
    /// An empty system (trivially true).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// All variables mentioned, in index order.
    pub fn vars(&self) -> Vec<Var> {
        let mut set = std::collections::BTreeSet::new();
        for c in &self.constraints {
            set.extend(c.vars());
        }
        set.into_iter().collect()
    }

    /// Theorem 1 normalization of the whole system.
    pub fn normalize(&self) -> NormalSystem {
        normalize(&self.constraints)
    }
}

impl fmt::Display for ConstraintSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}", c.display(&self.table))?;
        }
        Ok(())
    }
}

/// The Theorem 1 normal form `f = 0 ∧ ⋀ᵢ gᵢ ≠ 0`.
#[derive(Clone, PartialEq, Debug)]
pub struct NormalSystem {
    /// The single equation: `eq = 0`.
    pub eq: Formula,
    /// The disequations: each `g ≠ 0`.
    pub neqs: Vec<Formula>,
}

/// Compile-time verdict about a ground (variable-free) normal system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroundStatus {
    /// Holds in every nondegenerate Boolean algebra.
    Valid,
    /// Fails in every Boolean algebra.
    Unsatisfiable,
}

impl NormalSystem {
    /// The trivially true system (`0 = 0`).
    pub fn trivial() -> Self {
        NormalSystem {
            eq: Formula::Zero,
            neqs: Vec::new(),
        }
    }

    /// All variables mentioned.
    pub fn vars(&self) -> Vec<Var> {
        let mut set = self.eq.vars();
        for g in &self.neqs {
            set.extend(g.vars());
        }
        set.into_iter().collect()
    }

    /// Whether the system is syntactically ground (no variables).
    pub fn is_ground(&self) -> bool {
        self.vars().is_empty()
    }

    /// Semantic status of a ground system: the equation must reduce to
    /// `0` and every disequation to a non-`0` constant (which for ground
    /// formulas means `1`).
    ///
    /// # Panics
    /// If the system still has variables.
    pub fn ground_status(&self) -> GroundStatus {
        assert!(self.is_ground(), "ground_status on a non-ground system");
        let mut bdd = Bdd::new();
        if !bdd.is_zero_formula(&self.eq) {
            return GroundStatus::Unsatisfiable;
        }
        for g in &self.neqs {
            if bdd.is_zero_formula(g) {
                return GroundStatus::Unsatisfiable;
            }
        }
        GroundStatus::Valid
    }

    /// Light semantic cleanup:
    /// * disequations `g ≡ 1` are dropped (always true in nondegenerate
    ///   algebras);
    /// * duplicate disequations (propositional equivalence) are merged;
    /// * the equation and disequations are [`simplify`]-normalized.
    ///
    /// A disequation `g ≡ 0` is kept (it marks the system unsatisfiable
    /// and is reported by [`NormalSystem::obviously_unsat`]).
    pub fn simplified(&self) -> NormalSystem {
        let mut bdd = Bdd::new();
        let eq = simplify(&self.eq);
        let mut neqs: Vec<Formula> = Vec::new();
        for g in &self.neqs {
            let g = simplify(g);
            if g.is_one() {
                continue;
            }
            if !neqs.iter().any(|h| bdd.equivalent(h, &g)) {
                neqs.push(g);
            }
        }
        NormalSystem { eq, neqs }
    }

    /// Whether the system is already propositionally unsatisfiable:
    /// `eq ≡ 1` (so `eq = 0` is impossible) or some `g ≡ 0`.
    pub fn obviously_unsat(&self) -> bool {
        let mut bdd = Bdd::new();
        bdd.is_one_formula(&self.eq) || self.neqs.iter().any(|g| bdd.is_zero_formula(g))
    }

    /// Pretty-prints with variable names.
    pub fn display<'a>(&'a self, table: &'a VarTable) -> NormalDisplay<'a> {
        NormalDisplay { s: self, table }
    }
}

/// Pretty-printer for normal systems.
pub struct NormalDisplay<'a> {
    s: &'a NormalSystem,
    table: &'a VarTable,
}

impl fmt::Display for NormalDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} = 0", self.s.eq.display(self.table))?;
        for g in &self.s.neqs {
            writeln!(f, "{} != 0", g.display(self.table))?;
        }
        Ok(())
    }
}

/// Theorem 1: rewrites a conjunction of constraints into
/// `f = 0 ∧ ⋀ gᵢ ≠ 0`.
pub fn normalize(constraints: &[Constraint]) -> NormalSystem {
    let mut eq = Formula::Zero;
    let mut neqs = Vec::new();
    for c in constraints {
        match c {
            Constraint::Subset(f, g) => {
                eq = Formula::or(eq, Formula::diff(f.clone(), g.clone()));
            }
            Constraint::Eq(f, g) => {
                eq = Formula::or(eq, Formula::xor(f.clone(), g.clone()));
            }
            Constraint::Disjoint(f, g) => {
                eq = Formula::or(eq, Formula::and(f.clone(), g.clone()));
            }
            Constraint::NotSubset(f, g) => {
                neqs.push(Formula::diff(f.clone(), g.clone()));
            }
            Constraint::Neq(f, g) => {
                neqs.push(Formula::xor(f.clone(), g.clone()));
            }
            Constraint::Overlaps(f, g) => {
                neqs.push(Formula::and(f.clone(), g.clone()));
            }
            Constraint::ProperSubset(f, g) => {
                eq = Formula::or(eq, Formula::diff(f.clone(), g.clone()));
                neqs.push(Formula::xor(f.clone(), g.clone()));
            }
        }
    }
    NormalSystem { eq, neqs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_algebra::{eval_formula, Assignment, BitsetAlgebra, BooleanAlgebra};

    fn vf(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// Semantic check: normalization preserves meaning over a powerset
    /// algebra, exhaustively for 2 variables over 2 ground elements.
    fn constraint_holds(alg: &BitsetAlgebra, c: &Constraint, a: u64, b: u64) -> bool {
        let assign = Assignment::new().with(Var(0), a).with(Var(1), b);
        let ev = |f: &Formula| eval_formula(alg, f, &assign).unwrap();
        match c {
            Constraint::Subset(f, g) => alg.le(&ev(f), &ev(g)),
            Constraint::NotSubset(f, g) => !alg.le(&ev(f), &ev(g)),
            Constraint::Eq(f, g) => alg.eq_elem(&ev(f), &ev(g)),
            Constraint::Neq(f, g) => !alg.eq_elem(&ev(f), &ev(g)),
            Constraint::ProperSubset(f, g) => {
                alg.le(&ev(f), &ev(g)) && !alg.eq_elem(&ev(f), &ev(g))
            }
            Constraint::Disjoint(f, g) => alg.is_zero(&alg.meet(&ev(f), &ev(g))),
            Constraint::Overlaps(f, g) => !alg.is_zero(&alg.meet(&ev(f), &ev(g))),
        }
    }

    fn normal_holds(alg: &BitsetAlgebra, s: &NormalSystem, a: u64, b: u64) -> bool {
        let assign = Assignment::new().with(Var(0), a).with(Var(1), b);
        if !alg.is_zero(&eval_formula(alg, &s.eq, &assign).unwrap()) {
            return false;
        }
        s.neqs
            .iter()
            .all(|g| !alg.is_zero(&eval_formula(alg, g, &assign).unwrap()))
    }

    #[test]
    fn normalization_preserves_semantics() {
        let alg = BitsetAlgebra::new(2);
        let cases = vec![
            Constraint::Subset(vf(0), vf(1)),
            Constraint::NotSubset(vf(0), vf(1)),
            Constraint::Eq(vf(0), Formula::not(vf(1))),
            Constraint::Neq(vf(0), vf(1)),
            Constraint::ProperSubset(vf(0), vf(1)),
            Constraint::Disjoint(vf(0), vf(1)),
            Constraint::Overlaps(vf(0), Formula::or(vf(0), vf(1))),
        ];
        for c in &cases {
            let n = normalize(std::slice::from_ref(c));
            for a in alg.elements() {
                for b in alg.elements() {
                    assert_eq!(
                        constraint_holds(&alg, c, a, b),
                        normal_holds(&alg, &n, a, b),
                        "constraint {c:?} at a={a:b} b={b:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn conjunction_normalizes_jointly() {
        let alg = BitsetAlgebra::new(3);
        let cs = vec![
            Constraint::Subset(vf(0), vf(1)),
            Constraint::Overlaps(vf(0), vf(1)),
            Constraint::Neq(vf(0), vf(1)),
        ];
        let n = normalize(&cs);
        assert_eq!(n.neqs.len(), 2);
        for a in alg.elements() {
            for b in alg.elements() {
                let direct = cs.iter().all(|c| constraint_holds(&alg, c, a, b));
                assert_eq!(direct, normal_holds(&alg, &n, a, b));
            }
        }
    }

    #[test]
    fn proper_subset_is_two_constraints() {
        let n = normalize(&[Constraint::ProperSubset(vf(0), vf(1))]);
        assert!(!n.eq.is_zero());
        assert_eq!(n.neqs.len(), 1);
    }

    #[test]
    fn ground_status() {
        let valid = NormalSystem {
            eq: Formula::Zero,
            neqs: vec![Formula::One],
        };
        assert_eq!(valid.ground_status(), GroundStatus::Valid);
        let bad_eq = NormalSystem {
            eq: Formula::One,
            neqs: vec![],
        };
        assert_eq!(bad_eq.ground_status(), GroundStatus::Unsatisfiable);
        let bad_neq = NormalSystem {
            eq: Formula::Zero,
            neqs: vec![Formula::Zero],
        };
        assert_eq!(bad_neq.ground_status(), GroundStatus::Unsatisfiable);
    }

    #[test]
    #[should_panic(expected = "non-ground")]
    fn ground_status_requires_ground() {
        let s = NormalSystem {
            eq: vf(0),
            neqs: vec![],
        };
        s.ground_status();
    }

    #[test]
    fn simplified_drops_trivial_neqs() {
        let s = NormalSystem {
            eq: Formula::and(vf(0), Formula::Zero),
            neqs: vec![
                Formula::One,
                Formula::or(vf(0), Formula::not(vf(0))), // ≡ 1
                vf(1),
                Formula::or(vf(1), vf(1)), // duplicate of x1
            ],
        };
        let t = s.simplified();
        assert_eq!(t.eq, Formula::Zero);
        assert_eq!(t.neqs, vec![vf(1)]);
    }

    #[test]
    fn obviously_unsat_detection() {
        let bad = NormalSystem {
            eq: Formula::or(vf(0), Formula::not(vf(0))),
            neqs: vec![],
        };
        assert!(bad.obviously_unsat());
        let fine = NormalSystem {
            eq: vf(0),
            neqs: vec![vf(1)],
        };
        assert!(!fine.obviously_unsat());
        let bad_neq = NormalSystem {
            eq: Formula::Zero,
            neqs: vec![Formula::and(vf(0), Formula::not(vf(0)))],
        };
        assert!(bad_neq.obviously_unsat());
    }

    #[test]
    fn system_vars_and_display() {
        let mut sys = ConstraintSystem::new();
        let a = sys.table.intern("A");
        let b = sys.table.intern("B");
        sys.push(Constraint::Subset(Formula::var(a), Formula::var(b)));
        sys.push(Constraint::Overlaps(Formula::var(a), Formula::var(b)));
        assert_eq!(sys.vars(), vec![a, b]);
        let printed = sys.to_string();
        assert!(printed.contains("A <= B"));
        assert!(printed.contains("A & B != 0"));
    }
}
