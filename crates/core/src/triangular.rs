//! Algorithm 1 of the paper: the triangular solved form.
//!
//! Given a normal system `S` in variables `x₁ … xₙ` (the *retrieval
//! order*), repeated projection produces
//!
//! ```text
//! C₁(x₁)
//! C₂(x₁, x₂)
//! …
//! Cₙ(x₁, …, xₙ)
//! ```
//!
//! where each `Cᵢ` is the strongest necessary condition on the prefix
//! `x₁…xᵢ` (exact over atomless algebras). Each `Cᵢ` is in *solved form*
//! with respect to `xᵢ`:
//!
//! ```text
//! s(x₁…xᵢ₋₁) ≤ xᵢ ≤ t(x₁…xᵢ₋₁)   ∧   ⋀ⱼ ( xᵢ·pⱼ ∨ ¬xᵢ·qⱼ ≠ 0 )
//! ```
//!
//! obtained from Schröder's theorem (range part) and Boole's expansion
//! (disequations). The engine checks `Cᵢ` as soon as `xᵢ` is bound,
//! pruning useless partial solution tuples; `scq-core::plan` compiles
//! each row further into a bounding-box range query.

use std::fmt;

use scq_algebra::eval::UnboundVar;
use scq_algebra::{eval_formula_in, Assignment, BooleanAlgebra, VarLookup};
use scq_boolean::minimize::minimize;
use scq_boolean::quant::{boole_expansion, schroder_range};
use scq_boolean::{Formula, Var, VarTable};

use crate::constraint::NormalSystem;
use crate::proj::proj;

/// One disequation `x·p ∨ ¬x·q ≠ 0` of a solved row (Theorem 11 form).
#[derive(Clone, PartialEq, Debug)]
pub struct DiseqRow {
    /// Coefficient of `x`.
    pub p: Formula,
    /// Coefficient of `¬x`.
    pub q: Formula,
}

impl DiseqRow {
    /// The disequation as a formula `x·p ∨ ¬x·q` (to be compared with 0).
    pub fn to_formula(&self, x: Var) -> Formula {
        Formula::or(
            Formula::and(Formula::var(x), self.p.clone()),
            Formula::and(Formula::not(Formula::var(x)), self.q.clone()),
        )
    }
}

/// The solved-form constraint `Cᵢ` for one retrieval step.
#[derive(Clone, PartialEq, Debug)]
pub struct SolvedRow {
    /// The variable `xᵢ` this row constrains.
    pub var: Var,
    /// Lower bound `s(x₁…xᵢ₋₁)`: the row requires `s ≤ xᵢ`.
    pub lower: Formula,
    /// Upper bound `t(x₁…xᵢ₋₁)`: the row requires `xᵢ ≤ t`.
    pub upper: Formula,
    /// The disequations `xᵢ·pⱼ ∨ ¬xᵢ·qⱼ ≠ 0`.
    pub diseqs: Vec<DiseqRow>,
}

impl SolvedRow {
    /// Exact evaluation of the row in an algebra: requires bindings for
    /// `var` and every earlier variable mentioned.
    pub fn check<A: BooleanAlgebra>(
        &self,
        alg: &A,
        assign: &Assignment<A::Elem>,
    ) -> Result<bool, UnboundVar> {
        self.check_in(alg, assign)
    }

    /// [`SolvedRow::check`] over any assignment storage — the hot path
    /// used by the executors with borrowed `FlatAssignment`s, where the
    /// bound element and the variable leaves of `s`, `t`, `pⱼ`, `qⱼ`
    /// are read by reference instead of cloned.
    pub fn check_in<A: BooleanAlgebra, L: VarLookup<A::Elem>>(
        &self,
        alg: &A,
        assign: &L,
    ) -> Result<bool, UnboundVar> {
        let x = assign.lookup(self.var).ok_or(UnboundVar(self.var))?;
        let s = eval_formula_in(alg, &self.lower, assign)?;
        if !alg.le(s.as_ref(), x) {
            return Ok(false);
        }
        let t = eval_formula_in(alg, &self.upper, assign)?;
        if !alg.le(x, t.as_ref()) {
            return Ok(false);
        }
        for d in &self.diseqs {
            let p = eval_formula_in(alg, &d.p, assign)?;
            let q = eval_formula_in(alg, &d.q, assign)?;
            let val = alg.join(&alg.meet(x, p.as_ref()), &alg.diff(q.as_ref(), x));
            if alg.is_zero(&val) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Pretty-prints with variable names.
    pub fn display<'a>(&'a self, table: &'a VarTable) -> RowDisplay<'a> {
        RowDisplay { row: self, table }
    }
}

/// Pretty-printer for solved rows.
pub struct RowDisplay<'a> {
    row: &'a SolvedRow,
    table: &'a VarTable,
}

impl fmt::Display for RowDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.table;
        let x = t.display(self.row.var);
        write!(
            f,
            "{} <= {} <= {}",
            self.row.lower.display(t),
            x,
            self.row.upper.display(t)
        )?;
        for d in &self.row.diseqs {
            // Cosmetic special cases: x·1 ∨ ¬x·0 ≠ 0 is just x ≠ 0, etc.
            match (&d.p, &d.q) {
                (Formula::One, Formula::Zero) => write!(f, ",  {x} != 0")?,
                (Formula::Zero, Formula::One) => write!(f, ",  ~{x} != 0")?,
                (p, Formula::Zero) => write!(f, ",  {} & {} != 0", x, p.display(t))?,
                (Formula::Zero, q) => write!(f, ",  ~{} & {} != 0", x, q.display(t))?,
                (p, q) => write!(
                    f,
                    ",  {} & {} | ~{} & {} != 0",
                    x,
                    p.display(t),
                    x,
                    q.display(t)
                )?,
            }
        }
        Ok(())
    }
}

/// The triangular solved form of a constraint system.
#[derive(Clone, Debug)]
pub struct TriangularSystem {
    /// The retrieval order `x₁ … xₙ`.
    pub order: Vec<Var>,
    /// `rows[i]` constrains `order[i]` in terms of `order[..i]`.
    pub rows: Vec<SolvedRow>,
    /// `S₀`: the ground residue after eliminating every variable. Its
    /// [`NormalSystem::ground_status`] decides global satisfiability
    /// (exactly, over atomless algebras).
    pub ground: NormalSystem,
}

impl TriangularSystem {
    /// The row for a given variable, if it is part of the order.
    pub fn row_for(&self, v: Var) -> Option<&SolvedRow> {
        self.rows.iter().find(|r| r.var == v)
    }

    /// Exact check of the full triangular system under a complete
    /// assignment.
    ///
    /// Checks every row *and* the ground residue. The residue matters:
    /// a disequation whose variables all cancel during elimination (it
    /// becomes a constant before any row captures it) survives only in
    /// `S₀` — e.g. `¬(x∧y) = 0 ∧ ¬x ≠ 0`, where the disequation reduces
    /// to `0` after the first projection. The conjunction of rows plus
    /// the residue is equivalent to the original system for complete
    /// assignments.
    pub fn check_all<A: BooleanAlgebra>(
        &self,
        alg: &A,
        assign: &Assignment<A::Elem>,
    ) -> Result<bool, UnboundVar> {
        if self.ground.ground_status() == crate::constraint::GroundStatus::Unsatisfiable {
            return Ok(false);
        }
        for row in &self.rows {
            if !row.check(alg, assign)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Pretty-prints all rows.
    pub fn display<'a>(&'a self, table: &'a VarTable) -> TriangularDisplay<'a> {
        TriangularDisplay { t: self, table }
    }
}

/// Pretty-printer for triangular systems.
pub struct TriangularDisplay<'a> {
    t: &'a TriangularSystem,
    table: &'a VarTable,
}

impl fmt::Display for TriangularDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, row) in self.t.rows.iter().enumerate() {
            writeln!(f, "C{}: {}", i + 1, row.display(self.table))?;
        }
        Ok(())
    }
}

/// Algorithm 1: computes the triangular solved form of `system` under
/// the given retrieval order.
///
/// `order` must contain every variable of `system` exactly once (extra
/// variables that never occur are allowed and produce unconstrained
/// rows `0 ≤ x ≤ 1`).
///
/// # Panics
/// If `order` has duplicates or misses a system variable.
pub fn triangularize(system: &NormalSystem, order: &[Var]) -> TriangularSystem {
    let mut seen = std::collections::BTreeSet::new();
    for v in order {
        assert!(seen.insert(*v), "duplicate variable {v} in retrieval order");
    }
    for v in system.vars() {
        assert!(
            seen.contains(&v),
            "system variable {v} missing from retrieval order"
        );
    }

    let mut rows: Vec<SolvedRow> = Vec::with_capacity(order.len());
    let mut current = system.simplified();
    // Eliminate from the last retrieval variable backwards (the paper's
    // `for i = n downto 1`).
    for &x in order.iter().rev() {
        // Range part (Schröder, Theorem 10): s = f[x←0], t = ¬f[x←1].
        let (s, t) = schroder_range(&current.eq, x);
        // Disequations in which x occurs (Boole, Theorem 11).
        let mut diseqs = Vec::new();
        for g in &current.neqs {
            if g.mentions(x) {
                let (p, q) = boole_expansion(g, x);
                diseqs.push(DiseqRow {
                    p: minimize(&p),
                    q: minimize(&q),
                });
            }
        }
        // Rows are evaluated exactly per candidate tuple: emit the
        // irredundant prime cover (minimize) rather than the full BCF.
        rows.push(SolvedRow {
            var: x,
            lower: minimize(&s),
            upper: minimize(&t),
            diseqs,
        });
        current = proj(&current, x).simplified();
    }
    rows.reverse();
    TriangularSystem {
        order: order.to_vec(),
        rows,
        ground: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{normalize, Constraint, GroundStatus};
    use scq_algebra::{BitsetAlgebra, BooleanAlgebra};
    use scq_boolean::Bdd;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// Builds the paper's smuggler system (Figure 1) over variables
    /// C=0, A=1, T=2, R=3, B=4.
    fn smuggler() -> NormalSystem {
        let (c, a, t, r, b) = (v(0), v(1), v(2), v(3), v(4));
        let cs = vec![
            Constraint::Subset(a.clone(), c.clone()),
            Constraint::Subset(b.clone(), c.clone()),
            Constraint::Subset(
                r.clone(),
                Formula::or(Formula::or(a.clone(), b.clone()), t.clone()),
            ),
            Constraint::Overlaps(r.clone(), a.clone()),
            Constraint::Overlaps(r.clone(), t.clone()),
            Constraint::ProperSubset(t.clone(), c.clone()),
        ];
        normalize(&cs)
    }

    /// `f ≡ g` under the context `ctx = 0` (propositionally).
    fn equiv_under(bdd: &mut Bdd, ctx: &Formula, f: &Formula, g: &Formula) -> bool {
        let not_ctx_holds = Formula::not(ctx.clone()); // ctx = 0 means ¬ctx... careful:
                                                       // context is "ctx-formula evaluates to 0", i.e. assignments where
                                                       // ctx is false. f ≡ g there ⟺ ¬ctx → (f ⊕ g) is unsat ⟺
                                                       // ¬ctx ∧ (f ⊕ g) ≡ 0.
        let _ = not_ctx_holds;
        let xor = Formula::xor(f.clone(), g.clone());
        let test = Formula::and(Formula::not(ctx.clone()), xor);
        bdd.is_zero_formula(&test)
    }

    #[test]
    fn smuggler_triangular_matches_paper() {
        // Paper §2: with retrieval order T, R, B (C and A known) the
        // triangular form is
        //   0 ≤ T ≤ C,  (plus disequations making T nonempty)
        //   0 ≤ R ≤ C∨T,  A∧R ≠ 0,  R∧T ≠ 0
        //   R∧¬A∧¬T ≤ B ≤ C
        // modulo the context A ⊆ C ∧ T ⊆ C established by earlier rows.
        let sys = smuggler();
        let order = [Var(0), Var(1), Var(2), Var(3), Var(4)]; // C,A,T,R,B
        let tri = triangularize(&sys, &order);
        assert_eq!(tri.rows.len(), 5);
        let mut bdd = Bdd::new();
        let (c, a, t, r) = (v(0), v(1), v(2), v(3));
        // context: A∖C = 0 and T∖C = 0
        let ctx = Formula::or(
            Formula::diff(a.clone(), c.clone()),
            Formula::diff(t.clone(), c.clone()),
        );

        let row_b = tri.row_for(Var(4)).unwrap();
        assert!(bdd.equivalent(&row_b.upper, &c), "B ≤ C exactly");
        let want_lower =
            Formula::and_all([r.clone(), Formula::not(a.clone()), Formula::not(t.clone())]);
        assert!(
            equiv_under(&mut bdd, &ctx, &row_b.lower, &want_lower),
            "R∧¬A∧¬T ≤ B under context; got {}",
            row_b.lower
        );
        assert!(row_b.diseqs.is_empty(), "no disequation mentions B");

        let row_r = tri.row_for(Var(3)).unwrap();
        assert!(
            equiv_under(&mut bdd, &ctx, &row_r.lower, &Formula::Zero),
            "0 ≤ R under context"
        );
        let c_or_t = Formula::or(c.clone(), t.clone());
        assert!(
            equiv_under(&mut bdd, &ctx, &row_r.upper, &c_or_t),
            "R ≤ C∨T under context; got {}",
            row_r.upper
        );
        assert_eq!(row_r.diseqs.len(), 2, "A∧R ≠ 0 and R∧T ≠ 0");
        for d in &row_r.diseqs {
            // Both are pure x·p ≠ 0 disequations: q reduces to 0 in context.
            assert!(
                equiv_under(&mut bdd, &ctx, &d.q, &Formula::Zero),
                "diseq q-part vanishes; got {}",
                d.q
            );
        }
        let ps: Vec<bool> = row_r
            .diseqs
            .iter()
            .map(|d| equiv_under(&mut bdd, &ctx, &d.p, &a))
            .collect();
        assert!(ps.contains(&true), "one disequation is A∧R ≠ 0");

        let row_t = tri.row_for(Var(2)).unwrap();
        assert!(
            equiv_under(&mut bdd, &ctx, &row_t.lower, &Formula::Zero),
            "0 ≤ T"
        );
        assert!(
            equiv_under(&mut bdd, &ctx, &row_t.upper, &c),
            "T ≤ C; got {}",
            row_t.upper
        );
        assert!(
            !row_t.diseqs.is_empty(),
            "T is forced nonempty via disequations"
        );
    }

    #[test]
    fn smuggler_is_satisfiable() {
        let sys = smuggler();
        let order = [Var(0), Var(1), Var(2), Var(3), Var(4)];
        let tri = triangularize(&sys, &order);
        assert_eq!(tri.ground.ground_status(), GroundStatus::Valid);
    }

    #[test]
    fn rows_only_mention_earlier_variables() {
        let sys = smuggler();
        let order = [Var(0), Var(1), Var(2), Var(3), Var(4)];
        let tri = triangularize(&sys, &order);
        for (i, row) in tri.rows.iter().enumerate() {
            let allowed: std::collections::BTreeSet<Var> = order[..i].iter().copied().collect();
            let check = |f: &Formula| {
                for vv in f.vars() {
                    assert!(
                        allowed.contains(&vv),
                        "row {i} mentions later var {vv} in {f}"
                    );
                }
            };
            check(&row.lower);
            check(&row.upper);
            for d in &row.diseqs {
                check(&d.p);
                check(&d.q);
            }
            assert_eq!(row.var, order[i]);
        }
        assert!(tri.ground.is_ground());
    }

    #[test]
    fn triangular_is_necessary_condition() {
        // Any exact solution of S satisfies every row (soundness of the
        // solved form), exhaustively over small bitsets.
        use scq_algebra::eval_formula;
        let alg = BitsetAlgebra::new(2);
        let sys = NormalSystem {
            eq: Formula::diff(v(0), v(1)), // x0 ⊆ x1
            neqs: vec![Formula::and(v(0), v(2))],
        };
        let order = [Var(0), Var(1), Var(2)];
        let tri = triangularize(&sys, &order);
        for e0 in alg.elements() {
            for e1 in alg.elements() {
                for e2 in alg.elements() {
                    let assign = Assignment::new()
                        .with(Var(0), e0)
                        .with(Var(1), e1)
                        .with(Var(2), e2);
                    let s_holds = alg.is_zero(&eval_formula(&alg, &sys.eq, &assign).unwrap())
                        && sys
                            .neqs
                            .iter()
                            .all(|g| !alg.is_zero(&eval_formula(&alg, g, &assign).unwrap()));
                    if s_holds {
                        assert!(tri.check_all(&alg, &assign).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn unsatisfiable_system_has_unsat_ground() {
        // x ≠ 0 ∧ x = 0
        let sys = NormalSystem {
            eq: v(0),
            neqs: vec![v(0)],
        };
        let tri = triangularize(&sys, &[Var(0)]);
        assert_eq!(tri.ground.ground_status(), GroundStatus::Unsatisfiable);
    }

    #[test]
    fn unconstrained_variable_rows() {
        // A variable the system never mentions still gets a row. When it
        // is eliminated LAST (first in retrieval order), projection has
        // already reduced the system and the row is syntactically
        // trivial; when eliminated FIRST, Schröder yields f ≤ x ≤ ¬f,
        // which is trivial only modulo the remaining equation f = 0.
        let sys = NormalSystem {
            eq: v(0),
            neqs: vec![],
        };
        let tri = triangularize(&sys, &[Var(9), Var(0)]);
        let row9 = tri.row_for(Var(9)).unwrap();
        assert_eq!(row9.lower, Formula::Zero);
        assert_eq!(row9.upper, Formula::One);
        assert!(row9.diseqs.is_empty());

        let tri2 = triangularize(&sys, &[Var(0), Var(9)]);
        let row9b = tri2.row_for(Var(9)).unwrap();
        assert_eq!(row9b.lower, v(0), "Schröder lower bound is f itself");
        let mut bdd = Bdd::new();
        assert!(bdd.equivalent(&row9b.upper, &Formula::not(v(0))));
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_order_rejected() {
        let sys = NormalSystem::trivial();
        triangularize(&sys, &[Var(0), Var(0)]);
    }

    #[test]
    #[should_panic(expected = "missing from retrieval order")]
    fn missing_variable_rejected() {
        let sys = NormalSystem {
            eq: v(3),
            neqs: vec![],
        };
        triangularize(&sys, &[Var(0)]);
    }

    #[test]
    fn row_check_semantics() {
        // Row: x1 ≤ x0 ≤ 1, with diseq x0·x2 ∨ ¬x0·0 ≠ 0.
        let row = SolvedRow {
            var: Var(0),
            lower: v(1),
            upper: Formula::One,
            diseqs: vec![DiseqRow {
                p: v(2),
                q: Formula::Zero,
            }],
        };
        let alg = BitsetAlgebra::new(4);
        let ok = Assignment::new()
            .with(Var(0), 0b0111u64)
            .with(Var(1), 0b0011u64)
            .with(Var(2), 0b0100u64);
        assert!(row.check(&alg, &ok).unwrap());
        let bad_lower = Assignment::new()
            .with(Var(0), 0b0001u64)
            .with(Var(1), 0b0011u64)
            .with(Var(2), 0b0100u64);
        assert!(!row.check(&alg, &bad_lower).unwrap());
        let bad_diseq = Assignment::new()
            .with(Var(0), 0b0011u64)
            .with(Var(1), 0b0011u64)
            .with(Var(2), 0b0100u64);
        assert!(!row.check(&alg, &bad_diseq).unwrap());
    }

    #[test]
    fn display_rows() {
        let sys = smuggler();
        let order = [Var(0), Var(1), Var(2), Var(3), Var(4)];
        let tri = triangularize(&sys, &order);
        let mut table = VarTable::new();
        for n in ["C", "A", "T", "R", "B"] {
            table.intern(n);
        }
        let text = tri.display(&table).to_string();
        assert!(text.contains("C1:"));
        assert!(text.contains("<= B <="), "row for B is printed: {text}");
    }
}
