//! Algebra-generic exact evaluation of constraints and systems.
//!
//! Each checker comes in two flavours: the `*_in` form is generic over
//! [`VarLookup`] storage and evaluates without cloning elements at
//! variable leaves (the executors' zero-clone path); the original form
//! over [`Assignment`] delegates to it.

use scq_algebra::eval::UnboundVar;
use scq_algebra::{eval_formula_in, Assignment, BooleanAlgebra, VarLookup};

use crate::constraint::{Constraint, NormalSystem};

/// Whether a single surface constraint holds under `assign`.
pub fn check_constraint<A: BooleanAlgebra>(
    alg: &A,
    c: &Constraint,
    assign: &Assignment<A::Elem>,
) -> Result<bool, UnboundVar> {
    check_constraint_in(alg, c, assign)
}

/// [`check_constraint`] over any assignment storage.
pub fn check_constraint_in<A: BooleanAlgebra, L: VarLookup<A::Elem>>(
    alg: &A,
    c: &Constraint,
    assign: &L,
) -> Result<bool, UnboundVar> {
    let ev = |f| eval_formula_in(alg, f, assign);
    Ok(match c {
        Constraint::Subset(f, g) => alg.le(ev(f)?.as_ref(), ev(g)?.as_ref()),
        Constraint::NotSubset(f, g) => !alg.le(ev(f)?.as_ref(), ev(g)?.as_ref()),
        Constraint::Eq(f, g) => alg.eq_elem(ev(f)?.as_ref(), ev(g)?.as_ref()),
        Constraint::Neq(f, g) => !alg.eq_elem(ev(f)?.as_ref(), ev(g)?.as_ref()),
        Constraint::ProperSubset(f, g) => {
            let (a, b) = (ev(f)?, ev(g)?);
            alg.le(a.as_ref(), b.as_ref()) && !alg.eq_elem(a.as_ref(), b.as_ref())
        }
        Constraint::Disjoint(f, g) => alg.is_zero(&alg.meet(ev(f)?.as_ref(), ev(g)?.as_ref())),
        Constraint::Overlaps(f, g) => !alg.is_zero(&alg.meet(ev(f)?.as_ref(), ev(g)?.as_ref())),
    })
}

/// Whether every constraint of a system holds.
pub fn check_system<A: BooleanAlgebra>(
    alg: &A,
    constraints: &[Constraint],
    assign: &Assignment<A::Elem>,
) -> Result<bool, UnboundVar> {
    check_system_in(alg, constraints, assign)
}

/// [`check_system`] over any assignment storage.
pub fn check_system_in<A: BooleanAlgebra, L: VarLookup<A::Elem>>(
    alg: &A,
    constraints: &[Constraint],
    assign: &L,
) -> Result<bool, UnboundVar> {
    for c in constraints {
        if !check_constraint_in(alg, c, assign)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Whether a Theorem-1 normal system holds.
pub fn check_normal<A: BooleanAlgebra>(
    alg: &A,
    s: &NormalSystem,
    assign: &Assignment<A::Elem>,
) -> Result<bool, UnboundVar> {
    check_normal_in(alg, s, assign)
}

/// [`check_normal`] over any assignment storage.
pub fn check_normal_in<A: BooleanAlgebra, L: VarLookup<A::Elem>>(
    alg: &A,
    s: &NormalSystem,
    assign: &L,
) -> Result<bool, UnboundVar> {
    if !alg.is_zero(eval_formula_in(alg, &s.eq, assign)?.as_ref()) {
        return Ok(false);
    }
    for g in &s.neqs {
        if alg.is_zero(eval_formula_in(alg, g, assign)?.as_ref()) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::normalize;
    use scq_algebra::BitsetAlgebra;
    use scq_boolean::{Formula, Var};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn surface_and_normal_agree() {
        let alg = BitsetAlgebra::new(3);
        let cs = vec![
            Constraint::Subset(v(0), v(1)),
            Constraint::Overlaps(v(0), v(2)),
            Constraint::Neq(v(1), v(2)),
        ];
        let n = normalize(&cs);
        for a in alg.elements() {
            for b in alg.elements() {
                for c in alg.elements() {
                    let assign = Assignment::new()
                        .with(Var(0), a)
                        .with(Var(1), b)
                        .with(Var(2), c);
                    assert_eq!(
                        check_system(&alg, &cs, &assign).unwrap(),
                        check_normal(&alg, &n, &assign).unwrap(),
                    );
                }
            }
        }
    }

    #[test]
    fn unbound_variables_error() {
        let alg = BitsetAlgebra::new(2);
        let c = Constraint::Subset(v(0), v(5));
        let assign = Assignment::new().with(Var(0), 1u64);
        assert_eq!(check_constraint(&alg, &c, &assign), Err(UnboundVar(Var(5))));
    }

    #[test]
    fn proper_subset_strictness() {
        let alg = BitsetAlgebra::new(2);
        let c = Constraint::ProperSubset(v(0), v(1));
        let strict = Assignment::new()
            .with(Var(0), 0b01u64)
            .with(Var(1), 0b11u64);
        assert!(check_constraint(&alg, &c, &strict).unwrap());
        let equal = Assignment::new()
            .with(Var(0), 0b11u64)
            .with(Var(1), 0b11u64);
        assert!(!check_constraint(&alg, &c, &equal).unwrap());
    }
}
