//! Algorithm 2 of the paper: best lower and upper bounding-box function
//! approximations to a Boolean function.
//!
//! For a Boolean function `f` over region variables, the paper defines
//! (Definitions in §4):
//!
//! * `F ⊑ f` (lower approximation) iff `F(⌈x₁⌉,…,⌈xₙ⌉) ⊑ ⌈f(x₁,…,xₙ)⌉`
//!   for all region values, and
//! * `f ⊑ F` (upper approximation) iff `⌈f(x₁,…,xₙ)⌉ ⊑ F(⌈x₁⌉,…,⌈xₙ⌉)`.
//!
//! The best such bounding-box functions are (Theorems 16 and 18):
//!
//! * `L_f = ⊔ { ⌈x⌉ : atom x with x ≤ f }` — the single-atom terms of
//!   the Blake canonical form;
//! * `U_f = ⊔_{terms t of SOP(f)} ⊓_{positive atoms x of t} ⌈x⌉` —
//!   computed from the BCF by dropping negative literals (Algorithm 2).
//!
//! A term with *no* positive atoms (e.g. `¬x`) has the unbounded meet as
//! its upper approximation; we represent that top element explicitly as
//! [`UpperBound::Top`] since boxes over `ℝᵏ` have no largest element.
//!
//! Note `L_f` for `f ≡ 1` would ideally be the universe box; without a
//! universe constant the atom-join is `∅`, which is still a *sound*
//! lower bound (the theorems in the paper are stated for functions whose
//! only constants are 0 and 1; the compiler never needs a better lower
//! bound for constant-true functions).

use scq_bbox::{Bbox, BboxExpr};
use scq_boolean::bcf::{blake_canonical_form, single_atom_terms};
use scq_boolean::Formula;

/// An upper bounding-box function, possibly the top element (no bound).
#[derive(Clone, PartialEq, Debug)]
pub enum UpperBound<const K: usize> {
    /// No finite bound: every box satisfies it.
    Top,
    /// A concrete bounding-box function.
    Expr(BboxExpr<K>),
}

impl<const K: usize> UpperBound<K> {
    /// Evaluates under a variable valuation; `None` means top.
    pub fn eval<F: Fn(usize) -> Bbox<K> + Copy>(&self, lookup: F) -> Option<Bbox<K>> {
        match self {
            UpperBound::Top => None,
            UpperBound::Expr(e) => Some(e.eval(lookup)),
        }
    }

    /// Whether this is the top element.
    pub fn is_top(&self) -> bool {
        matches!(self, UpperBound::Top)
    }

    /// Whether this is the constant `∅` bound (matches only nothing).
    pub fn is_const_empty(&self) -> bool {
        matches!(self, UpperBound::Expr(e) if e.is_const_empty())
    }
}

impl<const K: usize> std::fmt::Display for UpperBound<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpperBound::Top => write!(f, "⊤"),
            UpperBound::Expr(e) => write!(f, "{e}"),
        }
    }
}

/// The best lower bounding-box function `L_f` (Theorem 16).
///
/// Variables map to [`BboxExpr::Var`] by their [`scq_boolean::Var`]
/// index.
pub fn lower_bbox_fn<const K: usize>(f: &Formula) -> BboxExpr<K> {
    let bcf = blake_canonical_form(f);
    BboxExpr::join_all(
        single_atom_terms(&bcf)
            .into_iter()
            .map(|v| BboxExpr::var(v.index())),
    )
}

/// The best upper bounding-box function `U_f` (Theorem 18 /
/// Algorithm 2): drop negative literals from the Blake canonical form,
/// replace `∧`/`∨` by `⊓`/`⊔`.
pub fn upper_bbox_fn<const K: usize>(f: &Formula) -> UpperBound<K> {
    let bcf = blake_canonical_form(f);
    if bcf.is_zero() {
        return UpperBound::Expr(BboxExpr::empty());
    }
    let mut terms: Vec<BboxExpr<K>> = Vec::with_capacity(bcf.len());
    for cube in bcf.cubes() {
        let pos = cube.positive_part();
        if pos.is_one() {
            // No positive atom bounds this term: the whole join is top.
            return UpperBound::Top;
        }
        terms.push(BboxExpr::meet_all(
            pos.literals().map(|l| BboxExpr::var(l.var.index())),
        ));
    }
    UpperBound::Expr(BboxExpr::join_all(terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_algebra::{eval_formula, Assignment};
    use scq_boolean::Var;
    use scq_region::{AaBox, Region, RegionAlgebra};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn paper_example_3() {
        // f = x·y ∨ ¬x·y ∨ x·z·¬w; BCF = y ∨ x·z·¬w.
        // L_f = ⌈y⌉;  U_f = ⌈y⌉ ⊔ (⌈x⌉ ⊓ ⌈z⌉).
        let (x, y, z, w) = (0u32, 1u32, 2u32, 3u32);
        let f = Formula::or_all([
            Formula::and(v(x), v(y)),
            Formula::and(Formula::not(v(x)), v(y)),
            Formula::and_all([v(x), v(z), Formula::not(v(w))]),
        ]);
        let l: BboxExpr<2> = lower_bbox_fn(&f);
        assert_eq!(l, BboxExpr::var(y as usize));
        let u: UpperBound<2> = upper_bbox_fn(&f);
        // Semantically: U_f = ⌈y⌉ ⊔ (⌈x⌉ ⊓ ⌈z⌉). Compare by evaluation
        // (the join's operand order depends on BCF cube ordering).
        let want = BboxExpr::join(
            BboxExpr::var(y as usize),
            BboxExpr::meet(BboxExpr::var(x as usize), BboxExpr::var(z as usize)),
        );
        let samples: [[Bbox<2>; 4]; 3] = [
            [
                Bbox::new([0.0, 0.0], [2.0, 2.0]),
                Bbox::new([5.0, 5.0], [7.0, 7.0]),
                Bbox::new([1.0, 1.0], [3.0, 3.0]),
                Bbox::new([9.0, 9.0], [9.5, 9.5]),
            ],
            [
                Bbox::Empty,
                Bbox::new([5.0, 5.0], [7.0, 7.0]),
                Bbox::new([1.0, 1.0], [3.0, 3.0]),
                Bbox::Empty,
            ],
            [
                Bbox::new([0.0, 0.0], [9.0, 9.0]),
                Bbox::Empty,
                Bbox::Empty,
                Bbox::new([4.0, 4.0], [5.0, 5.0]),
            ],
        ];
        match &u {
            UpperBound::Expr(e) => {
                for boxes in &samples {
                    assert_eq!(e.eval(|i| boxes[i]), want.eval(|i| boxes[i]));
                }
            }
            UpperBound::Top => panic!("U_f must be bounded"),
        }
    }

    #[test]
    fn constants() {
        let l0: BboxExpr<1> = lower_bbox_fn(&Formula::Zero);
        assert!(l0.is_const_empty());
        let u0: UpperBound<1> = upper_bbox_fn(&Formula::Zero);
        assert!(u0.is_const_empty());
        let u1: UpperBound<1> = upper_bbox_fn(&Formula::One);
        assert!(u1.is_top());
        let l1: BboxExpr<1> = lower_bbox_fn(&Formula::One);
        assert!(l1.is_const_empty(), "sound (weak) lower bound for 1");
    }

    #[test]
    fn negative_literal_only_terms_are_top() {
        let u: UpperBound<1> = upper_bbox_fn(&Formula::not(v(0)));
        assert!(u.is_top());
        // but a disjunction with a bounded term is still top overall
        let f = Formula::or(Formula::not(v(0)), v(1));
        let u: UpperBound<1> = upper_bbox_fn(&f);
        assert!(u.is_top());
    }

    #[test]
    fn syntactic_transform_is_not_best_upper() {
        // The paper's example: x·y ∨ x·z and x·(y∨z) denote the same
        // function; naive syntactic translation of the first gives
        // (⌈x⌉⊓⌈y⌉) ⊔ (⌈x⌉⊓⌈z⌉), which can be smaller than
        // ⌈x⌉ ⊓ (⌈y⌉⊔⌈z⌉). Our U_f goes through the BCF, so both
        // syntaxes yield the same (best) function.
        let f1 = Formula::or(Formula::and(v(0), v(1)), Formula::and(v(0), v(2)));
        let f2 = Formula::and(v(0), Formula::or(v(1), v(2)));
        let u1: UpperBound<2> = upper_bbox_fn(&f1);
        let u2: UpperBound<2> = upper_bbox_fn(&f2);
        assert_eq!(u1, u2);
    }

    /// Evaluates f over concrete regions and checks the sandwich
    /// `L_f(boxes) ⊑ ⌈f(regions)⌉ ⊑ U_f(boxes)`.
    fn check_sandwich(f: &Formula, regions: &[Region<2>]) {
        let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let mut assign = Assignment::new();
        for (i, r) in regions.iter().enumerate() {
            assign.bind(Var(i as u32), r.clone());
        }
        let value = eval_formula(&alg, f, &assign).unwrap();
        let exact = value.bbox();
        let lookup = |i: usize| regions[i].bbox();
        let l: BboxExpr<2> = lower_bbox_fn(f);
        assert!(
            l.eval(lookup).le(&exact),
            "L_f ⊑ ⌈f⌉ violated: {} vs {exact} for {f}",
            l.eval(lookup)
        );
        let u: UpperBound<2> = upper_bbox_fn(f);
        if let Some(ub) = u.eval(lookup) {
            assert!(exact.le(&ub), "⌈f⌉ ⊑ U_f violated: {exact} vs {ub} for {f}");
        }
    }

    #[test]
    fn sandwich_on_random_formulas_and_regions() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        use scq_boolean::random::{random_formula, FormulaConfig};
        let mut rng = StdRng::seed_from_u64(5150);
        let cfg = FormulaConfig {
            nvars: 4,
            depth: 5,
            const_prob: 0.05,
        };
        for _ in 0..60 {
            let f = random_formula(&mut rng, &cfg);
            let regions: Vec<Region<2>> = (0..4)
                .map(|_| {
                    let nboxes = rng.random_range(1..4);
                    Region::from_boxes((0..nboxes).map(|_| {
                        let lo = [rng.random_range(0.0..80.0), rng.random_range(0.0..80.0)];
                        let w = [rng.random_range(1.0..15.0), rng.random_range(1.0..15.0)];
                        AaBox::new(lo, [lo[0] + w[0], lo[1] + w[1]])
                    }))
                })
                .collect();
            check_sandwich(&f, &regions);
        }
    }

    #[test]
    fn sandwich_with_empty_regions() {
        let f = Formula::or(Formula::and(v(0), v(1)), v(2));
        let regions = vec![
            Region::empty(),
            Region::from_box(AaBox::new([0.0, 0.0], [5.0, 5.0])),
            Region::empty(),
        ];
        check_sandwich(&f, &regions);
    }

    #[test]
    fn upper_bound_display() {
        let u: UpperBound<1> = UpperBound::Top;
        assert_eq!(u.to_string(), "⊤");
        let e: UpperBound<1> = UpperBound::Expr(BboxExpr::var(3));
        assert_eq!(e.to_string(), "⌈x3⌉");
    }
}
