//! The corner transform (paper, Figure 3; Samet \[12\]).
//!
//! A nonempty box in `Xᵏ` is a point `(lo, hi)` in `X²ᵏ`. Under this
//! transform the three bounding-box constraint shapes that spatial
//! indexes support —
//!
//! * `⌈x⌉ ⊑ a` (containment in a constant),
//! * `b ⊑ ⌈x⌉` (containment of a constant),
//! * `⌈x⌉ ⊓ c ≠ ∅` (overlap with a constant)
//!
//! — all become per-coordinate interval constraints on `(lo, hi)`, so any
//! conjunction of them is a single axis-aligned **range query** in `X²ᵏ`.
//! [`CornerQuery`] is that range query: it accumulates constraint parts
//! and yields lower/upper bounds for the 2k corner coordinates.

use crate::lattice::Bbox;

/// A corner point: the `(lo, hi)` pair representing a box in `X²ᵏ`.
pub type CornerPoint<const K: usize> = ([f64; K], [f64; K]);

/// The corner transform: a nonempty box becomes the pair of its corners,
/// i.e. a point in `X²ᵏ` split as `(lo, hi)`. `None` for the empty box,
/// which has no corner representation.
pub fn corner_point<const K: usize>(b: &Bbox<K>) -> Option<CornerPoint<K>> {
    match b {
        Bbox::Empty => None,
        Bbox::Box { lo, hi } => Some((*lo, *hi)),
    }
}

/// An axis-aligned range query over corner points, i.e. a box in `X²ᵏ`.
///
/// Built by conjoining constraint parts; answers
/// [`CornerQuery::matches`] for a candidate bounding box. The query
/// starts unconstrained (the whole corner space) and each part only
/// shrinks it, mirroring `⊓` on the query box of Figure 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CornerQuery<const K: usize> {
    /// Lower bounds on the `lo` coordinates.
    pub lo_min: [f64; K],
    /// Upper bounds on the `lo` coordinates.
    pub lo_max: [f64; K],
    /// Lower bounds on the `hi` coordinates.
    pub hi_min: [f64; K],
    /// Upper bounds on the `hi` coordinates.
    pub hi_max: [f64; K],
    unsat: bool,
}

impl<const K: usize> Default for CornerQuery<K> {
    fn default() -> Self {
        Self::unconstrained()
    }
}

impl<const K: usize> CornerQuery<K> {
    /// The query matching every box.
    pub fn unconstrained() -> Self {
        CornerQuery {
            lo_min: [f64::NEG_INFINITY; K],
            lo_max: [f64::INFINITY; K],
            hi_min: [f64::NEG_INFINITY; K],
            hi_max: [f64::INFINITY; K],
            unsat: false,
        }
    }

    /// The query matching no box.
    pub fn unsatisfiable() -> Self {
        CornerQuery {
            unsat: true,
            ..Self::unconstrained()
        }
    }

    /// Whether the query provably matches nothing.
    pub fn is_unsatisfiable(&self) -> bool {
        self.unsat
            || (0..K).any(|d| self.lo_min[d] > self.lo_max[d] || self.hi_min[d] > self.hi_max[d])
    }

    /// Adds `⌈x⌉ ⊑ a`: the candidate must be contained in `a`.
    ///
    /// With an empty `a` only the empty box would qualify, and corner
    /// space has no empty boxes, so the query becomes unsatisfiable.
    pub fn and_contained_in(mut self, a: &Bbox<K>) -> Self {
        match a {
            Bbox::Empty => {
                self.unsat = true;
                self
            }
            Bbox::Box { lo, hi } => {
                for d in 0..K {
                    self.lo_min[d] = self.lo_min[d].max(lo[d]);
                    self.hi_max[d] = self.hi_max[d].min(hi[d]);
                }
                self
            }
        }
    }

    /// Adds `b ⊑ ⌈x⌉`: the candidate must contain `b`. An empty `b` is
    /// contained in everything, so it adds no constraint.
    pub fn and_contains(mut self, b: &Bbox<K>) -> Self {
        match b {
            Bbox::Empty => self,
            Bbox::Box { lo, hi } => {
                for d in 0..K {
                    self.lo_max[d] = self.lo_max[d].min(lo[d]);
                    self.hi_min[d] = self.hi_min[d].max(hi[d]);
                }
                self
            }
        }
    }

    /// Adds `⌈x⌉ ⊓ c ≠ ∅`: the candidate must overlap `c`. Nothing
    /// overlaps the empty box, so an empty `c` makes the query
    /// unsatisfiable.
    pub fn and_overlaps(mut self, c: &Bbox<K>) -> Self {
        match c {
            Bbox::Empty => {
                self.unsat = true;
                self
            }
            Bbox::Box { lo, hi } => {
                for d in 0..K {
                    self.lo_max[d] = self.lo_max[d].min(hi[d]);
                    self.hi_min[d] = self.hi_min[d].max(lo[d]);
                }
                self
            }
        }
    }

    /// Reassembles a query from raw corner bounds plus the
    /// unsatisfiable marker — the inverse of reading the public bound
    /// fields and [`CornerQuery::is_unsatisfiable`]. This is the
    /// deserialization entry point for transports that ship corner
    /// queries between processes; a query rebuilt from its own parts
    /// matches exactly the same boxes as the original.
    pub fn from_parts(
        lo_min: [f64; K],
        lo_max: [f64; K],
        hi_min: [f64; K],
        hi_max: [f64; K],
        unsat: bool,
    ) -> Self {
        CornerQuery {
            lo_min,
            lo_max,
            hi_min,
            hi_max,
            unsat,
        }
    }

    /// Whether a candidate bounding box satisfies the query.
    ///
    /// The empty box never matches (it has no corner point).
    pub fn matches(&self, b: &Bbox<K>) -> bool {
        if self.unsat {
            return false;
        }
        match corner_point(b) {
            None => false,
            Some((lo, hi)) => (0..K).all(|d| {
                self.lo_min[d] <= lo[d]
                    && lo[d] <= self.lo_max[d]
                    && self.hi_min[d] <= hi[d]
                    && hi[d] <= self.hi_max[d]
            }),
        }
    }

    /// The query box in corner space as `(lower, upper)` corner-point
    /// pairs — the rectangle shaded in the paper's Figure 3.
    pub fn query_box(&self) -> (CornerPoint<K>, CornerPoint<K>) {
        ((self.lo_min, self.hi_min), (self.lo_max, self.hi_max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1(lo: f64, hi: f64) -> Bbox<1> {
        Bbox::new([lo], [hi])
    }

    #[test]
    fn corner_point_round_trip() {
        let b = Bbox::new([1.0, 2.0], [3.0, 4.0]);
        assert_eq!(corner_point(&b), Some(([1.0, 2.0], [3.0, 4.0])));
        assert_eq!(corner_point(&Bbox::<2>::Empty), None);
    }

    #[test]
    fn figure3_combination() {
        // Figure 3: intervals x with a ⊑ ⌈x⌉, ⌈x⌉ ⊑ b, ⌈x⌉ ⊓ c ≠ ∅.
        let a = b1(2.0, 3.0);
        let b = b1(0.0, 10.0);
        let c = b1(8.0, 9.0);
        let q = CornerQuery::unconstrained()
            .and_contains(&a)
            .and_contained_in(&b)
            .and_overlaps(&c);
        assert!(q.matches(&b1(1.0, 8.5)), "covers a, inside b, touches c");
        assert!(!q.matches(&b1(2.5, 9.0)), "does not contain a");
        assert!(!q.matches(&b1(-1.0, 8.5)), "not inside b");
        assert!(!q.matches(&b1(1.0, 7.0)), "misses c");
        assert!(!q.is_unsatisfiable());
    }

    #[test]
    fn matches_agrees_with_direct_predicates() {
        let a = b1(2.0, 6.0);
        let bb = b1(0.0, 8.0);
        let c = b1(5.0, 7.0);
        let q = CornerQuery::unconstrained()
            .and_contains(&a)
            .and_contained_in(&bb)
            .and_overlaps(&c);
        // exhaustively compare on a grid of candidate intervals
        for lo10 in -2..20 {
            for hi10 in lo10..20 {
                let x = b1(lo10 as f64 * 0.5, hi10 as f64 * 0.5);
                let direct = a.le(&x) && x.le(&bb) && x.overlaps(&c);
                assert_eq!(q.matches(&x), direct, "x = {x}");
            }
        }
    }

    #[test]
    fn empty_operands() {
        let q = CornerQuery::<1>::unconstrained().and_contained_in(&Bbox::Empty);
        assert!(q.is_unsatisfiable());
        assert!(!q.matches(&b1(0.0, 1.0)));

        let q = CornerQuery::<1>::unconstrained().and_overlaps(&Bbox::Empty);
        assert!(q.is_unsatisfiable());

        // ∅ ⊑ x holds for all x: no constraint.
        let q = CornerQuery::<1>::unconstrained().and_contains(&Bbox::Empty);
        assert!(!q.is_unsatisfiable());
        assert!(q.matches(&b1(3.0, 4.0)));
    }

    #[test]
    fn empty_candidate_never_matches() {
        let q = CornerQuery::<1>::unconstrained();
        assert!(!q.matches(&Bbox::Empty));
    }

    #[test]
    fn conflicting_parts_become_unsat() {
        // contained in [0,1] but containing [5,6]: impossible.
        let q = CornerQuery::unconstrained()
            .and_contained_in(&b1(0.0, 1.0))
            .and_contains(&b1(5.0, 6.0));
        assert!(q.is_unsatisfiable());
    }

    #[test]
    fn query_box_shape() {
        let q = CornerQuery::unconstrained()
            .and_contained_in(&b1(0.0, 10.0))
            .and_overlaps(&b1(4.0, 5.0));
        let ((lo_lo, lo_hi), (hi_lo, hi_hi)) = q.query_box();
        assert_eq!(lo_lo, [0.0]);
        assert_eq!(hi_lo, [5.0]); // lo ≤ c.hi
        assert_eq!(lo_hi, [4.0]); // hi ≥ c.lo
        assert_eq!(hi_hi, [10.0]);
    }
}
