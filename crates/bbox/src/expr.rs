//! Bounding-box *functions*: expressions over box variables built from
//! `⊓`, `⊔` and constants.
//!
//! These are the compile-time artifacts of the paper's Algorithm 2: the
//! best lower/upper approximations `L_f`, `U_f` of a Boolean function `f`
//! are bounding-box functions, evaluated at query time on the bounding
//! boxes of already-retrieved regions — much cheaper than the exact
//! region operations they replace.

use std::fmt;
use std::sync::Arc;

use crate::lattice::Bbox;

/// A bounding-box function over variables `0..n` (identified by index).
///
/// Monotone by construction: both `⊓` and `⊔` are monotone in each
/// argument, which is what makes the lower/upper approximation scheme of
/// the paper sound under substitution.
#[derive(Clone, PartialEq, Debug)]
pub enum BboxExpr<const K: usize> {
    /// A variable, resolved at evaluation time.
    Var(usize),
    /// A constant box (including `∅`).
    Const(Bbox<K>),
    /// Lattice meet `⊓` of the operands.
    Meet(Arc<BboxExpr<K>>, Arc<BboxExpr<K>>),
    /// Lattice join `⊔` of the operands.
    Join(Arc<BboxExpr<K>>, Arc<BboxExpr<K>>),
}

impl<const K: usize> BboxExpr<K> {
    /// The constant `∅` (bottom).
    pub fn empty() -> Self {
        BboxExpr::Const(Bbox::Empty)
    }

    /// A variable reference.
    pub fn var(i: usize) -> Self {
        BboxExpr::Var(i)
    }

    /// A constant.
    pub fn constant(b: Bbox<K>) -> Self {
        BboxExpr::Const(b)
    }

    /// Meet with constant folding (`∅ ⊓ e = ∅`, const ⊓ const folded).
    pub fn meet(a: BboxExpr<K>, b: BboxExpr<K>) -> Self {
        match (&a, &b) {
            (BboxExpr::Const(x), _) if x.is_empty() => BboxExpr::empty(),
            (_, BboxExpr::Const(y)) if y.is_empty() => BboxExpr::empty(),
            (BboxExpr::Const(x), BboxExpr::Const(y)) => BboxExpr::Const(x.meet(y)),
            _ if a == b => a,
            _ => BboxExpr::Meet(Arc::new(a), Arc::new(b)),
        }
    }

    /// Join with constant folding (`∅ ⊔ e = e`, const ⊔ const folded).
    pub fn join(a: BboxExpr<K>, b: BboxExpr<K>) -> Self {
        match (&a, &b) {
            (BboxExpr::Const(x), _) if x.is_empty() => b,
            (_, BboxExpr::Const(y)) if y.is_empty() => a,
            (BboxExpr::Const(x), BboxExpr::Const(y)) => BboxExpr::Const(x.join(y)),
            _ if a == b => a,
            _ => BboxExpr::Join(Arc::new(a), Arc::new(b)),
        }
    }

    /// n-ary join; empty iterator gives `∅`.
    pub fn join_all<I: IntoIterator<Item = BboxExpr<K>>>(it: I) -> Self {
        it.into_iter().fold(BboxExpr::empty(), BboxExpr::join)
    }

    /// n-ary meet; empty iterator gives the top element, which has no
    /// finite representation — callers must pass at least one operand.
    ///
    /// # Panics
    /// On an empty iterator.
    pub fn meet_all<I: IntoIterator<Item = BboxExpr<K>>>(it: I) -> Self {
        let mut iter = it.into_iter();
        let first = iter.next().expect("meet_all needs at least one operand");
        iter.fold(first, BboxExpr::meet)
    }

    /// Evaluates under a variable valuation.
    pub fn eval<F: Fn(usize) -> Bbox<K> + Copy>(&self, lookup: F) -> Bbox<K> {
        match self {
            BboxExpr::Var(i) => lookup(*i),
            BboxExpr::Const(b) => *b,
            BboxExpr::Meet(a, b) => a.eval(lookup).meet(&b.eval(lookup)),
            BboxExpr::Join(a, b) => a.eval(lookup).join(&b.eval(lookup)),
        }
    }

    /// Whether the expression is the constant `∅`.
    pub fn is_const_empty(&self) -> bool {
        matches!(self, BboxExpr::Const(b) if b.is_empty())
    }

    /// The set of variable indices mentioned.
    pub fn vars(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            BboxExpr::Var(i) => out.push(*i),
            BboxExpr::Const(_) => {}
            BboxExpr::Meet(a, b) | BboxExpr::Join(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            BboxExpr::Var(_) | BboxExpr::Const(_) => 1,
            BboxExpr::Meet(a, b) | BboxExpr::Join(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl<const K: usize> fmt::Display for BboxExpr<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BboxExpr::Var(i) => write!(f, "⌈x{i}⌉"),
            BboxExpr::Const(b) => write!(f, "{b}"),
            BboxExpr::Meet(a, b) => write!(f, "({a} ⊓ {b})"),
            BboxExpr::Join(a, b) => write!(f, "({a} ⊔ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: f64, hi: f64) -> Bbox<1> {
        Bbox::new([lo], [hi])
    }

    #[test]
    fn constant_folding() {
        let e = BboxExpr::meet(
            BboxExpr::constant(b(0.0, 2.0)),
            BboxExpr::constant(b(1.0, 3.0)),
        );
        assert_eq!(e, BboxExpr::Const(b(1.0, 2.0)));
        let z = BboxExpr::meet(BboxExpr::<1>::empty(), BboxExpr::var(0));
        assert!(z.is_const_empty());
        let j = BboxExpr::join(BboxExpr::<1>::empty(), BboxExpr::var(3));
        assert_eq!(j, BboxExpr::var(3));
    }

    #[test]
    fn eval_resolves_vars() {
        let e = BboxExpr::join(
            BboxExpr::meet(BboxExpr::var(0), BboxExpr::var(1)),
            BboxExpr::constant(b(10.0, 11.0)),
        );
        let boxes = [b(0.0, 5.0), b(3.0, 8.0)];
        let got = e.eval(|i| boxes[i]);
        assert_eq!(got, b(3.0, 11.0));
    }

    #[test]
    fn monotonicity() {
        // Enlarging an input can only enlarge the output.
        let e = BboxExpr::join(
            BboxExpr::meet(BboxExpr::var(0), BboxExpr::constant(b(0.0, 4.0))),
            BboxExpr::var(1),
        );
        let small = [b(1.0, 2.0), b(5.0, 6.0)];
        let big = [b(0.0, 3.0), b(5.0, 9.0)];
        let lo = e.eval(|i| small[i]);
        let hi = e.eval(|i| big[i]);
        assert!(lo.le(&hi));
    }

    #[test]
    fn vars_and_size() {
        let e = BboxExpr::<1>::meet(
            BboxExpr::var(2),
            BboxExpr::join(BboxExpr::var(0), BboxExpr::var(2)),
        );
        assert_eq!(e.vars(), vec![0, 2]);
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn join_all_meet_all() {
        let parts = vec![
            BboxExpr::constant(b(0.0, 1.0)),
            BboxExpr::constant(b(4.0, 5.0)),
        ];
        assert_eq!(
            BboxExpr::join_all(parts.clone()),
            BboxExpr::Const(b(0.0, 5.0))
        );
        assert_eq!(BboxExpr::meet_all(parts), BboxExpr::Const(Bbox::Empty));
        assert!(BboxExpr::<1>::join_all(std::iter::empty()).is_const_empty());
    }

    #[test]
    #[should_panic(expected = "at least one operand")]
    fn meet_all_rejects_empty() {
        let _ = BboxExpr::<1>::meet_all(std::iter::empty());
    }

    #[test]
    fn display() {
        let e = BboxExpr::<1>::meet(BboxExpr::var(0), BboxExpr::var(1));
        assert_eq!(e.to_string(), "(⌈x0⌉ ⊓ ⌈x1⌉)");
    }
}
