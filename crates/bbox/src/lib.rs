#![warn(missing_docs)]

//! The bounding-box lattice of the paper's Section 4, bounding-box
//! *functions*, and the corner transform behind Figure 3.
//!
//! Bounding boxes are closed axis-aligned rectangles `[lo, hi]` in `ℝᵏ`,
//! extended with a bottom element `∅`. They form a complete lattice under
//! containment `⊑`, with meet `⊓` (ordinary intersection) and join `⊔`
//! (the *minimal enclosing* box of the union — not set union!). The paper
//! approximates Boolean functions over regions by monotone functions built
//! from `⊓`, `⊔` and constants; those are [`BboxExpr`] here.
//!
//! The corner transform ([`corner`]) represents a box in `Xᵏ` as a point
//! in `X²ᵏ`, turning the three constraint shapes supported by spatial
//! indexes (`⌈x⌉ ⊑ a`, `b ⊑ ⌈x⌉`, `⌈x⌉ ⊓ c ≠ ∅`) — and any conjunction of
//! them — into a single range query (Figure 3 of the paper).

pub mod corner;
pub mod expr;
pub mod lattice;

pub use corner::{corner_point, CornerQuery};
pub use expr::BboxExpr;
pub use lattice::Bbox;
