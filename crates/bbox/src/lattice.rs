//! Closed axis-aligned bounding boxes and their lattice structure.

use std::fmt;

/// A closed axis-aligned box `[lo₁,hi₁] × … × [lo_K,hi_K]`, or the empty
/// box `∅`.
///
/// `Bbox` is the element type of the paper's bounding-box lattice: meet
/// [`Bbox::meet`] is geometric intersection, join [`Bbox::join`] is the
/// minimal enclosing box, and the order [`Bbox::le`] is containment. The
/// empty box is the bottom element and behaves as the unit of `join` and
/// the absorbing element of `meet`.
///
/// Coordinates must be finite; the constructors debug-assert this.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Bbox<const K: usize> {
    /// The empty bounding box (bottom of the lattice).
    Empty,
    /// A nonempty closed box; `lo[d] <= hi[d]` for every dimension `d`.
    Box {
        /// Lower corner.
        lo: [f64; K],
        /// Upper corner.
        hi: [f64; K],
    },
}

impl<const K: usize> Bbox<K> {
    /// The empty box.
    pub const fn empty() -> Self {
        Bbox::Empty
    }

    /// A box from corners. Returns [`Bbox::Empty`] when `lo[d] > hi[d]`
    /// in some dimension.
    pub fn new(lo: [f64; K], hi: [f64; K]) -> Self {
        debug_assert!(
            lo.iter().chain(hi.iter()).all(|c| c.is_finite()),
            "bounding box coordinates must be finite"
        );
        for d in 0..K {
            if lo[d] > hi[d] {
                return Bbox::Empty;
            }
        }
        Bbox::Box { lo, hi }
    }

    /// A degenerate box containing exactly one point.
    pub fn point(p: [f64; K]) -> Self {
        Bbox::new(p, p)
    }

    /// Whether this is the empty box.
    pub fn is_empty(&self) -> bool {
        matches!(self, Bbox::Empty)
    }

    /// Lower corner, if nonempty.
    pub fn lo(&self) -> Option<[f64; K]> {
        match self {
            Bbox::Empty => None,
            Bbox::Box { lo, .. } => Some(*lo),
        }
    }

    /// Upper corner, if nonempty.
    pub fn hi(&self) -> Option<[f64; K]> {
        match self {
            Bbox::Empty => None,
            Bbox::Box { hi, .. } => Some(*hi),
        }
    }

    /// Lattice meet `⊓`: geometric intersection.
    pub fn meet(&self, other: &Self) -> Self {
        match (self, other) {
            (Bbox::Empty, _) | (_, Bbox::Empty) => Bbox::Empty,
            (Bbox::Box { lo: a, hi: b }, Bbox::Box { lo: c, hi: d }) => {
                let mut lo = [0.0; K];
                let mut hi = [0.0; K];
                for i in 0..K {
                    lo[i] = a[i].max(c[i]);
                    hi[i] = b[i].min(d[i]);
                    if lo[i] > hi[i] {
                        return Bbox::Empty;
                    }
                }
                Bbox::Box { lo, hi }
            }
        }
    }

    /// Lattice join `⊔`: the minimal enclosing box. Note this is *not*
    /// set union — the paper is explicit that `⊔` over-approximates `∪`.
    pub fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (Bbox::Empty, b) => *b,
            (a, Bbox::Empty) => *a,
            (Bbox::Box { lo: a, hi: b }, Bbox::Box { lo: c, hi: d }) => {
                let mut lo = [0.0; K];
                let mut hi = [0.0; K];
                for i in 0..K {
                    lo[i] = a[i].min(c[i]);
                    hi[i] = b[i].max(d[i]);
                }
                Bbox::Box { lo, hi }
            }
        }
    }

    /// Containment order `⊑` (the lattice order).
    pub fn le(&self, other: &Self) -> bool {
        match (self, other) {
            (Bbox::Empty, _) => true,
            (_, Bbox::Empty) => false,
            (Bbox::Box { lo: a, hi: b }, Bbox::Box { lo: c, hi: d }) => {
                (0..K).all(|i| c[i] <= a[i] && b[i] <= d[i])
            }
        }
    }

    /// Whether the boxes intersect (`self ⊓ other ≠ ∅`).
    pub fn overlaps(&self, other: &Self) -> bool {
        !self.meet(other).is_empty()
    }

    /// Whether the point lies inside (closed) bounds.
    pub fn contains_point(&self, p: &[f64; K]) -> bool {
        match self {
            Bbox::Empty => false,
            Bbox::Box { lo, hi } => (0..K).all(|i| lo[i] <= p[i] && p[i] <= hi[i]),
        }
    }

    /// Product of side lengths; `0` for the empty box (and for degenerate
    /// boxes, which have zero width in some dimension).
    pub fn volume(&self) -> f64 {
        match self {
            Bbox::Empty => 0.0,
            Bbox::Box { lo, hi } => (0..K).map(|i| hi[i] - lo[i]).product(),
        }
    }

    /// Sum of side lengths — the "margin", used by R-tree heuristics.
    pub fn margin(&self) -> f64 {
        match self {
            Bbox::Empty => 0.0,
            Bbox::Box { lo, hi } => (0..K).map(|i| hi[i] - lo[i]).sum(),
        }
    }

    /// Volume of the join minus own volumes' proxy: the *enlargement* of
    /// `self` needed to cover `other` (Guttman's insertion criterion).
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.join(other).volume() - self.volume()
    }

    /// The center point, if nonempty.
    pub fn center(&self) -> Option<[f64; K]> {
        match self {
            Bbox::Empty => None,
            Bbox::Box { lo, hi } => {
                let mut c = [0.0; K];
                for i in 0..K {
                    c[i] = 0.5 * (lo[i] + hi[i]);
                }
                Some(c)
            }
        }
    }

    /// n-ary join.
    pub fn join_all<I: IntoIterator<Item = Bbox<K>>>(it: I) -> Self {
        it.into_iter().fold(Bbox::Empty, |acc, b| acc.join(&b))
    }
}

impl<const K: usize> fmt::Display for Bbox<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bbox::Empty => write!(f, "∅"),
            Bbox::Box { lo, hi } => {
                write!(f, "[")?;
                for i in 0..K {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}..{}", lo[i], hi[i])?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b2(lo: [f64; 2], hi: [f64; 2]) -> Bbox<2> {
        Bbox::new(lo, hi)
    }

    #[test]
    fn inverted_bounds_are_empty() {
        assert!(b2([1.0, 0.0], [0.0, 1.0]).is_empty());
        assert!(
            !b2([0.0, 0.0], [0.0, 0.0]).is_empty(),
            "degenerate point box is nonempty"
        );
    }

    #[test]
    fn meet_is_intersection() {
        let a = b2([0.0, 0.0], [2.0, 2.0]);
        let b = b2([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(a.meet(&b), b2([1.0, 1.0], [2.0, 2.0]));
        let c = b2([5.0, 5.0], [6.0, 6.0]);
        assert!(a.meet(&c).is_empty());
        assert!(a.meet(&Bbox::Empty).is_empty());
    }

    #[test]
    fn join_is_enclosing_box() {
        let a = b2([0.0, 0.0], [1.0, 1.0]);
        let b = b2([2.0, 2.0], [3.0, 3.0]);
        let j = a.join(&b);
        assert_eq!(j, b2([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.join(&Bbox::Empty), a);
        assert_eq!(Bbox::Empty.join(&b), b);
    }

    #[test]
    fn lattice_laws() {
        let elems = [
            Bbox::Empty,
            b2([0.0, 0.0], [2.0, 2.0]),
            b2([1.0, 1.0], [3.0, 3.0]),
            b2([0.5, 0.5], [1.5, 4.0]),
            b2([2.0, 0.0], [2.0, 5.0]),
        ];
        for a in &elems {
            assert_eq!(a.meet(a), *a, "meet idempotent");
            assert_eq!(a.join(a), *a, "join idempotent");
            assert!(Bbox::Empty.le(a), "empty is bottom");
            for b in &elems {
                assert_eq!(a.meet(b), b.meet(a), "meet commutes");
                assert_eq!(a.join(b), b.join(a), "join commutes");
                assert_eq!(a.meet(&a.join(b)), *a, "absorption 1");
                assert_eq!(a.join(&a.meet(b)), *a, "absorption 2");
                // order compatibility
                assert_eq!(a.le(b), a.join(b) == *b);
                assert_eq!(a.le(b), a.meet(b) == *a);
                for c in &elems {
                    assert_eq!(a.meet(&b.meet(c)), a.meet(b).meet(c), "meet associates");
                    assert_eq!(a.join(&b.join(c)), a.join(b).join(c), "join associates");
                }
            }
        }
    }

    #[test]
    fn join_overapproximates_union() {
        // Distributivity FAILS in the bbox lattice (the paper's point):
        // (a ⊔ b) ⊓ c can exceed (a ⊓ c) ⊔ (b ⊓ c).
        let a = b2([0.0, 0.0], [1.0, 1.0]);
        let b = b2([4.0, 4.0], [5.0, 5.0]);
        let c = b2([2.0, 2.0], [3.0, 3.0]);
        let lhs = a.join(&b).meet(&c);
        let rhs = a.meet(&c).join(&b.meet(&c));
        assert_eq!(lhs, c);
        assert!(rhs.is_empty());
    }

    #[test]
    fn containment_and_overlap() {
        let outer = b2([0.0, 0.0], [10.0, 10.0]);
        let inner = b2([1.0, 1.0], [2.0, 2.0]);
        assert!(inner.le(&outer));
        assert!(!outer.le(&inner));
        assert!(inner.overlaps(&outer));
        assert!(outer.contains_point(&[5.0, 5.0]));
        assert!(!inner.contains_point(&[5.0, 5.0]));
        // closed boxes: touching edges overlap
        let left = b2([0.0, 0.0], [1.0, 1.0]);
        let right = b2([1.0, 0.0], [2.0, 1.0]);
        assert!(left.overlaps(&right));
    }

    #[test]
    fn volume_margin_enlargement() {
        let a = b2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(Bbox::<2>::Empty.volume(), 0.0);
        let b = b2([2.0, 3.0], [4.0, 4.0]);
        assert_eq!(a.enlargement(&b), 16.0 - 6.0);
    }

    #[test]
    fn center_and_point() {
        let a = b2([0.0, 2.0], [4.0, 4.0]);
        assert_eq!(a.center(), Some([2.0, 3.0]));
        assert_eq!(Bbox::<2>::Empty.center(), None);
        let p = Bbox::point([1.0, 1.0]);
        assert!(p.contains_point(&[1.0, 1.0]));
        assert_eq!(p.volume(), 0.0);
    }

    #[test]
    fn join_all_folds() {
        let boxes = vec![
            b2([0.0, 0.0], [1.0, 1.0]),
            b2([5.0, -1.0], [6.0, 0.5]),
            Bbox::Empty,
        ];
        assert_eq!(Bbox::join_all(boxes), b2([0.0, -1.0], [6.0, 1.0]));
        assert!(Bbox::<2>::join_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(Bbox::<2>::Empty.to_string(), "∅");
        assert_eq!(b2([0.0, 1.0], [2.0, 3.0]).to_string(), "[0..2, 1..3]");
    }
}
