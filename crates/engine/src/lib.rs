#![warn(missing_docs)]

//! The query engine: a spatial database of region objects plus the
//! incremental constraint-query evaluator of the paper's introduction.
//!
//! The engine materializes the paper's execution strategy:
//!
//! > The set of solution tuples is constructed incrementally … at each
//! > step the constraints C can be used to eliminate useless partial
//! > solution tuples in two ways. First, we need only keep those partial
//! > solutions for which there is some possible assignment to the
//! > remaining unknown variables which satisfies C. Second, when
//! > retrieving objects from the database … we use a range query to
//! > filter the choices.
//!
//! Three executors share one backtracking skeleton and differ only in
//! how much of the paper's machinery they use (see [`exec`]):
//!
//! * [`exec::naive_execute`] — cross product + full constraint check at
//!   the leaves (the baseline a system without the optimizer runs);
//! * [`exec::triangular_execute`] — exact solved-row checks prune
//!   partial tuples early, but candidates come from a full collection
//!   scan (ablation: early pruning without range queries);
//! * [`exec::bbox_execute`] — the full pipeline: one corner-transform
//!   range query per step against a spatial index, then exact row
//!   verification (the paper's proposal).
//!
//! All three provably enumerate the same solutions (the solved form is
//! an equivalence, not just a necessary condition — see the crate and
//! integration test suites).

pub mod database;
pub mod exec;
pub mod integrity;
pub mod parallel;
pub mod planner;
pub mod query;
pub mod snapshot;
pub mod stats;
pub mod view;
pub mod workload;

pub use database::{CollectionId, CompactReport, ObjectRef, SpatialDatabase};
pub use exec::{
    bbox_execute, bbox_execute_opts, compile_triangular, naive_execute, naive_execute_opts,
    triangular_execute, triangular_execute_opts, ExecError, ExecOptions, QueryOutcome, QueryResult,
};
pub use integrity::{check_integrity, is_consistent, IntegrityRule, Violation};
pub use parallel::bbox_execute_parallel;
pub use planner::{
    order_by_selectivity, with_selectivity_order, SelectivityEstimate, SelectivityPlan,
};
pub use query::{IndexKind, Query, VarBinding};
pub use stats::ExecStats;
pub use view::{ProbeReport, StoreView};
