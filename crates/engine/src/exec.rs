//! The three executors: naive, triangular-exact, and bbox-filtered.
//!
//! All share one backtracking skeleton over the retrieval order; they
//! differ in how a level's candidates are produced and which pruning
//! runs before recursing:
//!
//! | executor | candidates | pruning |
//! |---|---|---|
//! | [`naive_execute`] | whole collection | none (full check at leaves) |
//! | [`triangular_execute`] | whole collection | exact solved row `Cᵢ` |
//! | [`bbox_execute`] | **index range query** | exact solved row `Cᵢ` |
//!
//! Because the triangular solved form is an *equivalence* for complete
//! assignments (Schröder and Boole rewrites are equivalences, and
//! projected residues are implied by the lower rows), checking every row
//! exactly equals checking the original system — the executors return
//! identical solution sets, which the tests assert.

use std::collections::BTreeMap;

use scq_algebra::eval::UnboundVar;
use scq_algebra::Assignment;
use scq_bbox::Bbox;
use scq_boolean::Var;
use scq_core::plan::BboxPlan;
use scq_core::{check_system, triangularize, TriangularSystem};
use scq_region::{Region, RegionAlgebra};

use crate::database::{CollectionId, ObjectRef, SpatialDatabase};
use crate::query::{IndexKind, Query};
use crate::stats::ExecStats;

/// One solution: an object per unknown variable.
pub type Solution = BTreeMap<Var, ObjectRef>;

/// Result of executing a query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// All solutions, in retrieval (depth-first) order.
    pub solutions: Vec<Solution>,
    /// Work counters.
    pub stats: ExecStats,
}

/// Errors surfaced by the executors.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The query failed validation (unbound variables, bad order…).
    InvalidQuery(String),
    /// Internal evaluation hit an unbound variable — indicates a planner
    /// bug, surfaced rather than panicking.
    Unbound(Var),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            ExecError::Unbound(v) => write!(f, "internal error: unbound variable {v}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<UnboundVar> for ExecError {
    fn from(e: UnboundVar) -> Self {
        ExecError::Unbound(e.0)
    }
}

/// Tuning knobs shared by all executors.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Stop after this many solutions (existence queries set it to 1).
    /// `None` enumerates everything.
    pub max_solutions: Option<usize>,
}

impl ExecOptions {
    /// Enumerate every solution (the default).
    pub fn all() -> Self {
        ExecOptions {
            max_solutions: None,
        }
    }

    /// Stop at the first solution — "does a smuggling route exist?".
    pub fn first() -> Self {
        ExecOptions {
            max_solutions: Some(1),
        }
    }
}

/// Shared execution context.
struct Ctx<'a, const K: usize> {
    db: &'a SpatialDatabase<K>,
    alg: RegionAlgebra<K>,
    unknowns: Vec<(Var, CollectionId)>, // in retrieval order
    stats: ExecStats,
    solutions: Vec<Solution>,
    options: ExecOptions,
}

impl<const K: usize> Ctx<'_, K> {
    fn done(&self) -> bool {
        self.options
            .max_solutions
            .is_some_and(|max| self.solutions.len() >= max)
    }
}

/// Validated query context: retrieval order, known bindings, unknowns.
type Prepared<const K: usize> = (Vec<Var>, Assignment<Region<K>>, Vec<(Var, CollectionId)>);

fn prepare<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
) -> Result<Prepared<K>, ExecError> {
    query.validate().map_err(ExecError::InvalidQuery)?;
    let order = query.retrieval_order(db);
    let alg = db.algebra();
    let mut assign = Assignment::new();
    for (v, r) in query.known_vars() {
        assign.bind(v, alg.clamp(r));
    }
    let unknown_positions: BTreeMap<Var, CollectionId> = query.unknown_vars().into_iter().collect();
    let unknowns: Vec<(Var, CollectionId)> = order
        .iter()
        .filter_map(|v| unknown_positions.get(v).map(|&c| (*v, c)))
        .collect();
    Ok((order, assign, unknowns))
}

/// Cross product + full constraint check at the leaves. The baseline of
/// benchmark B1: what a system without the optimizer must do.
pub fn naive_execute<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
) -> Result<QueryResult, ExecError> {
    naive_execute_opts(db, query, ExecOptions::all())
}

/// [`naive_execute`] with tuning options.
pub fn naive_execute_opts<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    let (_, mut assign, unknowns) = prepare(db, query)?;
    let mut ctx = Ctx {
        db,
        alg: db.algebra(),
        unknowns,
        stats: ExecStats::default(),
        solutions: Vec::new(),
        options,
    };
    let mut tuple = BTreeMap::new();
    naive_rec(&mut ctx, query, 0, &mut assign, &mut tuple)?;
    Ok(QueryResult {
        solutions: ctx.solutions,
        stats: ctx.stats,
    })
}

fn naive_rec<const K: usize>(
    ctx: &mut Ctx<'_, K>,
    query: &Query<K>,
    level: usize,
    assign: &mut Assignment<Region<K>>,
    tuple: &mut Solution,
) -> Result<(), ExecError> {
    if level == ctx.unknowns.len() {
        ctx.stats.full_system_checks += 1;
        if check_system(&ctx.alg, &query.system.constraints, assign)? {
            ctx.stats.solutions += 1;
            ctx.solutions.push(tuple.clone());
        }
        return Ok(());
    }
    let (var, coll) = ctx.unknowns[level];
    for index in ctx.db.object_indices(coll) {
        if ctx.done() {
            return Ok(());
        }
        ctx.stats.partial_tuples += 1;
        ctx.stats.index_candidates += 1;
        assign.bind(
            var,
            ctx.db
                .region(ObjectRef {
                    collection: coll,
                    index,
                })
                .clone(),
        );
        tuple.insert(
            var,
            ObjectRef {
                collection: coll,
                index,
            },
        );
        naive_rec(ctx, query, level + 1, assign, tuple)?;
        tuple.remove(&var);
        assign.unbind(var);
    }
    Ok(())
}

/// Prepares the triangular system for a query (shared by the two
/// optimized executors and exposed for benchmarks that want to time
/// compilation separately).
pub fn compile_triangular<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
) -> Result<TriangularSystem, ExecError> {
    let (order, _, _) = prepare(db, query)?;
    let normal = query.system.normalize();
    Ok(triangularize(&normal, &order))
}

/// Early pruning with exact solved rows, candidates from full collection
/// scans (no spatial index). Isolates the benefit of the triangular form
/// from the benefit of range queries.
pub fn triangular_execute<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
) -> Result<QueryResult, ExecError> {
    run_optimized(db, query, None, ExecOptions::all())
}

/// [`triangular_execute`] with tuning options.
pub fn triangular_execute_opts<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    run_optimized(db, query, None, options)
}

/// The paper's full pipeline: per-level corner-transform range query
/// against the chosen index, then exact row verification.
pub fn bbox_execute<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
    kind: IndexKind,
) -> Result<QueryResult, ExecError> {
    run_optimized(db, query, Some(kind), ExecOptions::all())
}

/// [`bbox_execute`] with tuning options.
pub fn bbox_execute_opts<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
    kind: IndexKind,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    run_optimized(db, query, Some(kind), options)
}

fn run_optimized<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
    kind: Option<IndexKind>,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    let (order, mut assign, unknowns) = prepare(db, query)?;
    let normal = query.system.normalize();
    let tri = triangularize(&normal, &order);
    let plan: BboxPlan<K> = BboxPlan::compile(&tri);
    let mut ctx = Ctx {
        db,
        alg: db.algebra(),
        unknowns,
        stats: ExecStats::default(),
        solutions: Vec::new(),
        options,
    };
    if !plan.satisfiable {
        return Ok(QueryResult {
            solutions: ctx.solutions,
            stats: ctx.stats,
        });
    }
    // Validate the known-variable rows once (the rows of known vars are
    // the paper's integrity check on the query inputs).
    let known: std::collections::BTreeSet<Var> =
        query.known_vars().iter().map(|&(v, _)| v).collect();
    for row in &tri.rows {
        if known.contains(&row.var) {
            ctx.stats.exact_row_checks += 1;
            if !row.check(&ctx.alg, &assign)? {
                ctx.stats.row_rejections += 1;
                return Ok(QueryResult {
                    solutions: ctx.solutions,
                    stats: ctx.stats,
                });
            }
        }
    }
    // Boxes of bound variables, indexed by Var::index, for plan eval.
    let max_var = order
        .iter()
        .map(|v| v.index())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let mut boxes: Vec<Bbox<K>> = vec![Bbox::Empty; max_var];
    for (v, _) in query.known_vars() {
        boxes[v.index()] = assign.get(v).expect("known bound").bbox();
    }
    let mut tuple = BTreeMap::new();
    let mut candidates_buf = Vec::new();
    opt_rec(
        &mut ctx,
        &plan,
        kind,
        0,
        &mut assign,
        &mut boxes,
        &mut tuple,
        &mut candidates_buf,
    )?;
    Ok(QueryResult {
        solutions: ctx.solutions,
        stats: ctx.stats,
    })
}

#[allow(clippy::too_many_arguments)]
fn opt_rec<const K: usize>(
    ctx: &mut Ctx<'_, K>,
    plan: &BboxPlan<K>,
    kind: Option<IndexKind>,
    level: usize,
    assign: &mut Assignment<Region<K>>,
    boxes: &mut Vec<Bbox<K>>,
    tuple: &mut Solution,
    _buf: &mut Vec<u64>,
) -> Result<(), ExecError> {
    if level == ctx.unknowns.len() {
        ctx.stats.solutions += 1;
        ctx.solutions.push(tuple.clone());
        return Ok(());
    }
    let (var, coll) = ctx.unknowns[level];
    let row = plan.row_for(var).expect("plan has a row per variable");

    // Candidate generation.
    let mut candidates: Vec<usize> = Vec::new();
    match kind {
        Some(k) => {
            let lookup = |i: usize| boxes.get(i).copied().unwrap_or(Bbox::Empty);
            let q = row.corner_query(lookup);
            let mut ids = Vec::new();
            if !q.is_unsatisfiable() {
                ctx.db.query_collection(coll, k, &q, &mut ids);
            }
            candidates.extend(ids.into_iter().map(|id| id as usize));
            // Empty-region objects never appear in corner queries but
            // may still satisfy the row; keep execution exact.
            candidates.extend_from_slice(ctx.db.empty_objects(coll));
        }
        None => candidates.extend(ctx.db.object_indices(coll)),
    }
    ctx.stats.index_candidates += candidates.len();

    for index in candidates {
        if ctx.done() {
            return Ok(());
        }
        ctx.stats.partial_tuples += 1;
        let obj = ObjectRef {
            collection: coll,
            index,
        };
        assign.bind(var, ctx.db.region(obj).clone());
        ctx.stats.exact_row_checks += 1;
        let ok = row.exact.check(&ctx.alg, assign)?;
        if ok {
            boxes[var.index()] = ctx.db.region(obj).bbox();
            tuple.insert(var, obj);
            opt_rec(ctx, plan, kind, level + 1, assign, boxes, tuple, _buf)?;
            tuple.remove(&var);
            boxes[var.index()] = Bbox::Empty;
        } else {
            ctx.stats.row_rejections += 1;
        }
        assign.unbind(var);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::VarBinding;
    use scq_core::parse_system;
    use scq_region::AaBox;

    /// A miniature smuggler scenario with known ground truth.
    fn smuggler_db() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let towns = db.collection("towns");
        let roads = db.collection("roads");
        let states = db.collection("states");

        // country: [10,90]²; border band is near x=10
        let country = Region::from_box(AaBox::new([10.0, 10.0], [90.0, 90.0]));
        // destination area A deep inside
        let area = Region::from_box(AaBox::new([60.0, 40.0], [70.0, 50.0]));

        // towns: two on the border strip, one outside the country
        db.insert(
            towns,
            Region::from_box(AaBox::new([10.0, 42.0], [14.0, 46.0])),
        ); // t0 ok
        db.insert(
            towns,
            Region::from_box(AaBox::new([10.0, 70.0], [14.0, 74.0])),
        ); // t1 wrong row
        db.insert(towns, Region::from_box(AaBox::new([0.0, 0.0], [5.0, 5.0]))); // t2 outside C

        // states: horizontal bands of the country
        db.insert(
            states,
            Region::from_box(AaBox::new([10.0, 10.0], [90.0, 55.0])),
        ); // s0 contains corridor
        db.insert(
            states,
            Region::from_box(AaBox::new([10.0, 55.0], [90.0, 90.0])),
        ); // s1 north

        // roads: r0 connects t0 to A inside s0; r1 connects t1 heading
        // south crossing both states; r2 unrelated
        db.insert(
            roads,
            Region::from_box(AaBox::new([12.0, 43.0], [65.0, 45.0])),
        ); // r0 good
        db.insert(
            roads,
            Region::from_box(AaBox::new([12.0, 45.0], [14.0, 72.0])),
        ); // r1 crosses bands, touches A? no
        db.insert(
            roads,
            Region::from_box(AaBox::new([20.0, 80.0], [80.0, 82.0])),
        ); // r2

        let sys =
            parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C").unwrap();
        let q = Query::new(sys)
            .known("C", country)
            .known("A", area)
            .from_collection("T", towns)
            .from_collection("R", roads)
            .from_collection("B", states)
            .with_order(&["T", "R", "B"]);
        (db, q)
    }

    fn solution_names(db: &SpatialDatabase<2>, q: &Query<2>, r: &QueryResult) -> Vec<String> {
        let _ = db;
        let mut out: Vec<String> = r
            .solutions
            .iter()
            .map(|s| {
                s.iter()
                    .map(|(v, o)| format!("{}={}", q.system.table.display(*v), o.index))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn executors_agree_on_smuggler() {
        let (db, q) = smuggler_db();
        let naive = naive_execute(&db, &q).unwrap();
        let tri = triangular_execute(&db, &q).unwrap();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let bbox = bbox_execute(&db, &q, kind).unwrap();
            assert_eq!(
                solution_names(&db, &q, &naive),
                solution_names(&db, &q, &bbox),
                "bbox({kind:?}) differs from naive"
            );
        }
        assert_eq!(
            solution_names(&db, &q, &naive),
            solution_names(&db, &q, &tri)
        );
        // Ground truth: t0 with r0 entirely within s0 (and the corridor
        // road overlaps both the town and the area).
        let names = solution_names(&db, &q, &naive);
        assert!(!names.is_empty(), "the smuggler has a route");
        assert!(
            names.iter().all(|s| s.contains("T=0")),
            "only t0 works: {names:?}"
        );
    }

    #[test]
    fn optimizer_prunes_work() {
        let (db, q) = smuggler_db();
        let naive = naive_execute(&db, &q).unwrap();
        let bbox = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert!(
            bbox.stats.partial_tuples < naive.stats.partial_tuples,
            "range queries + row pruning must reduce the search tree: {} vs {}",
            bbox.stats.partial_tuples,
            naive.stats.partial_tuples
        );
        assert_eq!(
            bbox.stats.full_system_checks, 0,
            "no leaf-level full checks needed"
        );
    }

    #[test]
    fn unsatisfiable_inputs_yield_no_solutions() {
        let (db, mut q) = smuggler_db();
        // Destination area outside the country: A ≤ C fails.
        let outside = Region::from_box(AaBox::new([95.0, 95.0], [99.0, 99.0]));
        let v = q.system.table.get("A").unwrap();
        q.bindings.insert(v, VarBinding::Known(outside));
        let r = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert!(r.solutions.is_empty());
        let n = naive_execute(&db, &q).unwrap();
        assert!(n.solutions.is_empty());
    }

    #[test]
    fn empty_region_objects_are_handled() {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let xs = db.collection("xs");
        db.insert(xs, Region::empty());
        db.insert(xs, Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0])));
        // X ≤ A with A known: the empty region satisfies it.
        let sys = parse_system("X <= A").unwrap();
        let q = Query::new(sys)
            .known("A", Region::from_box(AaBox::new([0.0, 0.0], [5.0, 5.0])))
            .from_collection("X", xs);
        let naive = naive_execute(&db, &q).unwrap();
        let bbox = bbox_execute(&db, &q, IndexKind::GridFile).unwrap();
        assert_eq!(naive.solutions.len(), 2, "both objects qualify");
        assert_eq!(
            bbox.solutions.len(),
            2,
            "empty-region object must not be lost"
        );
    }

    #[test]
    fn nonempty_constraint_excludes_empty_objects() {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let xs = db.collection("xs");
        db.insert(xs, Region::empty());
        db.insert(xs, Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0])));
        let sys = parse_system("X <= A; X != 0").unwrap();
        let q = Query::new(sys)
            .known("A", Region::from_box(AaBox::new([0.0, 0.0], [5.0, 5.0])))
            .from_collection("X", xs);
        for r in [
            naive_execute(&db, &q).unwrap(),
            triangular_execute(&db, &q).unwrap(),
            bbox_execute(&db, &q, IndexKind::RTree).unwrap(),
        ] {
            assert_eq!(r.solutions.len(), 1);
            assert_eq!(r.solutions[0].values().next().unwrap().index, 1);
        }
    }

    /// A database where the overlay query has many solutions.
    fn overlay_db() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let xs = db.collection("xs");
        let ys = db.collection("ys");
        for i in 0..10 {
            let t = i as f64 * 8.0;
            db.insert(xs, Region::from_box(AaBox::new([t, 0.0], [t + 10.0, 50.0])));
            db.insert(
                ys,
                Region::from_box(AaBox::new([t + 4.0, 10.0], [t + 12.0, 40.0])),
            );
        }
        let sys = parse_system("X & Y != 0").unwrap();
        let q = Query::new(sys)
            .from_collection("X", xs)
            .from_collection("Y", ys);
        (db, q)
    }

    #[test]
    fn first_solution_stops_early() {
        let (db, q) = overlay_db();
        let full = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert!(full.solutions.len() > 1, "scenario has several routes");
        let one = bbox_execute_opts(&db, &q, IndexKind::RTree, ExecOptions::first()).unwrap();
        assert_eq!(one.solutions.len(), 1);
        assert!(one.stats.partial_tuples < full.stats.partial_tuples);
        assert!(full.solutions.contains(&one.solutions[0]));
        // naive and triangular variants honour the limit too
        let n1 = naive_execute_opts(&db, &q, ExecOptions::first()).unwrap();
        assert_eq!(n1.solutions.len(), 1);
        let t1 = triangular_execute_opts(&db, &q, ExecOptions::first()).unwrap();
        assert_eq!(t1.solutions.len(), 1);
    }

    #[test]
    fn max_solutions_caps_exactly() {
        let (db, q) = overlay_db();
        let full = bbox_execute(&db, &q, IndexKind::Scan).unwrap();
        let k = full.solutions.len().saturating_sub(1).max(1);
        let capped = bbox_execute_opts(
            &db,
            &q,
            IndexKind::Scan,
            ExecOptions {
                max_solutions: Some(k),
            },
        )
        .unwrap();
        assert_eq!(capped.solutions.len(), k.min(full.solutions.len()));
        for s in &capped.solutions {
            assert!(full.solutions.contains(s));
        }
    }

    #[test]
    fn invalid_queries_error() {
        let db: SpatialDatabase<2> = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1.0, 1.0]));
        let sys = parse_system("X <= Y").unwrap();
        let q = Query::new(sys);
        match naive_execute(&db, &q) {
            Err(ExecError::InvalidQuery(m)) => assert!(m.contains("not bound")),
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
    }

    #[test]
    fn negative_constraints_prune() {
        // Roads must NOT be contained in the forbidden zone.
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let roads = db.collection("roads");
        db.insert(roads, Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0]))); // inside F
        db.insert(roads, Region::from_box(AaBox::new([5.0, 5.0], [6.0, 6.0]))); // outside F
        let sys = parse_system("R !<= F").unwrap();
        let q = Query::new(sys)
            .known("F", Region::from_box(AaBox::new([0.0, 0.0], [3.0, 3.0])))
            .from_collection("R", roads);
        for r in [
            naive_execute(&db, &q).unwrap(),
            triangular_execute(&db, &q).unwrap(),
            bbox_execute(&db, &q, IndexKind::Scan).unwrap(),
        ] {
            assert_eq!(r.solutions.len(), 1);
            assert_eq!(r.solutions[0].values().next().unwrap().index, 1);
        }
    }
}
