//! The three executors: naive, triangular-exact, and bbox-filtered.
//!
//! All share one backtracking skeleton over the retrieval order; they
//! differ in how a level's candidates are produced and which pruning
//! runs before recursing:
//!
//! | executor | candidates | pruning |
//! |---|---|---|
//! | [`naive_execute`] | whole collection | none (full check at leaves) |
//! | [`triangular_execute`] | whole collection | bbox prefilter, then exact solved row `Cᵢ` |
//! | [`bbox_execute`] | **index range query** | bbox prefilter, then exact solved row `Cᵢ` |
//!
//! Because the triangular solved form is an *equivalence* for complete
//! assignments (Schröder and Boole rewrites are equivalences, and
//! projected residues are implied by the lower rows), checking every row
//! exactly equals checking the original system — the executors return
//! identical solution sets, which the tests assert.
//!
//! # The zero-clone core
//!
//! The inner loop binds `&Region` straight out of the database into a
//! slot-based [`FlatAssignment`] — no `Region` clone, no `BTreeMap`
//! rebalancing — and evaluates rows through the borrow-aware
//! [`SolvedRow::check_in`](scq_core::TriangularSystem) path. Candidate
//! vectors are reused across the whole search via a per-level buffer
//! pool ([`LevelBufs`]), so a steady-state query performs no
//! allocations per candidate. Before each exact row check, a cheap
//! **bbox prefilter** tests the candidate's precomputed bounding box
//! against the level's corner query (a necessary condition for the
//! exact row, see `scq_core::plan`); fragment-heavy regions that cannot
//! satisfy the row are rejected without touching `RegionAlgebra`.
//! Empty-bbox candidates always proceed to the exact check, since an
//! empty region can satisfy a row while its (empty) box matches no
//! corner query.

use std::collections::BTreeMap;

use scq_algebra::eval::UnboundVar;
use scq_algebra::FlatAssignment;
use scq_bbox::{Bbox, CornerQuery};
use scq_boolean::Var;
use scq_core::plan::{BboxPlan, CompiledRow};
use scq_core::{check_system_in, triangularize, TriangularSystem};
use scq_region::{Region, RegionAlgebra};

use crate::database::{CollectionId, ObjectRef};
use crate::query::{IndexKind, Query};
use crate::stats::ExecStats;
use crate::view::StoreView;

/// One solution: an object per unknown variable.
pub type Solution = BTreeMap<Var, ObjectRef>;

/// Whether a query's answer set is known to be complete.
///
/// A store whose shards live in other processes can lose a shard
/// mid-query. The executors do not abort: they keep searching over the
/// candidates that did arrive and report the degradation here, so a
/// caller can distinguish "no matches" (`Complete`, empty solutions)
/// from "shard 3 was down" (`Partial`). A single-store execution is
/// always `Complete`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Every probed shard answered: the solution set is exact.
    #[default]
    Complete,
    /// At least one shard was unavailable: the solutions are a correct
    /// **subset** of the true answer (everything returned is a real
    /// solution; solutions involving the missing shards' objects may be
    /// absent).
    Partial {
        /// The shards that failed to answer, ascending, deduplicated.
        missing_shards: Vec<usize>,
    },
}

impl QueryOutcome {
    /// Builds an outcome from the union of missing shards seen during
    /// an execution (sorted and deduplicated here).
    pub fn from_missing(mut missing: Vec<usize>) -> QueryOutcome {
        if missing.is_empty() {
            return QueryOutcome::Complete;
        }
        missing.sort_unstable();
        missing.dedup();
        QueryOutcome::Partial {
            missing_shards: missing,
        }
    }

    /// Whether the answer set may be missing solutions.
    pub fn is_partial(&self) -> bool {
        matches!(self, QueryOutcome::Partial { .. })
    }

    /// The missing shards (empty when complete).
    pub fn missing_shards(&self) -> &[usize] {
        match self {
            QueryOutcome::Complete => &[],
            QueryOutcome::Partial { missing_shards } => missing_shards,
        }
    }

    /// Unions another outcome into this one (cross-shard / cross-worker
    /// merges).
    pub fn merge(&mut self, other: &QueryOutcome) {
        if other.is_partial() {
            let mut missing = std::mem::take(self).into_missing();
            missing.extend_from_slice(other.missing_shards());
            *self = QueryOutcome::from_missing(missing);
        }
    }

    fn into_missing(self) -> Vec<usize> {
        match self {
            QueryOutcome::Complete => Vec::new(),
            QueryOutcome::Partial { missing_shards } => missing_shards,
        }
    }
}

/// Result of executing a query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// All solutions, in retrieval (depth-first) order.
    pub solutions: Vec<Solution>,
    /// Work counters.
    pub stats: ExecStats,
    /// Whether the solution set is exact or degraded by unavailable
    /// shards.
    pub outcome: QueryOutcome,
}

/// Errors surfaced by the executors.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The query failed validation (unbound variables, bad order…).
    InvalidQuery(String),
    /// Internal evaluation hit an unbound variable — indicates a planner
    /// bug, surfaced rather than panicking.
    Unbound(Var),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            ExecError::Unbound(v) => write!(f, "internal error: unbound variable {v}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<UnboundVar> for ExecError {
    fn from(e: UnboundVar) -> Self {
        ExecError::Unbound(e.0)
    }
}

/// Tuning knobs shared by all executors.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Stop after this many solutions (existence queries set it to 1).
    /// `None` enumerates everything.
    pub max_solutions: Option<usize>,
}

impl ExecOptions {
    /// Enumerate every solution (the default).
    pub fn all() -> Self {
        ExecOptions {
            max_solutions: None,
        }
    }

    /// Stop at the first solution — "does a smuggling route exist?".
    pub fn first() -> Self {
        ExecOptions {
            max_solutions: Some(1),
        }
    }
}

// ── shared search machinery (also used by `crate::parallel`) ────────────

/// A query validated and decomposed for execution: retrieval order,
/// clamped known regions (the arena the search borrows from), unknowns
/// in retrieval order, and the slot count for flat assignments.
pub(crate) struct PreparedQuery<const K: usize> {
    pub order: Vec<Var>,
    pub knowns: Vec<(Var, Region<K>)>,
    pub unknowns: Vec<(Var, CollectionId)>,
    pub max_var: usize,
}

pub(crate) fn prepare<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
) -> Result<PreparedQuery<K>, ExecError> {
    query.validate().map_err(ExecError::InvalidQuery)?;
    let order = query.retrieval_order(db);
    let alg = db.algebra();
    let knowns: Vec<(Var, Region<K>)> = query
        .known_vars()
        .into_iter()
        .map(|(v, r)| (v, alg.clamp(r)))
        .collect();
    let unknown_positions: BTreeMap<Var, CollectionId> = query.unknown_vars().into_iter().collect();
    let unknowns: Vec<(Var, CollectionId)> = order
        .iter()
        .filter_map(|v| unknown_positions.get(v).map(|&c| (*v, c)))
        .collect();
    let max_var = order
        .iter()
        .map(|v| v.index())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    Ok(PreparedQuery {
        order,
        knowns,
        unknowns,
        max_var,
    })
}

/// Reusable per-level candidate buffers: the backtracking search at
/// level `i` always and only uses `LevelBufs[i]`, so one pool amortizes
/// every candidate allocation across the whole search.
pub(crate) struct LevelBuf<const K: usize> {
    /// Raw ids from the index range query.
    ids: Vec<u64>,
    /// Candidate object indices for the level (ids + empty objects, or
    /// the whole collection).
    pub candidates: Vec<usize>,
    /// Sibling corner-query cache tag: the `(corner query, collection
    /// mutation epoch)` whose **complete** probe answer `ids` currently
    /// holds. When the next gather at this level computes an equal
    /// query against an unchanged epoch — the prefix boxes feeding
    /// `row.corner_query` did not move since the previous sibling — the
    /// range query is skipped and `ids` reused; candidates are rebuilt
    /// identically either way, so only the probe is saved.
    cached: Option<(CornerQuery<K>, u64)>,
}

pub(crate) fn level_bufs<const K: usize>(n: usize) -> Vec<LevelBuf<K>> {
    (0..n)
        .map(|_| LevelBuf {
            ids: Vec::new(),
            candidates: Vec::new(),
            cached: None,
        })
        .collect()
}

/// Folds one probe's [`ProbeReport`] into the running stats and the
/// execution's union of missing shards. The single aggregation point
/// for availability accounting — the sequential and parallel executors
/// both go through it.
pub(crate) fn note_probe(
    report: crate::view::ProbeReport,
    stats: &mut ExecStats,
    missing: &mut Vec<usize>,
) {
    stats.shards_pruned += report.shards_pruned;
    stats.retries += report.retries;
    stats.failovers += report.failovers;
    stats.stale_answers += report.stale_shards.len();
    stats.shards_unavailable += report.missing_shards.len();
    stats.route_us = stats.route_us.saturating_add(report.route_us);
    // `missing` is kept sorted and deduplicated (it only ever grows
    // through this function), so the union is a binary-search insert
    // per element instead of a quadratic `contains` scan — wide
    // fan-outs with many failed shards stay linear-ish.
    for s in report.missing_shards {
        if let Err(pos) = missing.binary_search(&s) {
            missing.insert(pos, s);
        }
    }
}

/// Fills `buf.candidates` for one retrieval level and returns the
/// level's corner query (reused as the bbox prefilter).
///
/// With an index, candidates come from the corner-transform range query
/// plus the collection's empty-region objects (which no corner query
/// can return but which may satisfy the row); tombstoned slots never
/// appear, because mutations maintain the indexes eagerly. Without one,
/// the live slots of the collection are enumerated and skipped
/// tombstones are counted in [`ExecStats::tombstones_skipped`]. Either
/// way the buffers are recycled — no allocation once the pool has
/// warmed up.
///
/// A shard that fails to answer the probe costs its candidates, not the
/// query: the failure is recorded (`stats.shards_unavailable`,
/// `missing`) and the search continues over what arrived.
///
/// Consecutive gathers at the same level whose corner query is equal
/// (the prefix boxes it reads were unchanged since the previous
/// sibling) and whose collection epoch has not moved skip the range
/// query and reuse the buffered ids — the **sibling corner-query
/// cache** (`ExecStats::{corner_cache_hits, corner_cache_misses}`).
/// Only *complete* probe answers are cached; a degraded probe is
/// re-issued every time so a recovering shard is seen immediately.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gather_candidates<const K: usize, V: StoreView<K>>(
    db: &V,
    coll: CollectionId,
    kind: Option<IndexKind>,
    row: &CompiledRow<K>,
    boxes: &[Bbox<K>],
    buf: &mut LevelBuf<K>,
    stats: &mut ExecStats,
    missing: &mut Vec<usize>,
) -> CornerQuery<K> {
    let lookup = |i: usize| boxes.get(i).copied().unwrap_or(Bbox::Empty);
    let q = row.corner_query(lookup);
    buf.candidates.clear();
    match kind {
        Some(k) => {
            if q.is_unsatisfiable() {
                // No probe to reuse: an unsatisfiable query has no ids.
                buf.ids.clear();
                buf.cached = None;
            } else if buf.cached.as_ref() == Some(&(q, db.epoch(coll))) {
                stats.corner_cache_hits += 1;
            } else {
                stats.corner_cache_misses += 1;
                buf.ids.clear();
                buf.cached = None;
                let probe_start = std::time::Instant::now();
                let report = db.query_collection(coll, k, &q, &mut buf.ids);
                stats.probe_us = stats
                    .probe_us
                    .saturating_add(crate::stats::elapsed_us(probe_start));
                if report.is_complete() {
                    buf.cached = Some((q, db.epoch(coll)));
                }
                note_probe(report, stats, missing);
            }
            buf.candidates.extend(buf.ids.iter().map(|&id| id as usize));
            buf.candidates.extend_from_slice(db.empty_objects(coll));
        }
        None => {
            buf.ids.clear();
            buf.cached = None;
            db.live_indices_into(coll, &mut buf.candidates);
            stats.tombstones_skipped += db.collection_len(coll) - buf.candidates.len();
        }
    }
    q
}

/// Considers one candidate: counts it, applies the bbox prefilter, and
/// on survival binds the region **by reference** and runs the exact row
/// check.
///
/// Returns the candidate's bounding box when accepted — the binding is
/// left in place and the caller recurses, then unbinds. On rejection
/// the assignment is left unchanged.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_candidate<'e, const K: usize, V: StoreView<K>>(
    db: &'e V,
    alg: &RegionAlgebra<K>,
    row: &CompiledRow<K>,
    q: &CornerQuery<K>,
    var: Var,
    obj: ObjectRef,
    assign: &mut FlatAssignment<'e, Region<K>>,
    stats: &mut ExecStats,
) -> Result<Option<Bbox<K>>, ExecError> {
    debug_assert!(db.is_live(obj), "candidate generation leaked a tombstone");
    stats.partial_tuples += 1;
    let bb = db.bbox(obj);
    // The corner query is a necessary condition for the exact row, so a
    // non-matching bbox rejects without region algebra. Empty boxes are
    // exempt: empty regions never match corner queries yet can satisfy
    // rows.
    if !bb.is_empty() && !q.matches(&bb) {
        stats.bbox_prefilter_rejections += 1;
        return Ok(None);
    }
    assign.bind(var, db.region(obj));
    stats.regions_bound += 1;
    stats.exact_row_checks += 1;
    let check_start = std::time::Instant::now();
    let verdict = row.exact.check_in(alg, assign);
    stats.check_us = stats
        .check_us
        .saturating_add(crate::stats::elapsed_us(check_start));
    if verdict? {
        Ok(Some(bb))
    } else {
        stats.row_rejections += 1;
        assign.unbind(var);
        Ok(None)
    }
}

/// Binds the known variables by reference into a fresh flat assignment
/// and box table, then validates their solved rows (the paper's
/// integrity check on query inputs). Returns `None` when a known row
/// fails — the query has no solutions.
#[allow(clippy::type_complexity)]
pub(crate) fn bind_knowns<'e, const K: usize>(
    alg: &RegionAlgebra<K>,
    plan: &BboxPlan<K>,
    knowns: &'e [(Var, Region<K>)],
    max_var: usize,
    stats: &mut ExecStats,
) -> Result<Option<(FlatAssignment<'e, Region<K>>, Vec<Bbox<K>>)>, ExecError> {
    let mut assign: FlatAssignment<'e, Region<K>> = FlatAssignment::with_capacity(max_var);
    let mut boxes: Vec<Bbox<K>> = vec![Bbox::Empty; max_var];
    for (v, r) in knowns {
        assign.bind(*v, r);
        boxes[v.index()] = r.bbox();
    }
    if check_known_rows(alg, plan, knowns, &assign, stats)? {
        Ok(Some((assign, boxes)))
    } else {
        Ok(None)
    }
}

/// Validates the solved rows of the known variables. Returns `false`
/// when a row fails, in which case the query has no solutions.
fn check_known_rows<const K: usize>(
    alg: &RegionAlgebra<K>,
    plan: &BboxPlan<K>,
    knowns: &[(Var, Region<K>)],
    assign: &FlatAssignment<'_, Region<K>>,
    stats: &mut ExecStats,
) -> Result<bool, ExecError> {
    for &(v, _) in knowns {
        if let Some(row) = plan.row_for(v) {
            stats.exact_row_checks += 1;
            if !row.exact.check_in(alg, assign)? {
                stats.row_rejections += 1;
                return Ok(false);
            }
        }
    }
    Ok(true)
}

// ── sequential executors ────────────────────────────────────────────────

/// Shared execution context.
struct Ctx<'e, const K: usize, V: StoreView<K>> {
    db: &'e V,
    alg: RegionAlgebra<K>,
    unknowns: Vec<(Var, CollectionId)>, // in retrieval order
    stats: ExecStats,
    solutions: Vec<Solution>,
    options: ExecOptions,
    /// Union of shards that failed to answer a probe (degraded read).
    missing: Vec<usize>,
}

impl<const K: usize, V: StoreView<K>> Ctx<'_, K, V> {
    fn done(&self) -> bool {
        self.options
            .max_solutions
            .is_some_and(|max| self.solutions.len() >= max)
    }
}

/// Cross product + full constraint check at the leaves. The baseline of
/// benchmark B1: what a system without the optimizer must do.
pub fn naive_execute<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
) -> Result<QueryResult, ExecError> {
    naive_execute_opts(db, query, ExecOptions::all())
}

/// [`naive_execute`] with tuning options.
pub fn naive_execute_opts<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    let started = std::time::Instant::now();
    let prep = prepare(db, query)?;
    let mut assign: FlatAssignment<'_, Region<K>> = FlatAssignment::with_capacity(prep.max_var);
    for (v, r) in &prep.knowns {
        assign.bind(*v, r);
    }
    let mut ctx = Ctx {
        db,
        alg: db.algebra(),
        unknowns: prep.unknowns,
        stats: ExecStats::default(),
        solutions: Vec::new(),
        options,
        missing: Vec::new(),
    };
    let mut tuple = BTreeMap::new();
    naive_rec(&mut ctx, query, 0, &mut assign, &mut tuple)?;
    ctx.stats.total_us = crate::stats::elapsed_us(started);
    Ok(QueryResult {
        solutions: ctx.solutions,
        stats: ctx.stats,
        outcome: QueryOutcome::from_missing(ctx.missing),
    })
}

fn naive_rec<'e, const K: usize, V: StoreView<K>>(
    ctx: &mut Ctx<'e, K, V>,
    query: &Query<K>,
    level: usize,
    assign: &mut FlatAssignment<'e, Region<K>>,
    tuple: &mut Solution,
) -> Result<(), ExecError> {
    if level == ctx.unknowns.len() {
        ctx.stats.full_system_checks += 1;
        if check_system_in(&ctx.alg, &query.system.constraints, assign)? {
            ctx.stats.solutions += 1;
            ctx.solutions.push(tuple.clone());
        }
        return Ok(());
    }
    let (var, coll) = ctx.unknowns[level];
    for index in 0..ctx.db.collection_len(coll) {
        if ctx.done() {
            return Ok(());
        }
        let obj = ObjectRef {
            collection: coll,
            index,
        };
        if !ctx.db.is_live(obj) {
            ctx.stats.tombstones_skipped += 1;
            continue;
        }
        ctx.stats.partial_tuples += 1;
        ctx.stats.index_candidates += 1;
        assign.bind(var, ctx.db.region(obj));
        ctx.stats.regions_bound += 1;
        tuple.insert(var, obj);
        naive_rec(ctx, query, level + 1, assign, tuple)?;
        tuple.remove(&var);
        assign.unbind(var);
    }
    Ok(())
}

/// Prepares the triangular system for a query (shared by the two
/// optimized executors and exposed for benchmarks that want to time
/// compilation separately).
pub fn compile_triangular<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
) -> Result<TriangularSystem, ExecError> {
    let prep = prepare(db, query)?;
    let normal = query.system.normalize();
    Ok(triangularize(&normal, &prep.order))
}

/// Early pruning with exact solved rows, candidates from full collection
/// scans (no spatial index). Isolates the benefit of the triangular form
/// from the benefit of range queries (the bbox prefilter still applies,
/// so the ablation measures the index's *retrieval* savings).
pub fn triangular_execute<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
) -> Result<QueryResult, ExecError> {
    run_optimized(db, query, None, ExecOptions::all())
}

/// [`triangular_execute`] with tuning options.
pub fn triangular_execute_opts<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    run_optimized(db, query, None, options)
}

/// The paper's full pipeline: per-level corner-transform range query
/// against the chosen index, then exact row verification.
pub fn bbox_execute<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
    kind: IndexKind,
) -> Result<QueryResult, ExecError> {
    run_optimized(db, query, Some(kind), ExecOptions::all())
}

/// [`bbox_execute`] with tuning options.
pub fn bbox_execute_opts<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
    kind: IndexKind,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    run_optimized(db, query, Some(kind), options)
}

fn run_optimized<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
    kind: Option<IndexKind>,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    let started = std::time::Instant::now();
    let prep = prepare(db, query)?;
    let normal = query.system.normalize();
    let tri = triangularize(&normal, &prep.order);
    let plan: BboxPlan<K> = BboxPlan::compile(&tri);
    let alg = db.algebra();
    let mut stats = ExecStats::default();
    let empty = |mut stats: ExecStats| {
        stats.total_us = crate::stats::elapsed_us(started);
        QueryResult {
            solutions: Vec::new(),
            stats,
            outcome: QueryOutcome::Complete,
        }
    };
    if !plan.satisfiable {
        return Ok(empty(stats));
    }
    let Some((mut assign, mut boxes)) =
        bind_knowns(&alg, &plan, &prep.knowns, prep.max_var, &mut stats)?
    else {
        return Ok(empty(stats));
    };
    let mut ctx = Ctx {
        db,
        alg,
        unknowns: prep.unknowns,
        stats,
        solutions: Vec::new(),
        options,
        missing: Vec::new(),
    };
    let mut tuple = BTreeMap::new();
    let mut bufs = level_bufs(ctx.unknowns.len());
    opt_rec(
        &mut ctx,
        &plan,
        kind,
        0,
        &mut assign,
        &mut boxes,
        &mut tuple,
        &mut bufs,
    )?;
    ctx.stats.total_us = crate::stats::elapsed_us(started);
    Ok(QueryResult {
        solutions: ctx.solutions,
        stats: ctx.stats,
        outcome: QueryOutcome::from_missing(ctx.missing),
    })
}

#[allow(clippy::too_many_arguments)]
fn opt_rec<'e, const K: usize, V: StoreView<K>>(
    ctx: &mut Ctx<'e, K, V>,
    plan: &BboxPlan<K>,
    kind: Option<IndexKind>,
    level: usize,
    assign: &mut FlatAssignment<'e, Region<K>>,
    boxes: &mut [Bbox<K>],
    tuple: &mut Solution,
    bufs: &mut [LevelBuf<K>],
) -> Result<(), ExecError> {
    if level == ctx.unknowns.len() {
        ctx.stats.solutions += 1;
        ctx.solutions.push(tuple.clone());
        return Ok(());
    }
    let (var, coll) = ctx.unknowns[level];
    let row = plan.row_for(var).expect("plan has a row per variable");
    let (buf, rest) = bufs.split_first_mut().expect("buffer per level");
    let q = gather_candidates(
        ctx.db,
        coll,
        kind,
        row,
        boxes,
        buf,
        &mut ctx.stats,
        &mut ctx.missing,
    );
    ctx.stats.index_candidates += buf.candidates.len();

    for &index in &buf.candidates {
        if ctx.done() {
            return Ok(());
        }
        let obj = ObjectRef {
            collection: coll,
            index,
        };
        if let Some(bb) =
            try_candidate(ctx.db, &ctx.alg, row, &q, var, obj, assign, &mut ctx.stats)?
        {
            boxes[var.index()] = bb;
            tuple.insert(var, obj);
            opt_rec(ctx, plan, kind, level + 1, assign, boxes, tuple, rest)?;
            tuple.remove(&var);
            boxes[var.index()] = Bbox::Empty;
            assign.unbind(var);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SpatialDatabase;
    use crate::query::VarBinding;
    use scq_core::parse_system;
    use scq_region::AaBox;

    /// A miniature smuggler scenario with known ground truth.
    fn smuggler_db() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let towns = db.collection("towns");
        let roads = db.collection("roads");
        let states = db.collection("states");

        // country: [10,90]²; border band is near x=10
        let country = Region::from_box(AaBox::new([10.0, 10.0], [90.0, 90.0]));
        // destination area A deep inside
        let area = Region::from_box(AaBox::new([60.0, 40.0], [70.0, 50.0]));

        // towns: two on the border strip, one outside the country
        db.insert(
            towns,
            Region::from_box(AaBox::new([10.0, 42.0], [14.0, 46.0])),
        ); // t0 ok
        db.insert(
            towns,
            Region::from_box(AaBox::new([10.0, 70.0], [14.0, 74.0])),
        ); // t1 wrong row
        db.insert(towns, Region::from_box(AaBox::new([0.0, 0.0], [5.0, 5.0]))); // t2 outside C

        // states: horizontal bands of the country
        db.insert(
            states,
            Region::from_box(AaBox::new([10.0, 10.0], [90.0, 55.0])),
        ); // s0 contains corridor
        db.insert(
            states,
            Region::from_box(AaBox::new([10.0, 55.0], [90.0, 90.0])),
        ); // s1 north

        // roads: r0 connects t0 to A inside s0; r1 connects t1 heading
        // south crossing both states; r2 unrelated
        db.insert(
            roads,
            Region::from_box(AaBox::new([12.0, 43.0], [65.0, 45.0])),
        ); // r0 good
        db.insert(
            roads,
            Region::from_box(AaBox::new([12.0, 45.0], [14.0, 72.0])),
        ); // r1 crosses bands, touches A? no
        db.insert(
            roads,
            Region::from_box(AaBox::new([20.0, 80.0], [80.0, 82.0])),
        ); // r2

        let sys =
            parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C").unwrap();
        let q = Query::new(sys)
            .known("C", country)
            .known("A", area)
            .from_collection("T", towns)
            .from_collection("R", roads)
            .from_collection("B", states)
            .with_order(&["T", "R", "B"]);
        (db, q)
    }

    fn solution_names(db: &SpatialDatabase<2>, q: &Query<2>, r: &QueryResult) -> Vec<String> {
        let _ = db;
        let mut out: Vec<String> = r
            .solutions
            .iter()
            .map(|s| {
                s.iter()
                    .map(|(v, o)| format!("{}={}", q.system.table.display(*v), o.index))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn executors_agree_on_smuggler() {
        let (db, q) = smuggler_db();
        let naive = naive_execute(&db, &q).unwrap();
        let tri = triangular_execute(&db, &q).unwrap();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let bbox = bbox_execute(&db, &q, kind).unwrap();
            assert_eq!(
                solution_names(&db, &q, &naive),
                solution_names(&db, &q, &bbox),
                "bbox({kind:?}) differs from naive"
            );
        }
        assert_eq!(
            solution_names(&db, &q, &naive),
            solution_names(&db, &q, &tri)
        );
        // Ground truth: t0 with r0 entirely within s0 (and the corridor
        // road overlaps both the town and the area).
        let names = solution_names(&db, &q, &naive);
        assert!(!names.is_empty(), "the smuggler has a route");
        assert!(
            names.iter().all(|s| s.contains("T=0")),
            "only t0 works: {names:?}"
        );
    }

    #[test]
    fn optimizer_prunes_work() {
        let (db, q) = smuggler_db();
        let naive = naive_execute(&db, &q).unwrap();
        let bbox = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert!(
            bbox.stats.partial_tuples < naive.stats.partial_tuples,
            "range queries + row pruning must reduce the search tree: {} vs {}",
            bbox.stats.partial_tuples,
            naive.stats.partial_tuples
        );
        assert_eq!(
            bbox.stats.full_system_checks, 0,
            "no leaf-level full checks needed"
        );
    }

    #[test]
    fn unsatisfiable_inputs_yield_no_solutions() {
        let (db, mut q) = smuggler_db();
        // Destination area outside the country: A ≤ C fails.
        let outside = Region::from_box(AaBox::new([95.0, 95.0], [99.0, 99.0]));
        let v = q.system.table.get("A").unwrap();
        q.bindings.insert(v, VarBinding::Known(outside));
        let r = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert!(r.solutions.is_empty());
        let n = naive_execute(&db, &q).unwrap();
        assert!(n.solutions.is_empty());
    }

    #[test]
    fn empty_region_objects_are_handled() {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let xs = db.collection("xs");
        db.insert(xs, Region::empty());
        db.insert(xs, Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0])));
        // X ≤ A with A known: the empty region satisfies it.
        let sys = parse_system("X <= A").unwrap();
        let q = Query::new(sys)
            .known("A", Region::from_box(AaBox::new([0.0, 0.0], [5.0, 5.0])))
            .from_collection("X", xs);
        let naive = naive_execute(&db, &q).unwrap();
        let bbox = bbox_execute(&db, &q, IndexKind::GridFile).unwrap();
        assert_eq!(naive.solutions.len(), 2, "both objects qualify");
        assert_eq!(
            bbox.solutions.len(),
            2,
            "empty-region object must not be lost"
        );
    }

    #[test]
    fn nonempty_constraint_excludes_empty_objects() {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let xs = db.collection("xs");
        db.insert(xs, Region::empty());
        db.insert(xs, Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0])));
        let sys = parse_system("X <= A; X != 0").unwrap();
        let q = Query::new(sys)
            .known("A", Region::from_box(AaBox::new([0.0, 0.0], [5.0, 5.0])))
            .from_collection("X", xs);
        for r in [
            naive_execute(&db, &q).unwrap(),
            triangular_execute(&db, &q).unwrap(),
            bbox_execute(&db, &q, IndexKind::RTree).unwrap(),
        ] {
            assert_eq!(r.solutions.len(), 1);
            assert_eq!(r.solutions[0].values().next().unwrap().index, 1);
        }
    }

    /// A database where the overlay query has many solutions.
    fn overlay_db() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let xs = db.collection("xs");
        let ys = db.collection("ys");
        for i in 0..10 {
            let t = i as f64 * 8.0;
            db.insert(xs, Region::from_box(AaBox::new([t, 0.0], [t + 10.0, 50.0])));
            db.insert(
                ys,
                Region::from_box(AaBox::new([t + 4.0, 10.0], [t + 12.0, 40.0])),
            );
        }
        let sys = parse_system("X & Y != 0").unwrap();
        let q = Query::new(sys)
            .from_collection("X", xs)
            .from_collection("Y", ys);
        (db, q)
    }

    #[test]
    fn first_solution_stops_early() {
        let (db, q) = overlay_db();
        let full = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert!(full.solutions.len() > 1, "scenario has several routes");
        let one = bbox_execute_opts(&db, &q, IndexKind::RTree, ExecOptions::first()).unwrap();
        assert_eq!(one.solutions.len(), 1);
        assert!(one.stats.partial_tuples < full.stats.partial_tuples);
        assert!(full.solutions.contains(&one.solutions[0]));
        // naive and triangular variants honour the limit too
        let n1 = naive_execute_opts(&db, &q, ExecOptions::first()).unwrap();
        assert_eq!(n1.solutions.len(), 1);
        let t1 = triangular_execute_opts(&db, &q, ExecOptions::first()).unwrap();
        assert_eq!(t1.solutions.len(), 1);
    }

    #[test]
    fn max_solutions_caps_exactly() {
        let (db, q) = overlay_db();
        let full = bbox_execute(&db, &q, IndexKind::Scan).unwrap();
        let k = full.solutions.len().saturating_sub(1).max(1);
        let capped = bbox_execute_opts(
            &db,
            &q,
            IndexKind::Scan,
            ExecOptions {
                max_solutions: Some(k),
            },
        )
        .unwrap();
        assert_eq!(capped.solutions.len(), k.min(full.solutions.len()));
        for s in &capped.solutions {
            assert!(full.solutions.contains(s));
        }
    }

    #[test]
    fn invalid_queries_error() {
        let db: SpatialDatabase<2> = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1.0, 1.0]));
        let sys = parse_system("X <= Y").unwrap();
        let q = Query::new(sys);
        match naive_execute(&db, &q) {
            Err(ExecError::InvalidQuery(m)) => assert!(m.contains("not bound")),
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
    }

    #[test]
    fn negative_constraints_prune() {
        // Roads must NOT be contained in the forbidden zone.
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let roads = db.collection("roads");
        db.insert(roads, Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0]))); // inside F
        db.insert(roads, Region::from_box(AaBox::new([5.0, 5.0], [6.0, 6.0]))); // outside F
        let sys = parse_system("R !<= F").unwrap();
        let q = Query::new(sys)
            .known("F", Region::from_box(AaBox::new([0.0, 0.0], [3.0, 3.0])))
            .from_collection("R", roads);
        for r in [
            naive_execute(&db, &q).unwrap(),
            triangular_execute(&db, &q).unwrap(),
            bbox_execute(&db, &q, IndexKind::Scan).unwrap(),
        ] {
            assert_eq!(r.solutions.len(), 1);
            assert_eq!(r.solutions[0].values().next().unwrap().index, 1);
        }
    }

    #[test]
    fn prefilter_never_changes_solutions() {
        // The bbox prefilter is a necessary condition for the exact
        // row, so it may only skip region algebra — never a solution.
        // Checked on both reference scenarios against the naive oracle.
        for (db, q) in [smuggler_db(), overlay_db()] {
            let oracle = solution_names(&db, &q, &naive_execute(&db, &q).unwrap());
            let tri = triangular_execute(&db, &q).unwrap();
            assert!(
                tri.stats.bbox_prefilter_rejections > 0,
                "full-scan candidates exercise the prefilter"
            );
            assert_eq!(oracle, solution_names(&db, &q, &tri));
            for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
                let bbox = bbox_execute(&db, &q, kind).unwrap();
                assert_eq!(oracle, solution_names(&db, &q, &bbox), "{kind:?}");
            }
        }
    }

    #[test]
    fn tombstones_are_skipped_never_bound() {
        let (mut db, q) = smuggler_db();
        let oracle = solution_names(&db, &q, &naive_execute(&db, &q).unwrap());
        let towns = db.collection_id("towns").unwrap();
        let roads = db.collection_id("roads").unwrap();
        // Tombstone objects that are in no solution (t2 lies outside the
        // country, r2 is a decoy): answers must not change, but the
        // full-scan executors must notice and skip the dead slots.
        assert!(db.remove(ObjectRef {
            collection: towns,
            index: 2,
        }));
        assert!(db.remove(ObjectRef {
            collection: roads,
            index: 2,
        }));
        let naive = naive_execute(&db, &q).unwrap();
        assert!(naive.stats.tombstones_skipped > 0, "naive scans every slot");
        let tri = triangular_execute(&db, &q).unwrap();
        assert!(tri.stats.tombstones_skipped > 0, "full-scan candidates");
        assert_eq!(oracle, solution_names(&db, &q, &naive));
        assert_eq!(oracle, solution_names(&db, &q, &tri));
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let bbox = bbox_execute(&db, &q, kind).unwrap();
            assert_eq!(oracle, solution_names(&db, &q, &bbox), "{kind:?}");
            assert_eq!(
                bbox.stats.tombstones_skipped, 0,
                "indexes never surface tombstones ({kind:?})"
            );
        }
    }

    #[test]
    fn removing_a_solution_object_removes_its_solutions() {
        let (mut db, q) = smuggler_db();
        let towns = db.collection_id("towns").unwrap();
        // t0 is the only town in any solution; tombstoning it empties
        // the answer set across all executors.
        assert!(db.remove(ObjectRef {
            collection: towns,
            index: 0,
        }));
        assert!(naive_execute(&db, &q).unwrap().solutions.is_empty());
        assert!(triangular_execute(&db, &q).unwrap().solutions.is_empty());
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            assert!(bbox_execute(&db, &q, kind).unwrap().solutions.is_empty());
        }
    }

    #[test]
    fn updates_change_answers_in_place() {
        let (mut db, q) = smuggler_db();
        let roads = db.collection_id("roads").unwrap();
        let r0 = ObjectRef {
            collection: roads,
            index: 0,
        };
        let before = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert!(!before.solutions.is_empty());
        // Shrink the good road to a stub that reaches nothing: its
        // solutions disappear without a rebuild.
        assert!(db.update(r0, Region::from_box(AaBox::new([12.0, 43.0], [13.0, 44.0]))));
        let naive = naive_execute(&db, &q).unwrap();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let after = bbox_execute(&db, &q, kind).unwrap();
            assert_eq!(
                solution_names(&db, &q, &naive),
                solution_names(&db, &q, &after),
                "{kind:?}"
            );
            assert!(after.solutions.is_empty(), "stub road solves nothing");
        }
        // Restoring the road restores the answers.
        assert!(db.update(r0, Region::from_box(AaBox::new([12.0, 43.0], [65.0, 45.0]))));
        let restored = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert_eq!(
            solution_names(&db, &q, &before),
            solution_names(&db, &q, &restored)
        );
    }

    #[test]
    fn note_probe_dedups_missing_shards_sorted() {
        use crate::view::ProbeReport;
        let mut stats = ExecStats::default();
        let mut missing: Vec<usize> = Vec::new();
        note_probe(
            ProbeReport {
                missing_shards: vec![3, 1, 3],
                ..Default::default()
            },
            &mut stats,
            &mut missing,
        );
        assert_eq!(missing, vec![1, 3]);
        note_probe(
            ProbeReport {
                missing_shards: vec![2, 1, 7, 2],
                ..Default::default()
            },
            &mut stats,
            &mut missing,
        );
        assert_eq!(
            missing,
            vec![1, 2, 3, 7],
            "union stays sorted and deduplicated across reports"
        );
        assert_eq!(
            stats.shards_unavailable, 7,
            "every reported failure counts, duplicates included"
        );
    }

    #[test]
    fn sibling_corner_cache_skips_repeat_probes() {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let xs = db.collection("xs");
        let ys = db.collection("ys");
        for i in 0..6 {
            let t = i as f64 * 10.0;
            db.insert(xs, Region::from_box(AaBox::new([t, 0.0], [t + 8.0, 8.0])));
            db.insert(ys, Region::from_box(AaBox::new([t, 20.0], [t + 8.0, 28.0])));
        }
        // Y's solved row references only the known W, so the Y-level
        // corner query is identical for every accepted X sibling: all
        // but the first gather at that level hit the sibling cache.
        let sys = parse_system("X <= W; Y <= W").unwrap();
        let q = Query::new(sys)
            .known(
                "W",
                Region::from_box(AaBox::new([0.0, 0.0], [100.0, 100.0])),
            )
            .from_collection("X", xs)
            .from_collection("Y", ys)
            .with_order(&["X", "Y"]);
        let naive = naive_execute(&db, &q).unwrap();
        assert_eq!(naive.solutions.len(), 36);
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let r = bbox_execute(&db, &q, kind).unwrap();
            assert_eq!(
                solution_names(&db, &q, &naive),
                solution_names(&db, &q, &r),
                "{kind:?}: cache must not change answers"
            );
            assert_eq!(
                r.stats.corner_cache_hits, 5,
                "{kind:?}: 6 X siblings → 5 repeat gathers at the Y level"
            );
            assert_eq!(
                r.stats.corner_cache_misses, 2,
                "{kind:?}: one real probe per level"
            );
        }
    }

    #[test]
    fn sibling_corner_cache_misses_when_prefix_boxes_move() {
        // In the smuggler scenario the R and B rows reference the
        // previously bound unknowns, so their corner queries change per
        // sibling: the cache must observe that and re-probe.
        let (db, q) = smuggler_db();
        let r = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert!(
            r.stats.corner_cache_misses > 0,
            "joined levels re-probe when the prefix boxes change"
        );
        let gathers = r.stats.corner_cache_hits + r.stats.corner_cache_misses;
        assert!(
            gathers >= r.stats.corner_cache_misses,
            "counters stay consistent"
        );
    }

    #[test]
    fn prefilter_counters_are_consistent() {
        let (db, q) = smuggler_db();
        let r = triangular_execute(&db, &q).unwrap();
        // Every candidate is either prefiltered or bound + row-checked.
        assert_eq!(
            r.stats.partial_tuples,
            r.stats.bbox_prefilter_rejections + r.stats.regions_bound
        );
        // Row checks = one per bound candidate + one per known variable
        // (C and A are validated up front).
        assert_eq!(r.stats.exact_row_checks, r.stats.regions_bound + 2);
    }

    /// The allocation-regression smoke test: executing the map workload
    /// performs **zero** `Region` clones in the candidate loops — the
    /// executors bind regions by reference. Counter-based (thread-local,
    /// debug builds), so CI enforces it deterministically.
    #[cfg(debug_assertions)]
    #[test]
    fn executors_perform_zero_region_clones() {
        use crate::workload::{map_workload, MapParams};
        use scq_region::region::clone_counter;

        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
        let w = map_workload(
            &mut db,
            5,
            &MapParams {
                n_states: 6,
                n_towns: 16,
                n_roads: 48,
                useful_road_fraction: 0.15,
            },
        );
        let sys =
            parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C").unwrap();
        let q = Query::new(sys)
            .known("C", w.country.clone())
            .known("A", w.area.clone())
            .from_collection("T", w.towns)
            .from_collection("R", w.roads)
            .from_collection("B", w.states)
            .with_order(&["T", "R", "B"]);

        clone_counter::reset();
        let bbox = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        assert_eq!(
            clone_counter::count(),
            0,
            "bbox executor must not clone regions"
        );
        let tri = triangular_execute(&db, &q).unwrap();
        assert_eq!(
            clone_counter::count(),
            0,
            "triangular executor must not clone regions"
        );
        let naive = naive_execute(&db, &q).unwrap();
        assert_eq!(
            clone_counter::count(),
            0,
            "naive executor must not clone regions"
        );
        assert_eq!(bbox.stats.solutions, naive.stats.solutions);
        assert_eq!(tri.stats.solutions, naive.stats.solutions);
        assert!(
            naive.stats.regions_bound > 0,
            "the search actually bound regions"
        );
    }
}
