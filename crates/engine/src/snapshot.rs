//! Binary snapshots of a spatial database.
//!
//! A compact, versioned, self-describing format:
//!
//! ```text
//! magic "SCQS" | u16 version | u16 dimension K
//! universe (2K f64 little-endian)
//! u32 collection count
//! per collection:
//!   u16 name length | name bytes (UTF-8)
//!   u32 object count            (v2: slot count, tombstones included)
//!   per object:
//!     u8 flags                  (v2 only; bit 0 = live)
//!     u32 fragment count | fragments (2K f64 little-endian)
//! ```
//!
//! **Version 2** (current) serializes each slot's liveness so a mutated
//! database round-trips exactly: tombstoned slots keep their position
//! (hence every [`crate::ObjectRef`] keeps its meaning) and stay out of
//! the rebuilt indexes. **Version 1** snapshots (no flags byte) still
//! load — every v1 object is live.
//!
//! Indexes are *not* serialized — they are derived data and are rebuilt
//! on load (deterministically, since insertion order is preserved).
//! Decoding validates the header, the dimension and all counts against
//! the remaining buffer, so truncated or corrupted input yields a
//! [`SnapshotError`] instead of a panic or a garbage database; a buffer
//! with bytes left over after the declared content is rejected as
//! [`SnapshotError::TrailingData`] rather than silently accepted.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use scq_region::{AaBox, Region};

use crate::database::SpatialDatabase;

const MAGIC: &[u8; 4] = b"SCQS";
/// Current (written) format version.
const VERSION: u16 = 2;
/// Oldest still-loadable format version.
const V1: u16 = 1;

/// Errors produced by [`load`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The snapshot was written for a different dimension.
    DimensionMismatch {
        /// Dimension recorded in the snapshot.
        found: u16,
        /// Dimension requested by the caller.
        expected: u16,
    },
    /// The buffer ended before the declared content.
    Truncated,
    /// A collection name was not valid UTF-8.
    BadName,
    /// A coordinate was not finite.
    BadCoordinate,
    /// Bytes remained after the last declared collection — the payload
    /// is longer than its own header admits (corruption or a
    /// mis-framed write), so it is rejected rather than silently
    /// truncated.
    TrailingData {
        /// Number of unconsumed bytes.
        bytes: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a database snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::DimensionMismatch { found, expected } => {
                write!(f, "snapshot is {found}-dimensional, expected {expected}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadName => write!(f, "collection name is not UTF-8"),
            SnapshotError::BadCoordinate => write!(f, "non-finite coordinate"),
            SnapshotError::TrailingData { bytes } => {
                write!(f, "{bytes} trailing bytes after the last collection")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes the database (universe, collections, regions, per-slot
/// liveness) in the v2 format.
pub fn save<const K: usize>(db: &SpatialDatabase<K>) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(K as u16);
    // universe
    for c in db.universe().lo().iter().chain(db.universe().hi().iter()) {
        buf.put_f64_le(*c);
    }
    let collections: Vec<_> = db.collections().collect();
    buf.put_u32_le(collections.len() as u32);
    for coll in collections {
        let name = db.collection_name(coll);
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
        let n = db.collection_len(coll);
        buf.put_u32_le(n as u32);
        for index in db.object_indices(coll) {
            let obj = crate::database::ObjectRef {
                collection: coll,
                index,
            };
            let region = db.region(obj);
            buf.put_u8(db.is_live(obj) as u8);
            buf.put_u32_le(region.boxes().len() as u32);
            for b in region.boxes() {
                for c in b.lo().iter().chain(b.hi().iter()) {
                    buf.put_f64_le(*c);
                }
            }
        }
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize) -> Result<(), SnapshotError> {
    if buf.remaining() < n {
        Err(SnapshotError::Truncated)
    } else {
        Ok(())
    }
}

fn get_coords<const K: usize>(buf: &mut impl Buf) -> Result<([f64; K], [f64; K]), SnapshotError> {
    need(buf, 16 * K)?;
    let mut lo = [0.0; K];
    let mut hi = [0.0; K];
    for c in lo.iter_mut().chain(hi.iter_mut()) {
        let v = buf.get_f64_le();
        if !v.is_finite() {
            return Err(SnapshotError::BadCoordinate);
        }
        *c = v;
    }
    Ok((lo, hi))
}

/// Reconstructs a database from a snapshot, rebuilding all indexes.
pub fn load<const K: usize>(data: &[u8]) -> Result<SpatialDatabase<K>, SnapshotError> {
    let mut buf = data;
    need(&buf, 8)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION && version != V1 {
        return Err(SnapshotError::BadVersion(version));
    }
    let dim = buf.get_u16_le();
    if dim as usize != K {
        return Err(SnapshotError::DimensionMismatch {
            found: dim,
            expected: K as u16,
        });
    }
    let (ulo, uhi) = get_coords::<K>(&mut buf)?;
    let mut db = SpatialDatabase::new(AaBox::new(ulo, uhi));
    need(&buf, 4)?;
    let n_coll = buf.get_u32_le();
    for _ in 0..n_coll {
        need(&buf, 2)?;
        let name_len = buf.get_u16_le() as usize;
        need(&buf, name_len)?;
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| SnapshotError::BadName)?;
        let coll = db.collection(&name);
        need(&buf, 4)?;
        let n_obj = buf.get_u32_le();
        for _ in 0..n_obj {
            let live = if version >= 2 {
                need(&buf, 1)?;
                buf.get_u8() & 1 != 0
            } else {
                true
            };
            need(&buf, 4)?;
            let n_frag = buf.get_u32_le();
            // Validate the declared fragment bytes against the buffer
            // *before* reserving: a corrupt count must yield an error,
            // not a huge allocation.
            need(&buf, (n_frag as usize).saturating_mul(16 * K))?;
            let mut boxes = Vec::with_capacity(n_frag as usize);
            for _ in 0..n_frag {
                let (lo, hi) = get_coords::<K>(&mut buf)?;
                boxes.push(AaBox::new(lo, hi));
            }
            // Fragments were stored disjoint; from_boxes re-unions them,
            // which is a no-op for disjoint input but keeps the region
            // invariant even for hand-crafted snapshots.
            db.restore_slot(coll, Region::from_boxes(boxes), live);
        }
    }
    if buf.has_remaining() {
        return Err(SnapshotError::TrailingData {
            bytes: buf.remaining(),
        });
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{bbox_execute, naive_execute};
    use crate::query::{IndexKind, Query};
    use crate::workload::{map_workload, MapParams};
    use scq_core::parse_system;

    fn sample_db() -> SpatialDatabase<2> {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
        map_workload(
            &mut db,
            3,
            &MapParams {
                n_states: 4,
                n_towns: 10,
                n_roads: 20,
                useful_road_fraction: 0.2,
            },
        );
        // include an empty region and a multi-fragment region
        let misc = db.collection("misc");
        db.insert(misc, Region::empty());
        db.insert(
            misc,
            Region::from_boxes([
                AaBox::new([1.0, 1.0], [2.0, 2.0]),
                AaBox::new([5.0, 5.0], [6.0, 6.0]),
            ]),
        );
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample_db();
        let bytes = save(&db);
        let loaded: SpatialDatabase<2> = load(&bytes).unwrap();
        assert_eq!(db.collections().count(), loaded.collections().count());
        for coll in db.collections() {
            let name = db.collection_name(coll);
            let lcoll = loaded.collection_id(name).unwrap();
            assert_eq!(db.collection_len(coll), loaded.collection_len(lcoll));
            for index in db.object_indices(coll) {
                let a = db.region(crate::database::ObjectRef {
                    collection: coll,
                    index,
                });
                let b = loaded.region(crate::database::ObjectRef {
                    collection: lcoll,
                    index,
                });
                assert!(a.same_set(b), "object {index} of {name} differs");
            }
            assert_eq!(db.empty_objects(coll), loaded.empty_objects(lcoll));
        }
    }

    #[test]
    fn queries_agree_after_reload() {
        let db = sample_db();
        let loaded: SpatialDatabase<2> = load(&save(&db)).unwrap();
        let sys = parse_system("T <= K; T != 0").unwrap();
        let towns = db.collection_id("towns").unwrap();
        let region = Region::from_box(AaBox::new([0.0, 0.0], [500.0, 500.0]));
        let q = Query::new(sys.clone())
            .known("K", region.clone())
            .from_collection("T", towns);
        let q2 = Query::new(sys)
            .known("K", region)
            .from_collection("T", loaded.collection_id("towns").unwrap());
        let a = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        let b = bbox_execute(&loaded, &q2, IndexKind::RTree).unwrap();
        let n = naive_execute(&loaded, &q2).unwrap();
        assert_eq!(a.stats.solutions, b.stats.solutions);
        assert_eq!(n.stats.solutions, b.stats.solutions);
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let db = sample_db();
        let bytes = save(&db);
        // bad magic
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(load::<2>(&bad).err(), Some(SnapshotError::BadMagic));
        // bad version
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert!(matches!(
            load::<2>(&bad).err(),
            Some(SnapshotError::BadVersion(_))
        ));
        // wrong dimension
        assert!(matches!(
            load::<3>(&bytes).err(),
            Some(SnapshotError::DimensionMismatch {
                found: 2,
                expected: 3
            })
        ));
        // truncation at every prefix must error, never panic
        for cut in 0..bytes.len().min(200) {
            assert!(load::<2>(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        assert!(load::<2>(&bytes[..bytes.len() - 3]).is_err());
        // non-finite coordinate
        let mut bad = bytes.to_vec();
        let pos = 8; // first universe coordinate
        bad[pos..pos + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(load::<2>(&bad).err(), Some(SnapshotError::BadCoordinate));
    }

    #[test]
    fn v2_round_trips_tombstones() {
        let mut db = sample_db();
        let towns = db.collection_id("towns").unwrap();
        let roads = db.collection_id("roads").unwrap();
        let t = crate::database::ObjectRef {
            collection: towns,
            index: 1,
        };
        let r = crate::database::ObjectRef {
            collection: roads,
            index: 0,
        };
        let t2 = crate::database::ObjectRef {
            collection: towns,
            index: 2,
        };
        assert!(db.remove(t));
        assert!(db.remove(r));
        assert!(db.update(
            t2,
            Region::from_box(AaBox::new([400.0, 400.0], [410.0, 410.0]))
        ));
        let loaded: SpatialDatabase<2> = load(&save(&db)).unwrap();
        for coll in db.collections() {
            let name = db.collection_name(coll);
            let lcoll = loaded.collection_id(name).unwrap();
            assert_eq!(db.collection_len(coll), loaded.collection_len(lcoll));
            assert_eq!(db.live_len(coll), loaded.live_len(lcoll), "{name}");
            for index in db.object_indices(coll) {
                let a = crate::database::ObjectRef {
                    collection: coll,
                    index,
                };
                let b = crate::database::ObjectRef {
                    collection: lcoll,
                    index,
                };
                assert_eq!(db.is_live(a), loaded.is_live(b), "{name}[{index}]");
                assert!(db.region(a).same_set(loaded.region(b)), "{name}[{index}]");
            }
        }
        crate::integrity::check(&loaded).expect("reloaded database is consistent");
        // index answers agree between the mutated original and the reload
        let probe = scq_bbox::Bbox::new([0.0, 0.0], [500.0, 500.0]);
        let q = scq_bbox::CornerQuery::unconstrained().and_contained_in(&probe);
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            db.query_collection(towns, kind, &q, &mut a);
            loaded.query_collection(loaded.collection_id("towns").unwrap(), kind, &q, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn v1_snapshots_still_load() {
        // Hand-crafted v1 payload: no per-object liveness byte.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(b"SCQS");
        buf.extend_from_slice(&1u16.to_le_bytes()); // version 1
        buf.extend_from_slice(&2u16.to_le_bytes()); // K = 2
        for c in [0.0f64, 0.0, 100.0, 100.0] {
            buf.extend_from_slice(&c.to_le_bytes()); // universe
        }
        buf.extend_from_slice(&1u32.to_le_bytes()); // one collection
        buf.extend_from_slice(&5u16.to_le_bytes());
        buf.extend_from_slice(b"boxes");
        buf.extend_from_slice(&2u32.to_le_bytes()); // two objects
        buf.extend_from_slice(&1u32.to_le_bytes()); // one fragment
        for c in [1.0f64, 1.0, 2.0, 2.0] {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        buf.extend_from_slice(&0u32.to_le_bytes()); // empty region
        let db: SpatialDatabase<2> = load(&buf).unwrap();
        let coll = db.collection_id("boxes").unwrap();
        assert_eq!(db.collection_len(coll), 2);
        assert_eq!(db.live_len(coll), 2, "every v1 object is live");
        assert_eq!(db.empty_objects(coll), &[1]);
        crate::integrity::check(&db).expect("v1 load is consistent");
        // v1 payloads with trailing bytes are rejected, not ignored
        let mut bad = buf.clone();
        bad.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            load::<2>(&bad).err(),
            Some(SnapshotError::TrailingData { bytes: 3 })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bytes = save(&sample_db());
        let mut bad = bytes.to_vec();
        bad.push(0);
        assert_eq!(
            load::<2>(&bad).err(),
            Some(SnapshotError::TrailingData { bytes: 1 })
        );
    }

    #[test]
    fn truncation_inside_the_liveness_section_is_rejected() {
        // Hand-crafted v2 payload declaring two objects but cut exactly
        // where the second object's liveness flags byte should start:
        // the loader must report Truncated, not default the flag or
        // panic.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(b"SCQS");
        buf.extend_from_slice(&2u16.to_le_bytes()); // version 2
        buf.extend_from_slice(&2u16.to_le_bytes()); // K = 2
        for c in [0.0f64, 0.0, 100.0, 100.0] {
            buf.extend_from_slice(&c.to_le_bytes()); // universe
        }
        buf.extend_from_slice(&1u32.to_le_bytes()); // one collection
        buf.extend_from_slice(&5u16.to_le_bytes());
        buf.extend_from_slice(b"boxes");
        buf.extend_from_slice(&2u32.to_le_bytes()); // TWO objects declared
        buf.push(1); // object 0: live
        buf.extend_from_slice(&1u32.to_le_bytes()); // one fragment
        for c in [1.0f64, 1.0, 2.0, 2.0] {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        // object 1 is missing entirely — the cut lands on its flags byte
        assert_eq!(load::<2>(&buf).err(), Some(SnapshotError::Truncated));
        // one flags byte but no fragment count: still truncated
        let mut partial = buf.clone();
        partial.push(0); // object 1: tombstone flag present…
        assert_eq!(load::<2>(&partial).err(), Some(SnapshotError::Truncated));
        // completing the object (empty region) makes the payload load,
        // confirming the cut above was precisely the missing piece
        let mut whole = partial.clone();
        whole.extend_from_slice(&0u32.to_le_bytes());
        let db: SpatialDatabase<2> = load(&whole).unwrap();
        let coll = db.collection_id("boxes").unwrap();
        assert_eq!(db.collection_len(coll), 2);
        assert_eq!(db.live_len(coll), 1, "object 1 is a tombstone");
    }

    #[test]
    fn huge_fragment_count_is_rejected_without_allocating() {
        // A corrupt object declaring u32::MAX fragments must error out
        // of the length check, not attempt a ~137 GB reservation.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(b"SCQS");
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        for c in [0.0f64, 0.0, 100.0, 100.0] {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(b'x');
        buf.extend_from_slice(&1u32.to_le_bytes()); // one object
        buf.push(1); // live
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd n_frag
        assert_eq!(load::<2>(&buf).err(), Some(SnapshotError::Truncated));
    }

    #[test]
    fn empty_database_round_trips() {
        let db: SpatialDatabase<1> = SpatialDatabase::new(AaBox::new([0.0], [1.0]));
        let loaded: SpatialDatabase<1> = load(&save(&db)).unwrap();
        assert_eq!(loaded.collections().count(), 0);
    }
}
