//! The executor-facing store abstraction.
//!
//! Every executor ([`crate::exec`], [`crate::parallel`]) runs against a
//! [`StoreView`]: the minimal read surface of an object store —
//! collections of regions with materialized bounding boxes, per-slot
//! liveness and corner-query retrieval. [`crate::SpatialDatabase`] is
//! the single-store implementation; a sharded database implements the
//! same trait by fanning corner queries out across shards and mapping
//! shard-local ids back to a global slot space, so one executor code
//! path serves both (and the two can be property-tested against each
//! other). The shards themselves may live in **other processes**: the
//! sharded store's backends can answer corner queries over a socket
//! while serving `region`/`bbox`/liveness from a client-side mirror,
//! and the executors cannot tell — which is why `region` returning a
//! borrow is a hard requirement of this trait, not a convenience: it
//! forces every implementation, however remote, to keep the hot read
//! path memory-speed.
//!
//! The trait is deliberately read-only: executors never mutate the
//! store, which is what lets the parallel executor share one view
//! across workers (`&V` where `V: Sync`).

use scq_bbox::{Bbox, CornerQuery};
use scq_region::{AaBox, Region, RegionAlgebra};

use crate::database::{CollectionId, ObjectRef};
use crate::query::IndexKind;

/// What one corner-query probe did across a partitioned store.
///
/// Single-store implementations return [`ProbeReport::default`]; a
/// sharded store reports how many shards the router pruned, how many
/// transport retries its backends performed, and which shards were
/// **unavailable** — probed but unreachable, their candidates missing
/// from `out`. An unavailable shard does not abort the query: the
/// executors keep searching over the candidates that did arrive and
/// surface the degradation as a partial
/// [`QueryOutcome`](crate::QueryOutcome), so callers can distinguish
/// "no matches" from "shard 3 was down".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProbeReport {
    /// Shards the router proved disjoint from the query and never
    /// probed.
    pub shards_pruned: usize,
    /// Transport-level retries the backends performed while answering
    /// (reconnect-and-retry on idempotent requests).
    pub retries: usize,
    /// Replica failovers the backends performed while answering: a
    /// shard's primary (or an earlier replica) was unreachable or
    /// breaker-skipped and a later replica served instead.
    pub failovers: usize,
    /// Shards that were probed but could not answer (every replica
    /// dead or skipped, connection refused after retry). Their
    /// candidates are missing from the output. Empty for a fully
    /// answered probe.
    pub missing_shards: Vec<usize>,
    /// Shards whose answer came from a **non-primary** replica. The
    /// answer is complete under write-through convergence, but it was
    /// served by a stand-in — surfaced so operators can tell "healthy"
    /// from "healthy because the replica caught it".
    pub stale_shards: Vec<usize>,
    /// Wall-clock microseconds the router spent deciding which shards
    /// to probe (interval-vs-shard-extent pruning). Always 0 for
    /// single-store implementations, and excluded from the report's
    /// `Eq` semantics — see [`ProbeReport::without_timings`].
    pub route_us: u64,
}

impl ProbeReport {
    /// A report with `n` pruned shards and nothing else to tell — the
    /// common single-store / fully-answered case.
    pub fn pruned(n: usize) -> ProbeReport {
        ProbeReport {
            shards_pruned: n,
            ..ProbeReport::default()
        }
    }

    /// Whether every probed shard answered.
    pub fn is_complete(&self) -> bool {
        self.missing_shards.is_empty()
    }

    /// This report with the wall-clock timing zeroed, for equality
    /// comparisons between runs (timings are measurements, not
    /// counts).
    pub fn without_timings(mut self) -> ProbeReport {
        self.route_us = 0;
        self
    }
}

/// Read access to an object store, as consumed by the executors.
///
/// Object identity is `(collection, slot index)` — [`ObjectRef`] — in a
/// *view-global* slot space: implementations over partitioned storage
/// must translate to and from their internal addressing. Slot indices
/// returned by [`StoreView::query_collection`] and
/// [`StoreView::live_indices_into`] index that global space.
pub trait StoreView<const K: usize> {
    /// The universe box all regions live in.
    fn universe(&self) -> &AaBox<K>;

    /// The Boolean algebra of this store's regions.
    fn algebra(&self) -> RegionAlgebra<K> {
        RegionAlgebra::new(*self.universe())
    }

    /// Number of slots in a collection, tombstones included. Slot
    /// indices range over `0..collection_len`.
    fn collection_len(&self, coll: CollectionId) -> usize;

    /// Number of live (non-tombstoned) objects in a collection.
    fn live_len(&self, coll: CollectionId) -> usize;

    /// The collection's **mutation epoch**: a counter bumped on every
    /// effective mutation (insert, effective remove/update, compact).
    /// Two reads of the same collection observing the same epoch are
    /// guaranteed to see identical contents, which is what lets caches
    /// at every layer — the executors' sibling corner-query cache, the
    /// serve tier's cross-query candidate cache — validate entries
    /// without re-reading the data. Partitioned stores keep one logical
    /// epoch per collection (not per shard), bumped on the routing
    /// tier so remote mirrors stay in lockstep.
    fn epoch(&self, coll: CollectionId) -> u64;

    /// Whether the object's slot is live (not tombstoned).
    fn is_live(&self, obj: ObjectRef) -> bool;

    /// The region of an object.
    fn region(&self, obj: ObjectRef) -> &Region<K>;

    /// The object's bounding box, materialized at insert time.
    fn bbox(&self, obj: ObjectRef) -> Bbox<K>;

    /// Runs a corner query against the chosen index of a collection,
    /// appending matching (global) object indices to `out`. Returns a
    /// [`ProbeReport`]: shards pruned, transport retries, and any
    /// shards that were probed but unavailable (their candidates are
    /// missing — a **degraded** read, not an error: the executors keep
    /// going and mark the result partial).
    fn query_collection(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<K>,
        out: &mut Vec<u64>,
    ) -> ProbeReport;

    /// *Live* object indices in a collection whose regions are empty
    /// (corner queries cannot return them; executors re-add them as
    /// candidates to stay exact).
    fn empty_objects(&self, coll: CollectionId) -> &[usize];

    /// Appends the live (global) slot indices of a collection to `out`,
    /// in ascending order.
    fn live_indices_into(&self, coll: CollectionId, out: &mut Vec<usize>);
}
