//! Retrieval-order planning.
//!
//! The paper picks the retrieval order "arbitrarily" and leaves order
//! selection open. The engine offers three policies:
//!
//! * *given* — the caller's order ([`crate::Query::with_order`]);
//! * *by size* — ascending collection cardinality (the default in
//!   [`crate::Query::retrieval_order`]);
//! * *by selectivity* ([`order_by_selectivity`]) — probe each unknown's
//!   compiled range query against its collection index as if it were
//!   retrieved first, and order by ascending candidate count. This uses
//!   only information available at compile time (the known variables'
//!   bounding boxes) plus **at most one index probe per unknown**.
//!
//! The planner is generic over [`StoreView`], so the same cost model
//! serves the unsharded database, the sharded router, and remote
//! clusters — whatever the executors can run against, the planner can
//! plan against. Estimates are **execution-parity** numbers: for each
//! unknown, the estimate equals exactly what `gather_candidates` would
//! enumerate if that unknown were retrieved first (clamped known boxes,
//! empty-region objects included, zero for unsatisfiable plans).

use scq_bbox::Bbox;
use scq_boolean::Var;
use scq_core::plan::BboxPlan;
use scq_core::triangularize;

use crate::exec::ExecError;
use crate::query::{IndexKind, Query};
use crate::stats::ExecStats;
use crate::view::StoreView;

/// Estimated candidate counts per unknown variable, as computed by
/// [`order_by_selectivity`].
#[derive(Clone, Debug)]
pub struct SelectivityEstimate {
    /// The unknown variable.
    pub var: Var,
    /// Candidates the executors would enumerate if this unknown were
    /// retrieved first: range-query matches plus the collection's
    /// empty-region objects (or zero when the plan is unsatisfiable).
    pub candidates: usize,
}

/// The planner's full answer: the chosen order, the per-unknown
/// estimates behind it (in [`Query::unknown_vars`] order), and what the
/// planning itself cost.
#[derive(Clone, Debug)]
pub struct SelectivityPlan {
    /// Unknowns ordered by ascending estimated candidates (ties broken
    /// by variable index, so plans are deterministic).
    pub order: Vec<Var>,
    /// The estimates the order was derived from.
    pub estimates: Vec<SelectivityEstimate>,
    /// The planner's own cost, in executor terms: each index probe is
    /// recorded as a `corner_cache_misses` (a probe no cache served) —
    /// at most one per unknown — with `index_candidates`, shard
    /// accounting and timings filled in like any execution.
    pub stats: ExecStats,
}

/// Orders the unknown variables by ascending first-position range-query
/// candidate count. Returns the estimates alongside the order so callers
/// (tests, `EXPLAIN`) can inspect the planner's reasoning.
pub fn order_by_selectivity<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
    kind: IndexKind,
) -> Result<SelectivityPlan, ExecError> {
    query.validate().map_err(ExecError::InvalidQuery)?;
    let alg = db.algebra();
    let knowns = query.known_vars();
    let unknowns = query.unknown_vars();
    // Shared work, hoisted out of the per-unknown loop: one
    // normalization, one known-box table, one reusable id buffer.
    let normal = query.system.normalize();

    let max_var = query
        .system
        .vars()
        .iter()
        .map(|v| v.index())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    // Known boxes are clamped to the universe exactly like `prepare`
    // clamps known regions before binding, so the planner's corner
    // queries are the ones the execution would issue.
    let mut known_boxes: Vec<Bbox<K>> = vec![Bbox::Empty; max_var];
    for (v, r) in &knowns {
        known_boxes[v.index()] = alg.clamp(r).bbox();
    }

    let base_order: Vec<Var> = knowns.iter().map(|&(kv, _)| kv).collect();
    let mut order_buf: Vec<Var> = Vec::with_capacity(base_order.len() + unknowns.len());
    let mut ids: Vec<u64> = Vec::new();
    let mut stats = ExecStats::default();
    let mut missing: Vec<usize> = Vec::new();
    let mut estimates = Vec::with_capacity(unknowns.len());
    for &(v, coll) in &unknowns {
        // Hypothetical order: knowns, then v, then the rest.
        order_buf.clear();
        order_buf.extend_from_slice(&base_order);
        order_buf.push(v);
        order_buf.extend(unknowns.iter().map(|&(u, _)| u).filter(|&u| u != v));
        let tri = triangularize(&normal, &order_buf);
        let plan: BboxPlan<K> = BboxPlan::compile(&tri);
        let candidates = if plan.satisfiable {
            let row = plan.row_for(v).expect("row per variable");
            let q = row.corner_query(|i| known_boxes.get(i).copied().unwrap_or(Bbox::Empty));
            ids.clear();
            if !q.is_unsatisfiable() {
                stats.corner_cache_misses += 1;
                let probe_start = std::time::Instant::now();
                let report = db.query_collection(coll, kind, &q, &mut ids);
                stats.probe_us = stats
                    .probe_us
                    .saturating_add(crate::stats::elapsed_us(probe_start));
                crate::exec::note_probe(report, &mut stats, &mut missing);
            }
            // Empty-region objects are enumerated by the executors
            // whether or not the probe runs (no corner query can return
            // them), so they count here too — including for an
            // unsatisfiable first-position query, which executes as
            // "no probe, empties only".
            ids.len() + db.empty_objects(coll).len()
        } else {
            // The executors return before a single gather when the
            // whole plan is unsatisfiable: nothing gets enumerated.
            0
        };
        stats.index_candidates += candidates;
        estimates.push(SelectivityEstimate { var: v, candidates });
    }

    // Sort an index vector, not a clone of the estimates.
    let mut by_cost: Vec<usize> = (0..estimates.len()).collect();
    by_cost.sort_by_key(|&i| (estimates[i].candidates, estimates[i].var));
    let order = by_cost.into_iter().map(|i| estimates[i].var).collect();
    Ok(SelectivityPlan {
        order,
        estimates,
        stats,
    })
}

/// Applies [`order_by_selectivity`] to the query, returning a copy with
/// the computed order installed.
pub fn with_selectivity_order<const K: usize, V: StoreView<K>>(
    db: &V,
    query: &Query<K>,
    kind: IndexKind,
) -> Result<Query<K>, ExecError> {
    let plan = order_by_selectivity(db, query, kind)?;
    let mut q = query.clone();
    q.order = Some(plan.order);
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SpatialDatabase;
    use crate::exec::{bbox_execute, naive_execute};
    use scq_core::parse_system;
    use scq_region::{AaBox, Region};

    /// A database where collection size is misleading: the large
    /// collection is far more selective for the query.
    fn tricky_db() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let big = db.collection("big");
        let small = db.collection("small");
        // 60 objects, but only 2 intersect the known key region.
        for i in 0..60 {
            let x = (i % 10) as f64 * 9.0;
            let y = (i / 10) as f64 * 12.0 + 40.0; // mostly far from K
            db.insert(
                big,
                Region::from_box(AaBox::new([x, y], [x + 3.0, y + 3.0])),
            );
        }
        db.insert(big, Region::from_box(AaBox::new([2.0, 2.0], [6.0, 6.0])));
        db.insert(big, Region::from_box(AaBox::new([8.0, 3.0], [12.0, 7.0])));
        // 10 objects, all overlapping the key region: unselective.
        for i in 0..10 {
            let x = i as f64 * 1.5;
            db.insert(
                small,
                Region::from_box(AaBox::new([x, 0.0], [x + 5.0, 20.0])),
            );
        }
        let sys = parse_system("X & K != 0; Y & K != 0; X & Y != 0").unwrap();
        let q = Query::new(sys)
            .known("K", Region::from_box(AaBox::new([0.0, 0.0], [15.0, 15.0])))
            .from_collection("X", big)
            .from_collection("Y", small);
        (db, q)
    }

    #[test]
    fn selectivity_beats_size_ordering() {
        let (db, q) = tricky_db();
        let plan = order_by_selectivity(&db, &q, IndexKind::RTree).unwrap();
        let x = q.system.table.get("X").unwrap();
        let y = q.system.table.get("Y").unwrap();
        // X (big but selective) must come first.
        assert_eq!(plan.order, vec![x, y]);
        let ex = plan
            .estimates
            .iter()
            .find(|e| e.var == x)
            .unwrap()
            .candidates;
        let ey = plan
            .estimates
            .iter()
            .find(|e| e.var == y)
            .unwrap()
            .candidates;
        assert!(ex < ey, "estimates: X={ex} Y={ey}");

        // and it actually reduces work relative to the size-based default
        let q_sel = with_selectivity_order(&db, &q, IndexKind::RTree).unwrap();
        let default = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        let planned = bbox_execute(&db, &q_sel, IndexKind::RTree).unwrap();
        assert_eq!(default.stats.solutions, planned.stats.solutions);
        assert!(
            planned.stats.exact_row_checks <= default.stats.exact_row_checks,
            "planned {} vs default {}",
            planned.stats.exact_row_checks,
            default.stats.exact_row_checks
        );
        // answers agree with naive
        let naive = naive_execute(&db, &q).unwrap();
        assert_eq!(naive.stats.solutions, planned.stats.solutions);
    }

    #[test]
    fn planner_issues_at_most_one_probe_per_unknown() {
        let (db, q) = tricky_db();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let plan = order_by_selectivity(&db, &q, kind).unwrap();
            let n = q.unknown_vars().len();
            assert!(
                plan.stats.corner_cache_misses <= n,
                "{kind:?}: {} probes for {} unknowns",
                plan.stats.corner_cache_misses,
                n
            );
            assert_eq!(plan.stats.corner_cache_hits, 0, "the planner has no cache");
        }
    }

    #[test]
    fn unsat_plans_estimate_zero() {
        let (db, mut q) = tricky_db();
        // contradictory extra constraint
        let sys = parse_system("X & K != 0; X <= K; X !<= K").unwrap();
        q.system = sys;
        let mut q2 = Query::new(q.system.clone())
            .known("K", Region::from_box(AaBox::new([0.0, 0.0], [15.0, 15.0])));
        let big = db.collection_id("big").unwrap();
        q2 = q2.from_collection("X", big);
        let plan = order_by_selectivity(&db, &q2, IndexKind::Scan).unwrap();
        assert_eq!(plan.order.len(), 1);
        assert_eq!(plan.estimates[0].candidates, 0);
        assert_eq!(
            plan.stats.corner_cache_misses, 0,
            "an unsatisfiable plan costs no probe"
        );
    }

    /// The estimate for an unknown equals exactly what executing it in
    /// first position enumerates — empty-region objects, unsatisfiable
    /// corner queries, and out-of-universe knowns (clamping) included.
    #[test]
    fn estimates_match_execution_enumeration() {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let xs = db.collection("xs");
        db.insert(xs, Region::empty()); // only an empty object can satisfy X <= 0-area K
        db.insert(xs, Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0])));
        db.insert(xs, Region::from_box(AaBox::new([8.0, 8.0], [9.0, 9.0])));

        // Known region extends OUTSIDE the universe: the execution
        // clamps it before deriving boxes, so the planner must too.
        let clamped_sys = parse_system("X <= A").unwrap();
        let q = Query::new(clamped_sys)
            .known("A", Region::from_box(AaBox::new([0.0, 0.0], [3.0, 30.0])))
            .from_collection("X", xs);
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let plan = order_by_selectivity(&db, &q, kind).unwrap();
            let run = bbox_execute(&db, &q, kind).unwrap();
            assert_eq!(
                plan.estimates[0].candidates, run.stats.index_candidates,
                "{kind:?}: single-unknown estimate must equal enumerated candidates"
            );
        }

        // Unsatisfiable first-position corner query (contained in an
        // empty known): execution enumerates the empty objects only.
        let empty_sys = parse_system("X <= A").unwrap();
        let q_empty = Query::new(empty_sys)
            .known("A", Region::empty())
            .from_collection("X", xs);
        let plan = order_by_selectivity(&db, &q_empty, IndexKind::RTree).unwrap();
        let run = bbox_execute(&db, &q_empty, IndexKind::RTree).unwrap();
        assert_eq!(plan.estimates[0].candidates, run.stats.index_candidates);
        assert_eq!(
            plan.estimates[0].candidates,
            db.empty_objects(xs).len(),
            "unsatisfiable query enumerates exactly the empty objects"
        );
        assert_eq!(run.stats.solutions, 1, "the empty region satisfies X <= 0");
    }
}
