//! Retrieval-order planning.
//!
//! The paper picks the retrieval order "arbitrarily" and leaves order
//! selection open. The engine offers three policies:
//!
//! * *given* — the caller's order ([`crate::Query::with_order`]);
//! * *by size* — ascending collection cardinality (the default in
//!   [`crate::Query::retrieval_order`]);
//! * *by selectivity* ([`order_by_selectivity`]) — probe each unknown's
//!   compiled range query against its collection index as if it were
//!   retrieved first, and order by ascending candidate count. This uses
//!   only information available at compile time (the known variables'
//!   bounding boxes) plus one index probe per unknown.

use scq_bbox::Bbox;
use scq_boolean::Var;
use scq_core::plan::BboxPlan;
use scq_core::triangularize;

use crate::database::SpatialDatabase;
use crate::exec::ExecError;
use crate::query::{IndexKind, Query};

/// Estimated candidate counts per unknown variable, as computed by
/// [`order_by_selectivity`].
#[derive(Clone, Debug)]
pub struct SelectivityEstimate {
    /// The unknown variable.
    pub var: Var,
    /// Candidates surviving its first-position range query.
    pub candidates: usize,
}

/// Orders the unknown variables by ascending first-position range-query
/// candidate count. Returns the estimates alongside the order so callers
/// can inspect the planner's reasoning.
pub fn order_by_selectivity<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
    kind: IndexKind,
) -> Result<(Vec<Var>, Vec<SelectivityEstimate>), ExecError> {
    query.validate().map_err(ExecError::InvalidQuery)?;
    let knowns = query.known_vars();
    let unknowns = query.unknown_vars();
    let normal = query.system.normalize();

    let max_var = query
        .system
        .vars()
        .iter()
        .map(|v| v.index())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let mut known_boxes: Vec<Bbox<K>> = vec![Bbox::Empty; max_var];
    for (v, r) in &knowns {
        known_boxes[v.index()] = r.bbox();
    }

    let mut estimates = Vec::with_capacity(unknowns.len());
    for &(v, coll) in &unknowns {
        // Hypothetical order: knowns, then v, then the rest.
        let mut order: Vec<Var> = knowns.iter().map(|&(kv, _)| kv).collect();
        order.push(v);
        order.extend(unknowns.iter().map(|&(u, _)| u).filter(|&u| u != v));
        let tri = triangularize(&normal, &order);
        let plan: BboxPlan<K> = BboxPlan::compile(&tri);
        let candidates = if plan.satisfiable {
            let row = plan.row_for(v).expect("row per variable");
            let q = row.corner_query(|i| known_boxes.get(i).copied().unwrap_or(Bbox::Empty));
            let mut ids = Vec::new();
            if !q.is_unsatisfiable() {
                db.query_collection(coll, kind, &q, &mut ids);
            }
            ids.len() + db.empty_objects(coll).len()
        } else {
            0
        };
        estimates.push(SelectivityEstimate { var: v, candidates });
    }

    let mut order: Vec<SelectivityEstimate> = estimates.clone();
    order.sort_by_key(|e| (e.candidates, e.var));
    Ok((order.into_iter().map(|e| e.var).collect(), estimates))
}

/// Applies [`order_by_selectivity`] to the query, returning a copy with
/// the computed order installed.
pub fn with_selectivity_order<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
    kind: IndexKind,
) -> Result<Query<K>, ExecError> {
    let (order, _) = order_by_selectivity(db, query, kind)?;
    let mut q = query.clone();
    q.order = Some(order);
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{bbox_execute, naive_execute};
    use scq_core::parse_system;
    use scq_region::{AaBox, Region};

    /// A database where collection size is misleading: the large
    /// collection is far more selective for the query.
    fn tricky_db() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let big = db.collection("big");
        let small = db.collection("small");
        // 60 objects, but only 2 intersect the known key region.
        for i in 0..60 {
            let x = (i % 10) as f64 * 9.0;
            let y = (i / 10) as f64 * 12.0 + 40.0; // mostly far from K
            db.insert(
                big,
                Region::from_box(AaBox::new([x, y], [x + 3.0, y + 3.0])),
            );
        }
        db.insert(big, Region::from_box(AaBox::new([2.0, 2.0], [6.0, 6.0])));
        db.insert(big, Region::from_box(AaBox::new([8.0, 3.0], [12.0, 7.0])));
        // 10 objects, all overlapping the key region: unselective.
        for i in 0..10 {
            let x = i as f64 * 1.5;
            db.insert(
                small,
                Region::from_box(AaBox::new([x, 0.0], [x + 5.0, 20.0])),
            );
        }
        let sys = parse_system("X & K != 0; Y & K != 0; X & Y != 0").unwrap();
        let q = Query::new(sys)
            .known("K", Region::from_box(AaBox::new([0.0, 0.0], [15.0, 15.0])))
            .from_collection("X", big)
            .from_collection("Y", small);
        (db, q)
    }

    #[test]
    fn selectivity_beats_size_ordering() {
        let (db, q) = tricky_db();
        let (order, estimates) = order_by_selectivity(&db, &q, IndexKind::RTree).unwrap();
        let x = q.system.table.get("X").unwrap();
        let y = q.system.table.get("Y").unwrap();
        // X (big but selective) must come first.
        assert_eq!(order, vec![x, y]);
        let ex = estimates.iter().find(|e| e.var == x).unwrap().candidates;
        let ey = estimates.iter().find(|e| e.var == y).unwrap().candidates;
        assert!(ex < ey, "estimates: X={ex} Y={ey}");

        // and it actually reduces work relative to the size-based default
        let q_sel = with_selectivity_order(&db, &q, IndexKind::RTree).unwrap();
        let default = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        let planned = bbox_execute(&db, &q_sel, IndexKind::RTree).unwrap();
        assert_eq!(default.stats.solutions, planned.stats.solutions);
        assert!(
            planned.stats.exact_row_checks <= default.stats.exact_row_checks,
            "planned {} vs default {}",
            planned.stats.exact_row_checks,
            default.stats.exact_row_checks
        );
        // answers agree with naive
        let naive = naive_execute(&db, &q).unwrap();
        assert_eq!(naive.stats.solutions, planned.stats.solutions);
    }

    #[test]
    fn unsat_plans_estimate_zero() {
        let (db, mut q) = tricky_db();
        // contradictory extra constraint
        let sys = parse_system("X & K != 0; X <= K; X !<= K").unwrap();
        q.system = sys;
        let mut q2 = Query::new(q.system.clone())
            .known("K", Region::from_box(AaBox::new([0.0, 0.0], [15.0, 15.0])));
        let big = db.collection_id("big").unwrap();
        q2 = q2.from_collection("X", big);
        let (order, estimates) = order_by_selectivity(&db, &q2, IndexKind::Scan).unwrap();
        assert_eq!(order.len(), 1);
        assert_eq!(estimates[0].candidates, 0);
    }
}
