//! Seeded synthetic workload generators.
//!
//! The paper's motivating applications — geographic information systems,
//! VLSI design-rule checking, visual language parsing — published no
//! datasets, so the benchmarks run on synthetic geometry whose knobs
//! (clustering, aspect ratio, density) sweep the statistics that matter
//! for the optimizer. All generators are deterministic under a seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use scq_region::{AaBox, Region};

use crate::database::{CollectionId, SpatialDatabase};

/// A generated GIS-style map: a country with states, border towns and
/// roads — the smuggler scenario at scale.
pub struct MapWorkload {
    /// The country region (`C` in the paper's example).
    pub country: Region<2>,
    /// A destination area deep inside the country (`A`).
    pub area: Region<2>,
    /// Collection of state regions (`B` candidates).
    pub states: CollectionId,
    /// Collection of border towns (`T` candidates).
    pub towns: CollectionId,
    /// Collection of roads (`R` candidates).
    pub roads: CollectionId,
}

/// Parameters for [`map_workload`].
#[derive(Clone, Copy, Debug)]
pub struct MapParams {
    /// Number of vertical state bands.
    pub n_states: usize,
    /// Number of towns along the western border.
    pub n_towns: usize,
    /// Number of roads.
    pub n_roads: usize,
    /// Fraction of roads engineered to be *useful* (start at a town,
    /// reach the destination area, stay inside one state).
    pub useful_road_fraction: f64,
}

impl Default for MapParams {
    fn default() -> Self {
        MapParams {
            n_states: 8,
            n_towns: 40,
            n_roads: 100,
            useful_road_fraction: 0.1,
        }
    }
}

/// Builds a map database in the 1000×1000 universe.
///
/// Layout: the country is `[100, 900]²`, split into `n_states` horizontal
/// bands. Towns sit on the western border strip. Useful roads run
/// east from a town towards the destination area, inside one band;
/// decoy roads are random elongated strips.
pub fn map_workload(db: &mut SpatialDatabase<2>, seed: u64, params: &MapParams) -> MapWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let country_box = AaBox::new([100.0, 100.0], [900.0, 900.0]);
    let country = Region::from_box(country_box);

    let states = db.collection("states");
    let towns = db.collection("towns");
    let roads = db.collection("roads");

    // Horizontal bands partition the country exactly.
    let n = params.n_states.max(1);
    let band_h = 800.0 / n as f64;
    let mut band_ranges = Vec::with_capacity(n);
    for i in 0..n {
        let y0 = 100.0 + i as f64 * band_h;
        let y1 = if i + 1 == n { 900.0 } else { y0 + band_h };
        band_ranges.push((y0, y1));
        db.insert(
            states,
            Region::from_box(AaBox::new([100.0, y0], [900.0, y1])),
        );
    }

    // Destination area: a box well inside the country, in some band.
    let area_band = rng.random_range(0..n);
    let (ay0, ay1) = band_ranges[area_band];
    let ay = (ay0 + 5.0).min(ay1 - 25.0).max(ay0);
    let area_box = AaBox::new([600.0, ay], [680.0, (ay + 20.0).min(ay1)]);
    let area = Region::from_box(area_box);

    // Towns on the western border strip x ∈ [100, 120].
    let mut town_ys = Vec::with_capacity(params.n_towns);
    for _ in 0..params.n_towns {
        let y = rng.random_range(110.0..880.0);
        town_ys.push(y);
        db.insert(
            towns,
            Region::from_box(AaBox::new([100.0, y], [118.0, y + 12.0])),
        );
    }

    // Roads.
    for i in 0..params.n_roads {
        let useful = (i as f64) < params.useful_road_fraction * params.n_roads as f64;
        let region = if useful && !town_ys.is_empty() {
            // Useful: from a town in the area's band to the area, as an
            // L-shaped corridor inside that band.
            let (by0, by1) = band_ranges[area_band];
            let ty = rng.random_range(by0.max(110.0)..(by1 - 14.0).max(by0.max(110.0) + 1.0));
            let road_y = ty + 4.0;
            let h = Region::from_box(AaBox::new([110.0, road_y], [660.0, road_y + 6.0]));
            let target_y = 0.5 * (ay + (ay + 20.0).min(ay1));
            let (vy0, vy1) = if road_y < target_y {
                (road_y, target_y + 3.0)
            } else {
                (target_y - 3.0, road_y + 6.0)
            };
            let vseg = Region::from_box(AaBox::new([640.0, vy0.max(by0)], [660.0, vy1.min(by1)]));
            // Also make sure it reaches the town box.
            let town = Region::from_box(AaBox::new([100.0, ty], [118.0, ty + 12.0]));
            db.insert(towns, town);
            h.union(&vseg)
        } else if rng.random_bool(0.5) {
            // Horizontal decoy.
            let y = rng.random_range(105.0..890.0);
            let x0 = rng.random_range(100.0..700.0);
            let len = rng.random_range(80.0..250.0);
            Region::from_box(AaBox::new([x0, y], [(x0 + len).min(900.0), y + 6.0]))
        } else {
            // Vertical decoy (tends to cross state boundaries).
            let x = rng.random_range(105.0..890.0);
            let y0 = rng.random_range(100.0..700.0);
            let len = rng.random_range(80.0..250.0);
            Region::from_box(AaBox::new([x, y0], [x + 6.0, (y0 + len).min(900.0)]))
        };
        db.insert(roads, region);
    }

    MapWorkload {
        country,
        area,
        states,
        towns,
        roads,
    }
}

/// Uniformly random boxes in the universe.
pub fn uniform_boxes(
    rng: &mut StdRng,
    n: usize,
    universe: &AaBox<2>,
    min_size: f64,
    max_size: f64,
) -> Vec<Region<2>> {
    let lo = universe.lo();
    let hi = universe.hi();
    (0..n)
        .map(|_| {
            let w = rng.random_range(min_size..max_size);
            let h = rng.random_range(min_size..max_size);
            let x = rng.random_range(lo[0]..(hi[0] - w).max(lo[0] + 1e-9));
            let y = rng.random_range(lo[1]..(hi[1] - h).max(lo[1] + 1e-9));
            Region::from_box(AaBox::new([x, y], [x + w, y + h]))
        })
        .collect()
}

/// Clustered boxes: `n_clusters` gaussian-ish blobs of `per_cluster`
/// boxes each.
pub fn clustered_boxes(
    rng: &mut StdRng,
    n_clusters: usize,
    per_cluster: usize,
    universe: &AaBox<2>,
    cluster_radius: f64,
    box_size: f64,
) -> Vec<Region<2>> {
    let lo = universe.lo();
    let hi = universe.hi();
    let mut out = Vec::with_capacity(n_clusters * per_cluster);
    for _ in 0..n_clusters {
        let cx = rng.random_range(lo[0] + cluster_radius..hi[0] - cluster_radius);
        let cy = rng.random_range(lo[1] + cluster_radius..hi[1] - cluster_radius);
        for _ in 0..per_cluster {
            let dx = rng.random_range(-cluster_radius..cluster_radius);
            let dy = rng.random_range(-cluster_radius..cluster_radius);
            let s = box_size * rng.random_range(0.5..1.5);
            let x = (cx + dx).clamp(lo[0], hi[0] - s);
            let y = (cy + dy).clamp(lo[1], hi[1] - s);
            out.push(Region::from_box(AaBox::new([x, y], [x + s, y + s])));
        }
    }
    out
}

/// VLSI-style workload: a grid of cells plus horizontal/vertical wires,
/// for design-rule-check-shaped queries (reference \[15\] of the paper).
pub struct VlsiWorkload {
    /// Collection of placed cells.
    pub cells: CollectionId,
    /// Collection of wires.
    pub wires: CollectionId,
    /// The power rail region (a known input in DRC queries).
    pub power_rail: Region<2>,
}

/// Builds a VLSI-like database: `rows × cols` cells with jitter, wires
/// spanning random cell ranges, and one power rail across the top.
pub fn vlsi_workload(
    db: &mut SpatialDatabase<2>,
    seed: u64,
    rows: usize,
    cols: usize,
    n_wires: usize,
) -> VlsiWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = db.collection("cells");
    let wires = db.collection("wires");
    let pitch_x = 900.0 / cols.max(1) as f64;
    let pitch_y = 900.0 / rows.max(1) as f64;
    for r in 0..rows {
        for c in 0..cols {
            let x = 50.0 + c as f64 * pitch_x + rng.random_range(0.0..pitch_x * 0.2);
            let y = 50.0 + r as f64 * pitch_y + rng.random_range(0.0..pitch_y * 0.2);
            db.insert(
                cells,
                Region::from_box(AaBox::new([x, y], [x + pitch_x * 0.6, y + pitch_y * 0.6])),
            );
        }
    }
    for _ in 0..n_wires {
        if rng.random_bool(0.5) {
            let y = rng.random_range(50.0..950.0);
            let x0 = rng.random_range(50.0..800.0);
            let x1 = x0 + rng.random_range(50.0..150.0);
            db.insert(
                wires,
                Region::from_box(AaBox::new([x0, y], [x1.min(950.0), y + 2.0])),
            );
        } else if rng.random_bool(0.12) {
            // Riser: a tall vertical wire running from the cell area up
            // into the power rail (the DRC-relevant population).
            let x = rng.random_range(50.0..950.0);
            let y0 = rng.random_range(700.0..900.0);
            db.insert(
                wires,
                Region::from_box(AaBox::new([x, y0], [x + 2.0, 952.0])),
            );
        } else {
            let x = rng.random_range(50.0..950.0);
            let y0 = rng.random_range(50.0..800.0);
            let y1 = y0 + rng.random_range(50.0..150.0);
            db.insert(
                wires,
                Region::from_box(AaBox::new([x, y0], [x + 2.0, y1.min(950.0)])),
            );
        }
    }
    // The rail sits low enough that the tallest wires reach it.
    let power_rail = Region::from_box(AaBox::new([50.0, 945.0], [950.0, 955.0]));
    VlsiWorkload {
        cells,
        wires,
        power_rail,
    }
}

/// Outcome counts of a [`churn`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Objects inserted.
    pub inserted: usize,
    /// Objects tombstoned.
    pub removed: usize,
    /// Objects whose region was replaced.
    pub updated: usize,
}

/// Applies `ops` seeded random mutations (inserts, removes, updates)
/// across the given collections — the living-dataset counterpart of the
/// static generators above, used by mutation tests and the CI bench
/// smoke. Removes and updates target random slots, so some hit
/// tombstones and count as no-ops; roughly one insert in twelve is an
/// empty region to keep the empty-object path exercised.
pub fn churn(
    db: &mut SpatialDatabase<2>,
    seed: u64,
    colls: &[CollectionId],
    ops: usize,
) -> ChurnStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = ChurnStats::default();
    let universe = *db.universe();
    for _ in 0..ops {
        let coll = colls[rng.random_range(0..colls.len())];
        let slots = db.collection_len(coll);
        let action = rng.random_range(0..100);
        if action < 40 || slots == 0 {
            let region = if rng.random_range(0..12) == 0 {
                Region::empty()
            } else {
                uniform_boxes(&mut rng, 1, &universe, 1.0, 20.0)
                    .pop()
                    .expect("one box")
            };
            db.insert(coll, region);
            stats.inserted += 1;
        } else if action < 75 {
            let obj = crate::ObjectRef {
                collection: coll,
                index: rng.random_range(0..slots),
            };
            if db.remove(obj) {
                stats.removed += 1;
            }
        } else {
            let obj = crate::ObjectRef {
                collection: coll,
                index: rng.random_range(0..slots),
            };
            let region = uniform_boxes(&mut rng, 1, &universe, 1.0, 20.0)
                .pop()
                .expect("one box");
            if db.update(obj, region) {
                stats.updated += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_workload_is_deterministic() {
        let params = MapParams::default();
        let mut db1 = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
        let w1 = map_workload(&mut db1, 7, &params);
        let mut db2 = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
        let w2 = map_workload(&mut db2, 7, &params);
        assert_eq!(db1.collection_len(w1.roads), db2.collection_len(w2.roads));
        for i in db1.object_indices(w1.towns) {
            let a = db1.region(crate::ObjectRef {
                collection: w1.towns,
                index: i,
            });
            let b = db2.region(crate::ObjectRef {
                collection: w2.towns,
                index: i,
            });
            assert!(a.same_set(b));
        }
    }

    #[test]
    fn map_workload_satisfies_geometry() {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
        let w = map_workload(&mut db, 42, &MapParams::default());
        // area inside country
        assert!(w.area.subset_of(&w.country));
        // every state inside country, states pairwise disjoint
        let states: Vec<_> = db
            .object_indices(w.states)
            .map(|i| {
                db.region(crate::ObjectRef {
                    collection: w.states,
                    index: i,
                })
                .clone()
            })
            .collect();
        for (i, s) in states.iter().enumerate() {
            assert!(s.subset_of(&w.country));
            for t in &states[i + 1..] {
                assert!(!s.intersects(t));
            }
        }
        // towns touch the country
        for i in db.object_indices(w.towns) {
            let t = db.region(crate::ObjectRef {
                collection: w.towns,
                index: i,
            });
            assert!(t.intersects(&w.country) || !t.subset_of(&w.country));
        }
    }

    #[test]
    fn generators_respect_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        assert_eq!(uniform_boxes(&mut rng, 25, &u, 1.0, 5.0).len(), 25);
        assert_eq!(clustered_boxes(&mut rng, 4, 10, &u, 8.0, 2.0).len(), 40);
        for r in uniform_boxes(&mut rng, 50, &u, 1.0, 5.0) {
            assert!(r.subset_of(&Region::from_box(u)));
        }
    }

    #[test]
    fn churn_is_deterministic_and_consistent() {
        let build = || {
            let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
            let a = db.collection("a");
            let b = db.collection("b");
            let stats = churn(&mut db, 55, &[a, b], 400);
            (db, stats)
        };
        let (db1, s1) = build();
        let (db2, s2) = build();
        assert_eq!(s1, s2);
        assert!(s1.inserted > 0 && s1.removed > 0 && s1.updated > 0);
        for coll in db1.collections() {
            assert_eq!(db1.collection_len(coll), db2.collection_len(coll));
            assert_eq!(db1.live_len(coll), db2.live_len(coll));
        }
        crate::integrity::check(&db1).expect("churned database is consistent");
    }

    #[test]
    fn vlsi_workload_builds() {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
        let w = vlsi_workload(&mut db, 3, 4, 5, 30);
        assert_eq!(db.collection_len(w.cells), 20);
        assert_eq!(db.collection_len(w.wires), 30);
        assert!(!w.power_rail.is_empty());
    }
}
