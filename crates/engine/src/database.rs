//! The object store: named collections of regions with per-collection
//! spatial indexes.
//!
//! # Mutation model
//!
//! The database is mutable end to end: [`SpatialDatabase::insert`]
//! appends, [`SpatialDatabase::remove`] tombstones, and
//! [`SpatialDatabase::update`] replaces an object's region in place.
//! Every mutation maintains all three spatial indexes *incrementally*
//! (R-tree delete/condense, grid-file bucket split/merge, scan
//! swap-remove) plus the materialized bbox cache — nothing is rebuilt.
//!
//! Removal never shifts slots: an [`ObjectRef`] handed out by `insert`
//! stays valid (and stable) for the lifetime of the database. A removed
//! slot becomes a **tombstone**: it keeps its region for snapshot
//! round-tripping but is invisible to indexes, executors and integrity
//! checks. [`SpatialDatabase::collection_len`] counts all slots
//! (tombstones included); [`SpatialDatabase::live_len`] counts only
//! live objects. Tombstoned slots are never reused.

use std::collections::HashMap;

use scq_bbox::{Bbox, CornerQuery};
use scq_index::{GridFile, RTree, ScanIndex, SpatialIndex, SplitStrategy};
use scq_region::{AaBox, Region, RegionAlgebra};

use crate::query::IndexKind;
use crate::view::StoreView;

/// Identifier of a collection within a database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CollectionId(pub usize);

/// Reference to one object: collection plus position inside it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ObjectRef {
    /// Owning collection.
    pub collection: CollectionId,
    /// Index within the collection.
    pub index: usize,
}

struct Collection<const K: usize> {
    name: String,
    objects: Vec<Region<K>>,
    /// `⌈objects[i]⌉`, materialized at insert time so the executors'
    /// per-candidate bbox reads are one indexed load instead of a
    /// fragment scan.
    bboxes: Vec<Bbox<K>>,
    /// Liveness per slot; `false` marks a tombstone. Slots are never
    /// reused, so `ObjectRef`s stay stable across removals.
    live: Vec<bool>,
    /// Number of `true` entries in `live`.
    live_count: usize,
    rtree: RTree<K>,
    grid: GridFile<K>,
    scan: ScanIndex<K>,
    /// *Live* objects whose region (hence bounding box) is empty;
    /// corner queries cannot return them, so executors re-add them as
    /// candidates to stay exact.
    empty_objects: Vec<usize>,
    /// Mutation epoch: bumped on every effective mutation (insert,
    /// effective remove/update, compact). Caches key on it to validate
    /// entries without re-reading contents.
    epoch: u64,
}

/// A spatial database over `K`-dimensional regions inside a universe
/// box.
///
/// Every collection maintains all three index structures so executors
/// can choose per query ([`IndexKind`]); real deployments would pick
/// one, but the benchmarks compare them head-to-head on identical data.
pub struct SpatialDatabase<const K: usize> {
    universe: AaBox<K>,
    collections: Vec<Collection<K>>,
    by_name: HashMap<String, CollectionId>,
}

impl<const K: usize> SpatialDatabase<K> {
    /// Creates a database with the given universe box.
    ///
    /// # Panics
    /// If the universe is empty.
    pub fn new(universe: AaBox<K>) -> Self {
        assert!(!universe.is_empty(), "universe must be nonempty");
        SpatialDatabase {
            universe,
            collections: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The universe box.
    pub fn universe(&self) -> &AaBox<K> {
        &self.universe
    }

    /// The Boolean algebra of this database's regions.
    pub fn algebra(&self) -> RegionAlgebra<K> {
        RegionAlgebra::new(self.universe)
    }

    /// Creates (or returns) the collection with the given name.
    pub fn collection(&mut self, name: &str) -> CollectionId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = CollectionId(self.collections.len());
        self.collections.push(Collection {
            name: name.to_owned(),
            objects: Vec::new(),
            bboxes: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            rtree: RTree::new(SplitStrategy::Quadratic),
            grid: GridFile::new(32),
            scan: ScanIndex::new(),
            empty_objects: Vec::new(),
            epoch: 0,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a collection by name.
    pub fn collection_id(&self, name: &str) -> Option<CollectionId> {
        self.by_name.get(name).copied()
    }

    /// The collection's name.
    pub fn collection_name(&self, id: CollectionId) -> &str {
        &self.collections[id.0].name
    }

    /// Number of slots in a collection, tombstones included. Slot
    /// indices range over `0..collection_len`.
    pub fn collection_len(&self, id: CollectionId) -> usize {
        self.collections[id.0].objects.len()
    }

    /// Number of live (non-tombstoned) objects in a collection.
    pub fn live_len(&self, id: CollectionId) -> usize {
        self.collections[id.0].live_count
    }

    /// Whether the object's slot is live (not tombstoned).
    pub fn is_live(&self, obj: ObjectRef) -> bool {
        self.collections[obj.collection.0].live[obj.index]
    }

    /// The collection's mutation epoch: bumped on every effective
    /// mutation (insert, effective remove/update, compact). Ineffective
    /// mutations — removing a tombstone, updating a dead slot — leave
    /// it unchanged, so equal epochs mean identical contents.
    pub fn epoch(&self, coll: CollectionId) -> u64 {
        self.collections[coll.0].epoch
    }

    /// All collection ids.
    pub fn collections(&self) -> impl Iterator<Item = CollectionId> {
        (0..self.collections.len()).map(CollectionId)
    }

    /// Inserts an object, indexing its bounding box.
    pub fn insert(&mut self, coll: CollectionId, region: Region<K>) -> ObjectRef {
        let c = &mut self.collections[coll.0];
        let index = c.objects.len();
        let bbox = region.bbox();
        if bbox.is_empty() {
            c.empty_objects.push(index);
        }
        c.rtree.insert(index as u64, bbox);
        c.grid.insert(index as u64, bbox);
        c.scan.insert(index as u64, bbox);
        c.bboxes.push(bbox);
        c.objects.push(region);
        c.live.push(true);
        c.live_count += 1;
        c.epoch += 1;
        ObjectRef {
            collection: coll,
            index,
        }
    }

    /// Tombstones an object: every index forgets it incrementally, its
    /// slot stays allocated (so other `ObjectRef`s keep their meaning),
    /// and executors will never bind it again. Returns `false` when the
    /// object was already removed.
    pub fn remove(&mut self, obj: ObjectRef) -> bool {
        let c = &mut self.collections[obj.collection.0];
        if !c.live[obj.index] {
            return false;
        }
        let bbox = c.bboxes[obj.index];
        let id = obj.index as u64;
        assert!(c.rtree.remove(id, bbox), "rtree out of sync");
        assert!(c.grid.remove(id, bbox), "grid file out of sync");
        assert!(c.scan.remove(id, bbox), "scan index out of sync");
        if bbox.is_empty() {
            c.empty_objects.retain(|&i| i != obj.index);
        }
        c.live[obj.index] = false;
        c.live_count -= 1;
        c.epoch += 1;
        true
    }

    /// Replaces a live object's region in place, maintaining all three
    /// indexes, the bbox cache and the empty-object list incrementally.
    /// The `ObjectRef` keeps designating the object. Returns `false`
    /// (changing nothing) when the object is tombstoned.
    pub fn update(&mut self, obj: ObjectRef, region: Region<K>) -> bool {
        let c = &mut self.collections[obj.collection.0];
        if !c.live[obj.index] {
            return false;
        }
        let old = c.bboxes[obj.index];
        let new = region.bbox();
        let id = obj.index as u64;
        assert!(c.rtree.update(id, old, new), "rtree out of sync");
        assert!(c.grid.update(id, old, new), "grid file out of sync");
        assert!(c.scan.update(id, old, new), "scan index out of sync");
        match (old.is_empty(), new.is_empty()) {
            (false, true) => c.empty_objects.push(obj.index),
            (true, false) => c.empty_objects.retain(|&i| i != obj.index),
            _ => {}
        }
        c.bboxes[obj.index] = new;
        c.objects[obj.index] = region;
        c.epoch += 1;
        true
    }

    /// Appends a slot with explicit liveness — the snapshot loader's
    /// restore path. Dead slots keep their region but never touch the
    /// indexes.
    pub(crate) fn restore_slot(
        &mut self,
        coll: CollectionId,
        region: Region<K>,
        live: bool,
    ) -> ObjectRef {
        if live {
            return self.insert(coll, region);
        }
        let c = &mut self.collections[coll.0];
        let index = c.objects.len();
        c.bboxes.push(region.bbox());
        c.objects.push(region);
        c.live.push(false);
        ObjectRef {
            collection: coll,
            index,
        }
    }

    /// The region of an object.
    pub fn region(&self, obj: ObjectRef) -> &Region<K> {
        &self.collections[obj.collection.0].objects[obj.index]
    }

    /// The bounding box of an object, materialized at insert time.
    pub fn bbox(&self, obj: ObjectRef) -> Bbox<K> {
        self.collections[obj.collection.0].bboxes[obj.index]
    }

    /// Runs a corner query against the chosen index of a collection,
    /// appending matching object indices to `out`.
    pub fn query_collection(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<K>,
        out: &mut Vec<u64>,
    ) {
        let c = &self.collections[coll.0];
        match kind {
            IndexKind::RTree => c.rtree.query_corner(q, out),
            IndexKind::GridFile => c.grid.query_corner(q, out),
            IndexKind::Scan => c.scan.query_corner(q, out),
        }
    }

    /// *Live* object indices in a collection whose regions are empty.
    pub fn empty_objects(&self, coll: CollectionId) -> &[usize] {
        &self.collections[coll.0].empty_objects
    }

    /// Iterates over all slot indices of a collection, tombstones
    /// included (callers that bind objects must filter through
    /// [`SpatialDatabase::is_live`] or use
    /// [`SpatialDatabase::live_indices`]).
    pub fn object_indices(&self, coll: CollectionId) -> std::ops::Range<usize> {
        0..self.collections[coll.0].objects.len()
    }

    /// Iterates over the live object indices of a collection.
    pub fn live_indices(&self, coll: CollectionId) -> impl Iterator<Item = usize> + '_ {
        self.collections[coll.0]
            .live
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| l.then_some(i))
    }

    /// Entry count reported by the chosen index structure (integrity
    /// support; must equal [`SpatialDatabase::live_len`]).
    pub(crate) fn index_len(&self, coll: CollectionId, kind: IndexKind) -> usize {
        let c = &self.collections[coll.0];
        match kind {
            IndexKind::RTree => c.rtree.len(),
            IndexKind::GridFile => c.grid.len(),
            IndexKind::Scan => c.scan.len(),
        }
    }

    /// Panics when the R-tree's structural invariants are violated
    /// (integrity support).
    pub(crate) fn check_rtree_invariants(&self, coll: CollectionId) {
        self.collections[coll.0].rtree.check_invariants();
    }

    /// Reclaims every tombstoned slot: live objects shift down to fill
    /// the gaps and all three indexes are rebuilt over the compacted
    /// slot space. The inverse of the never-reuse policy — meant for
    /// long-lived, churny collections whose tombstone overhead has
    /// grown past the cost of fixing up held [`ObjectRef`]s.
    ///
    /// **Every `ObjectRef` handed out before the call is invalidated.**
    /// The returned [`CompactReport`] maps each old slot to its new
    /// slot (or `None` for dropped tombstones) so callers can fix up
    /// the refs they hold; after compaction `collection_len` equals
    /// `live_len` for every collection.
    pub fn compact(&mut self) -> CompactReport {
        let mut report = CompactReport {
            remap: Vec::with_capacity(self.collections.len()),
            slots_reclaimed: 0,
        };
        for c in &mut self.collections {
            let mut remap: Vec<Option<usize>> = Vec::with_capacity(c.objects.len());
            let objects = std::mem::take(&mut c.objects);
            let bboxes = std::mem::take(&mut c.bboxes);
            let live = std::mem::take(&mut c.live);
            c.rtree = RTree::new(SplitStrategy::Quadratic);
            c.grid = GridFile::new(32);
            c.scan = ScanIndex::new();
            c.empty_objects.clear();
            c.live_count = 0;
            c.epoch += 1;
            for ((region, bbox), alive) in objects.into_iter().zip(bboxes).zip(live) {
                if !alive {
                    remap.push(None);
                    report.slots_reclaimed += 1;
                    continue;
                }
                let index = c.objects.len();
                remap.push(Some(index));
                if bbox.is_empty() {
                    c.empty_objects.push(index);
                }
                c.rtree.insert(index as u64, bbox);
                c.grid.insert(index as u64, bbox);
                c.scan.insert(index as u64, bbox);
                c.bboxes.push(bbox);
                c.objects.push(region);
                c.live.push(true);
                c.live_count += 1;
            }
            report.remap.push(remap);
        }
        report
    }
}

/// The slot remap produced by [`SpatialDatabase::compact`].
#[derive(Clone, Debug)]
pub struct CompactReport {
    /// `remap[coll][old_index]` is the slot's post-compaction index, or
    /// `None` when the slot was a tombstone and got dropped.
    pub remap: Vec<Vec<Option<usize>>>,
    /// Number of tombstoned slots reclaimed across all collections.
    pub slots_reclaimed: usize,
}

impl CompactReport {
    /// Translates a pre-compaction [`ObjectRef`] into its
    /// post-compaction equivalent, or `None` when the object had been
    /// removed before the compaction.
    pub fn fix_up(&self, obj: ObjectRef) -> Option<ObjectRef> {
        self.remap
            .get(obj.collection.0)?
            .get(obj.index)
            .copied()
            .flatten()
            .map(|index| ObjectRef {
                collection: obj.collection,
                index,
            })
    }
}

impl<const K: usize> StoreView<K> for SpatialDatabase<K> {
    fn universe(&self) -> &AaBox<K> {
        SpatialDatabase::universe(self)
    }

    fn collection_len(&self, coll: CollectionId) -> usize {
        SpatialDatabase::collection_len(self, coll)
    }

    fn live_len(&self, coll: CollectionId) -> usize {
        SpatialDatabase::live_len(self, coll)
    }

    fn epoch(&self, coll: CollectionId) -> u64 {
        SpatialDatabase::epoch(self, coll)
    }

    fn is_live(&self, obj: ObjectRef) -> bool {
        SpatialDatabase::is_live(self, obj)
    }

    fn region(&self, obj: ObjectRef) -> &Region<K> {
        SpatialDatabase::region(self, obj)
    }

    fn bbox(&self, obj: ObjectRef) -> Bbox<K> {
        SpatialDatabase::bbox(self, obj)
    }

    fn query_collection(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<K>,
        out: &mut Vec<u64>,
    ) -> crate::view::ProbeReport {
        SpatialDatabase::query_collection(self, coll, kind, q, out);
        // one store, in this process: nothing pruned, nothing missing
        crate::view::ProbeReport::default()
    }

    fn empty_objects(&self, coll: CollectionId) -> &[usize] {
        SpatialDatabase::empty_objects(self, coll)
    }

    fn live_indices_into(&self, coll: CollectionId, out: &mut Vec<usize>) {
        out.extend(self.live_indices(coll));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_bbox::Bbox;

    fn db() -> SpatialDatabase<2> {
        SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]))
    }

    #[test]
    fn collections_are_named_and_idempotent() {
        let mut d = db();
        let a = d.collection("towns");
        let b = d.collection("roads");
        assert_ne!(a, b);
        assert_eq!(d.collection("towns"), a);
        assert_eq!(d.collection_id("roads"), Some(b));
        assert_eq!(d.collection_name(a), "towns");
        assert_eq!(d.collections().count(), 2);
    }

    #[test]
    fn insert_and_query_all_indexes() {
        let mut d = db();
        let c = d.collection("boxes");
        for i in 0..50 {
            let x = i as f64;
            d.insert(c, Region::from_box(AaBox::new([x, 0.0], [x + 0.5, 1.0])));
        }
        let probe = Bbox::new([10.0, 0.0], [20.0, 2.0]);
        let q = CornerQuery::unconstrained().and_contained_in(&probe);
        let mut expected: Option<Vec<u64>> = None;
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut out = Vec::new();
            d.query_collection(c, kind, &q, &mut out);
            out.sort_unstable();
            match &expected {
                None => expected = Some(out),
                Some(e) => assert_eq!(&out, e, "{kind:?} disagrees"),
            }
        }
        assert!(!expected.unwrap().is_empty());
    }

    #[test]
    fn empty_regions_are_tracked() {
        let mut d = db();
        let c = d.collection("mixed");
        d.insert(c, Region::from_box(AaBox::new([0.0, 0.0], [1.0, 1.0])));
        let r = d.insert(c, Region::empty());
        assert_eq!(d.empty_objects(c), &[1]);
        assert!(d.region(r).is_empty());
        assert_eq!(d.collection_len(c), 2);
    }

    #[test]
    fn remove_tombstones_without_shifting() {
        let mut d = db();
        let c = d.collection("boxes");
        let refs: Vec<ObjectRef> = (0..10)
            .map(|i| {
                let x = i as f64 * 5.0;
                d.insert(c, Region::from_box(AaBox::new([x, 0.0], [x + 4.0, 4.0])))
            })
            .collect();
        assert!(d.remove(refs[3]));
        assert!(!d.remove(refs[3]), "double remove is a no-op");
        assert_eq!(d.collection_len(c), 10, "slots never shift");
        assert_eq!(d.live_len(c), 9);
        assert!(!d.is_live(refs[3]));
        assert!(d.is_live(refs[4]), "other refs keep their meaning");
        assert_eq!(d.live_indices(c).count(), 9);
        // no index returns the tombstone
        let q = CornerQuery::unconstrained();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut out = Vec::new();
            d.query_collection(c, kind, &q, &mut out);
            out.sort_unstable();
            assert_eq!(out.len(), 9, "{kind:?}");
            assert!(!out.contains(&3), "{kind:?} returned a tombstone");
        }
    }

    #[test]
    fn update_moves_an_object_in_every_index() {
        let mut d = db();
        let c = d.collection("boxes");
        let obj = d.insert(c, Region::from_box(AaBox::new([0.0, 0.0], [1.0, 1.0])));
        assert!(d.update(
            obj,
            Region::from_box(AaBox::new([50.0, 50.0], [60.0, 60.0]))
        ));
        let probe = Bbox::new([45.0, 45.0], [65.0, 65.0]);
        let q = CornerQuery::unconstrained().and_contained_in(&probe);
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut out = Vec::new();
            d.query_collection(c, kind, &q, &mut out);
            assert_eq!(out, vec![0], "{kind:?} must see the new box");
        }
        assert_eq!(d.bbox(obj), Bbox::new([50.0, 50.0], [60.0, 60.0]));
        // updating to and from empty maintains the empty-object list
        assert!(d.update(obj, Region::empty()));
        assert_eq!(d.empty_objects(c), &[0]);
        assert!(d.update(obj, Region::from_box(AaBox::new([2.0, 2.0], [3.0, 3.0]))));
        assert!(d.empty_objects(c).is_empty());
        // tombstoned objects reject updates
        assert!(d.remove(obj));
        assert!(!d.update(obj, Region::empty()));
    }

    #[test]
    fn removing_empty_region_objects_maintains_the_list() {
        let mut d = db();
        let c = d.collection("mixed");
        d.insert(c, Region::from_box(AaBox::new([0.0, 0.0], [1.0, 1.0])));
        let e1 = d.insert(c, Region::empty());
        let _e2 = d.insert(c, Region::empty());
        assert_eq!(d.empty_objects(c), &[1, 2]);
        assert!(d.remove(e1));
        assert_eq!(d.empty_objects(c), &[2]);
        assert_eq!(d.live_len(c), 2);
    }

    #[test]
    fn compact_reclaims_tombstones_and_remaps() {
        let mut d = db();
        let c = d.collection("boxes");
        let refs: Vec<ObjectRef> = (0..12)
            .map(|i| {
                let x = i as f64 * 8.0;
                d.insert(c, Region::from_box(AaBox::new([x, 0.0], [x + 6.0, 6.0])))
            })
            .collect();
        let empty = d.insert(c, Region::empty());
        for &i in &[1usize, 4, 7, 8] {
            assert!(d.remove(refs[i]));
        }
        let report = d.compact();
        assert_eq!(report.slots_reclaimed, 4);
        assert_eq!(d.collection_len(c), 9, "tombstones reclaimed");
        assert_eq!(d.live_len(c), 9);
        // dropped slots remap to None, survivors to their shifted slot
        assert_eq!(report.fix_up(refs[1]), None);
        let r0 = report.fix_up(refs[0]).expect("slot 0 survives");
        assert_eq!(r0.index, 0);
        let r5 = report.fix_up(refs[5]).expect("slot 5 survives");
        assert_eq!(r5.index, 3, "two earlier tombstones shift it down");
        assert!(d
            .region(r5)
            .same_set(&Region::from_box(AaBox::new([40.0, 0.0], [46.0, 6.0]))));
        // the empty-region object stays tracked under its new slot
        let e = report.fix_up(empty).expect("empty object survives");
        assert_eq!(d.empty_objects(c), &[e.index]);
        // all indexes answer over the compacted id space
        let q = CornerQuery::unconstrained();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut out = Vec::new();
            d.query_collection(c, kind, &q, &mut out);
            out.sort_unstable();
            let expect: Vec<u64> = (0..9).filter(|&i| i != e.index as u64).collect();
            assert_eq!(out, expect, "{kind:?}");
        }
        crate::integrity::check(&d).expect("compacted database is consistent");
        // compacting an already-compact database is a no-op remap
        let again = d.compact();
        assert_eq!(again.slots_reclaimed, 0);
        assert_eq!(again.fix_up(r5), Some(r5));
    }

    #[test]
    fn compact_is_per_collection() {
        let mut d = db();
        let a = d.collection("a");
        let b = d.collection("b");
        let ra = d.insert(a, Region::from_box(AaBox::new([0.0, 0.0], [1.0, 1.0])));
        let rb0 = d.insert(b, Region::from_box(AaBox::new([2.0, 2.0], [3.0, 3.0])));
        let rb1 = d.insert(b, Region::from_box(AaBox::new([4.0, 4.0], [5.0, 5.0])));
        assert!(d.remove(rb0));
        let report = d.compact();
        assert_eq!(
            report.fix_up(ra),
            Some(ra),
            "untouched collection keeps slots"
        );
        assert_eq!(report.fix_up(rb0), None);
        assert_eq!(
            report.fix_up(rb1).map(|o| o.index),
            Some(0),
            "b's survivor shifts to slot 0"
        );
        crate::integrity::check(&d).expect("consistent after compaction");
    }

    #[test]
    fn epoch_tracks_effective_mutations_only() {
        let mut d = db();
        let c = d.collection("boxes");
        assert_eq!(d.epoch(c), 0);
        let a = d.insert(c, Region::from_box(AaBox::new([0.0, 0.0], [1.0, 1.0])));
        assert_eq!(d.epoch(c), 1);
        assert!(d.update(a, Region::from_box(AaBox::new([2.0, 2.0], [3.0, 3.0]))));
        assert_eq!(d.epoch(c), 2);
        assert!(d.remove(a));
        assert_eq!(d.epoch(c), 3);
        // ineffective mutations leave the epoch unchanged
        assert!(!d.remove(a));
        assert!(!d.update(a, Region::empty()));
        assert_eq!(d.epoch(c), 3);
        // compaction rewrites slots, so it always bumps
        d.compact();
        assert_eq!(d.epoch(c), 4);
        // epochs are per collection
        let other = d.collection("other");
        assert_eq!(d.epoch(other), 0);
        d.insert(other, Region::empty());
        assert_eq!(d.epoch(other), 1);
        assert_eq!(d.epoch(c), 4, "a mutation elsewhere leaves c alone");
    }

    #[test]
    fn region_retrieval() {
        let mut d = db();
        let c = d.collection("x");
        let reg = Region::from_box(AaBox::new([5.0, 5.0], [6.0, 6.0]));
        let obj = d.insert(c, reg.clone());
        assert!(d.region(obj).same_set(&reg));
        assert_eq!(d.object_indices(c), 0..1);
    }
}
