//! The object store: named collections of regions with per-collection
//! spatial indexes.

use std::collections::HashMap;

use scq_bbox::{Bbox, CornerQuery};
use scq_index::{GridFile, RTree, ScanIndex, SpatialIndex, SplitStrategy};
use scq_region::{AaBox, Region, RegionAlgebra};

use crate::query::IndexKind;

/// Identifier of a collection within a database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CollectionId(pub usize);

/// Reference to one object: collection plus position inside it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ObjectRef {
    /// Owning collection.
    pub collection: CollectionId,
    /// Index within the collection.
    pub index: usize,
}

struct Collection<const K: usize> {
    name: String,
    objects: Vec<Region<K>>,
    /// `⌈objects[i]⌉`, materialized at insert time so the executors'
    /// per-candidate bbox reads are one indexed load instead of a
    /// fragment scan.
    bboxes: Vec<Bbox<K>>,
    rtree: RTree<K>,
    grid: GridFile<K>,
    scan: ScanIndex<K>,
    /// Objects whose region (hence bounding box) is empty; corner
    /// queries cannot return them, so executors re-add them as
    /// candidates to stay exact.
    empty_objects: Vec<usize>,
}

/// A spatial database over `K`-dimensional regions inside a universe
/// box.
///
/// Every collection maintains all three index structures so executors
/// can choose per query ([`IndexKind`]); real deployments would pick
/// one, but the benchmarks compare them head-to-head on identical data.
pub struct SpatialDatabase<const K: usize> {
    universe: AaBox<K>,
    collections: Vec<Collection<K>>,
    by_name: HashMap<String, CollectionId>,
}

impl<const K: usize> SpatialDatabase<K> {
    /// Creates a database with the given universe box.
    ///
    /// # Panics
    /// If the universe is empty.
    pub fn new(universe: AaBox<K>) -> Self {
        assert!(!universe.is_empty(), "universe must be nonempty");
        SpatialDatabase {
            universe,
            collections: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The universe box.
    pub fn universe(&self) -> &AaBox<K> {
        &self.universe
    }

    /// The Boolean algebra of this database's regions.
    pub fn algebra(&self) -> RegionAlgebra<K> {
        RegionAlgebra::new(self.universe)
    }

    /// Creates (or returns) the collection with the given name.
    pub fn collection(&mut self, name: &str) -> CollectionId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = CollectionId(self.collections.len());
        self.collections.push(Collection {
            name: name.to_owned(),
            objects: Vec::new(),
            bboxes: Vec::new(),
            rtree: RTree::new(SplitStrategy::Quadratic),
            grid: GridFile::new(32),
            scan: ScanIndex::new(),
            empty_objects: Vec::new(),
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a collection by name.
    pub fn collection_id(&self, name: &str) -> Option<CollectionId> {
        self.by_name.get(name).copied()
    }

    /// The collection's name.
    pub fn collection_name(&self, id: CollectionId) -> &str {
        &self.collections[id.0].name
    }

    /// Number of objects in a collection.
    pub fn collection_len(&self, id: CollectionId) -> usize {
        self.collections[id.0].objects.len()
    }

    /// All collection ids.
    pub fn collections(&self) -> impl Iterator<Item = CollectionId> {
        (0..self.collections.len()).map(CollectionId)
    }

    /// Inserts an object, indexing its bounding box.
    pub fn insert(&mut self, coll: CollectionId, region: Region<K>) -> ObjectRef {
        let c = &mut self.collections[coll.0];
        let index = c.objects.len();
        let bbox = region.bbox();
        if bbox.is_empty() {
            c.empty_objects.push(index);
        }
        c.rtree.insert(index as u64, bbox);
        c.grid.insert(index as u64, bbox);
        c.scan.insert(index as u64, bbox);
        c.bboxes.push(bbox);
        c.objects.push(region);
        ObjectRef {
            collection: coll,
            index,
        }
    }

    /// The region of an object.
    pub fn region(&self, obj: ObjectRef) -> &Region<K> {
        &self.collections[obj.collection.0].objects[obj.index]
    }

    /// The bounding box of an object, materialized at insert time.
    pub fn bbox(&self, obj: ObjectRef) -> Bbox<K> {
        self.collections[obj.collection.0].bboxes[obj.index]
    }

    /// Runs a corner query against the chosen index of a collection,
    /// appending matching object indices to `out`.
    pub fn query_collection(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<K>,
        out: &mut Vec<u64>,
    ) {
        let c = &self.collections[coll.0];
        match kind {
            IndexKind::RTree => c.rtree.query_corner(q, out),
            IndexKind::GridFile => c.grid.query_corner(q, out),
            IndexKind::Scan => c.scan.query_corner(q, out),
        }
    }

    /// Object indices in a collection whose regions are empty.
    pub fn empty_objects(&self, coll: CollectionId) -> &[usize] {
        &self.collections[coll.0].empty_objects
    }

    /// Iterates over all object indices of a collection.
    pub fn object_indices(&self, coll: CollectionId) -> std::ops::Range<usize> {
        0..self.collections[coll.0].objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_bbox::Bbox;

    fn db() -> SpatialDatabase<2> {
        SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]))
    }

    #[test]
    fn collections_are_named_and_idempotent() {
        let mut d = db();
        let a = d.collection("towns");
        let b = d.collection("roads");
        assert_ne!(a, b);
        assert_eq!(d.collection("towns"), a);
        assert_eq!(d.collection_id("roads"), Some(b));
        assert_eq!(d.collection_name(a), "towns");
        assert_eq!(d.collections().count(), 2);
    }

    #[test]
    fn insert_and_query_all_indexes() {
        let mut d = db();
        let c = d.collection("boxes");
        for i in 0..50 {
            let x = i as f64;
            d.insert(c, Region::from_box(AaBox::new([x, 0.0], [x + 0.5, 1.0])));
        }
        let probe = Bbox::new([10.0, 0.0], [20.0, 2.0]);
        let q = CornerQuery::unconstrained().and_contained_in(&probe);
        let mut expected: Option<Vec<u64>> = None;
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut out = Vec::new();
            d.query_collection(c, kind, &q, &mut out);
            out.sort_unstable();
            match &expected {
                None => expected = Some(out),
                Some(e) => assert_eq!(&out, e, "{kind:?} disagrees"),
            }
        }
        assert!(!expected.unwrap().is_empty());
    }

    #[test]
    fn empty_regions_are_tracked() {
        let mut d = db();
        let c = d.collection("mixed");
        d.insert(c, Region::from_box(AaBox::new([0.0, 0.0], [1.0, 1.0])));
        let r = d.insert(c, Region::empty());
        assert_eq!(d.empty_objects(c), &[1]);
        assert!(d.region(r).is_empty());
        assert_eq!(d.collection_len(c), 2);
    }

    #[test]
    fn region_retrieval() {
        let mut d = db();
        let c = d.collection("x");
        let reg = Region::from_box(AaBox::new([5.0, 5.0], [6.0, 6.0]));
        let obj = d.insert(c, reg.clone());
        assert!(d.region(obj).same_set(&reg));
        assert_eq!(d.object_indices(c), 0..1);
    }
}
