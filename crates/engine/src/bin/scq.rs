//! `scq` — command-line front end for the constraint-based spatial
//! query optimizer.
//!
//! ```text
//! scq explain  "<system>" <order…>    normalize, triangularize, compile
//! scq solve    "<system>" <order…>    synthesize satisfying regions (2-d)
//! scq smuggler [roads] [seed]         run the paper's §2 demo end to end
//! scq help
//! ```
//!
//! Examples:
//!
//! ```sh
//! scq explain "A <= C; R & A != 0; T < C" C A T R
//! scq solve   "X < Y; X != 0" Y X
//! scq smuggler 120 7
//! ```

use scq_algebra::Assignment;
use scq_core::parser::parse_order;
use scq_core::plan::BboxPlan;
use scq_core::{parse_system, solve, triangularize};
use scq_engine::workload::{map_workload, MapParams};
use scq_engine::{
    bbox_execute, naive_execute, triangular_execute, IndexKind, Query, SpatialDatabase,
};
use scq_region::{AaBox, RegionAlgebra};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("explain") => cmd_explain(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("smuggler") => cmd_smuggler(&args[1..]),
        Some("help") | None => {
            print!("{}", usage());
            0
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n{}", usage());
            2
        }
    };
    std::process::exit(code);
}

fn usage() -> &'static str {
    "scq — constraint-based spatial query optimizer (PODS'91)\n\
     \n\
     usage:\n\
     \x20 scq explain  \"<system>\" <var…>   show normal form, triangular form, plan\n\
     \x20 scq solve    \"<system>\" <var…>   synthesize satisfying regions (2-d)\n\
     \x20 scq smuggler [roads] [seed]      run the paper's smuggler demo\n\
     \x20 scq help\n\
     \n\
     system syntax:  f <= g | f < g | f = g | f != g | f !<= g  over  & | ~ ( ) 0 1\n\
     statements separated by ';'. <var…> is the retrieval order.\n"
}

fn parse_inputs(
    args: &[String],
) -> Result<(scq_core::ConstraintSystem, Vec<scq_boolean::Var>), String> {
    let src = args.first().ok_or("missing constraint system")?;
    let sys = parse_system(src).map_err(|e| e.to_string())?;
    let order_src = args[1..].join(" ");
    let order = if order_src.trim().is_empty() {
        sys.vars()
    } else {
        parse_order(&order_src, &sys.table)?
    };
    Ok((sys, order))
}

fn cmd_explain(args: &[String]) -> i32 {
    let (sys, order) = match parse_inputs(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    println!("── constraints ─────────────────────────");
    println!("{sys}");
    let normal = sys.normalize();
    println!("\n── normal form (Theorem 1) ─────────────");
    print!("{}", normal.display(&sys.table));
    let tri = triangularize(&normal, &order);
    println!("\n── triangular solved form (Algorithm 1) ");
    print!("{}", tri.display(&sys.table));
    let plan: BboxPlan<2> = BboxPlan::compile(&tri);
    println!("\n── range-query plan (Algorithm 2) ──────");
    print!("{}", plan.explain(&sys.table));
    0
}

fn cmd_solve(args: &[String]) -> i32 {
    let (sys, order) = match parse_inputs(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let alg: RegionAlgebra<2> = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
    let tri = triangularize(&sys.normalize(), &order);
    match solve(&tri, &alg, &Assignment::new()) {
        Ok(Some(assignment)) => {
            println!("satisfiable; synthesized regions in [0,100]²:");
            for (v, region) in assignment.iter() {
                println!(
                    "  {:>8} = volume {:>9.2}, {} fragment(s), bbox {}",
                    sys.table.display(v),
                    region.volume(),
                    region.fragment_count(),
                    region.bbox()
                );
            }
            0
        }
        Ok(None) => {
            println!("unsatisfiable");
            1
        }
        Err(e) => {
            eprintln!("internal error: {e}");
            2
        }
    }
}

fn cmd_smuggler(args: &[String]) -> i32 {
    let roads: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(120);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = map_workload(
        &mut db,
        seed,
        &MapParams {
            n_states: 8,
            n_towns: roads / 4,
            n_roads: roads,
            useful_road_fraction: 0.08,
        },
    );
    let sys = parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C")
        .expect("static system parses");
    let q = Query::new(sys)
        .known("C", w.country.clone())
        .known("A", w.area.clone())
        .from_collection("T", w.towns)
        .from_collection("R", w.roads)
        .from_collection("B", w.states)
        .with_order(&["T", "R", "B"]);
    println!(
        "database: {} towns, {} roads, {} states (seed {seed})",
        db.collection_len(w.towns),
        db.collection_len(w.roads),
        db.collection_len(w.states)
    );
    let t0 = std::time::Instant::now();
    let naive = naive_execute(&db, &q).expect("valid query");
    let t_naive = t0.elapsed();
    let t0 = std::time::Instant::now();
    let tri = triangular_execute(&db, &q).expect("valid query");
    let t_tri = t0.elapsed();
    let t0 = std::time::Instant::now();
    let bbox = bbox_execute(&db, &q, IndexKind::RTree).expect("valid query");
    let t_bbox = t0.elapsed();
    println!("naive      : {:>10.3?}  {}", t_naive, naive.stats);
    println!("triangular : {:>10.3?}  {}", t_tri, tri.stats);
    println!("bbox+rtree : {:>10.3?}  {}", t_bbox, bbox.stats);
    assert_eq!(naive.stats.solutions, bbox.stats.solutions);
    println!(
        "{} route(s) found; all executors agree",
        bbox.stats.solutions
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_inputs_resolves_order() {
        let args = vec!["A <= B; B != 0".to_string(), "B".into(), "A".into()];
        let (sys, order) = parse_inputs(&args).unwrap();
        assert_eq!(order.len(), 2);
        assert_eq!(sys.table.display(order[0]), "B");
    }

    #[test]
    fn parse_inputs_defaults_order() {
        let args = vec!["A <= B".to_string()];
        let (_, order) = parse_inputs(&args).unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn parse_inputs_rejects_garbage() {
        assert!(parse_inputs(&[]).is_err());
        assert!(parse_inputs(&["A $ B".to_string()]).is_err());
        assert!(parse_inputs(&["A <= B".to_string(), "Z".into()]).is_err());
    }
}
