//! Parallel query execution.
//!
//! The backtracking search is embarrassingly parallel across the *first*
//! retrieval level: each top-level candidate roots an independent
//! subtree (the database is immutable during execution and every region
//! operation is pure). [`bbox_execute_parallel`] partitions the first
//! level's index candidates across scoped threads and merges solutions
//! and statistics.
//!
//! Semantics match [`crate::bbox_execute`] exactly — same solution set —
//! except that solution *order* follows the partition and, with
//! [`ExecOptions::max_solutions`], the cap is enforced per worker before
//! the final merge truncates, so slightly more work than the sequential
//! cap may be performed.

use std::collections::BTreeMap;

use scq_bbox::Bbox;
use scq_boolean::Var;
use scq_core::plan::BboxPlan;
use scq_core::triangularize;

use crate::database::{ObjectRef, SpatialDatabase};
use crate::exec::{ExecError, ExecOptions, QueryResult, Solution};
use crate::query::{IndexKind, Query};
use crate::stats::ExecStats;

/// Executes the query like [`crate::bbox_execute`], fanning the
/// top-level candidates out over `threads` workers.
///
/// `threads == 0` or `1`, or a query with no unknowns, falls back to the
/// sequential executor.
pub fn bbox_execute_parallel<const K: usize>(
    db: &SpatialDatabase<K>,
    query: &Query<K>,
    kind: IndexKind,
    threads: usize,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    if threads <= 1 {
        return crate::exec::bbox_execute_opts(db, query, kind, options);
    }
    query.validate().map_err(ExecError::InvalidQuery)?;
    let order = query.retrieval_order(db);
    let alg = db.algebra();
    let mut base_assign = scq_algebra::Assignment::new();
    for (v, r) in query.known_vars() {
        base_assign.bind(v, alg.clamp(r));
    }
    let unknown_map: BTreeMap<Var, crate::database::CollectionId> =
        query.unknown_vars().into_iter().collect();
    let unknowns: Vec<(Var, crate::database::CollectionId)> = order
        .iter()
        .filter_map(|v| unknown_map.get(v).map(|&c| (*v, c)))
        .collect();
    if unknowns.is_empty() {
        return crate::exec::bbox_execute_opts(db, query, kind, options);
    }

    let normal = query.system.normalize();
    let tri = triangularize(&normal, &order);
    let plan: BboxPlan<K> = BboxPlan::compile(&tri);
    let mut merged = QueryResult {
        solutions: Vec::new(),
        stats: ExecStats::default(),
    };
    if !plan.satisfiable {
        return Ok(merged);
    }
    // Known-variable rows once, up front.
    let known_vars: std::collections::BTreeSet<Var> =
        query.known_vars().iter().map(|&(v, _)| v).collect();
    for row in &tri.rows {
        if known_vars.contains(&row.var) {
            merged.stats.exact_row_checks += 1;
            if !row.check(&alg, &base_assign)? {
                merged.stats.row_rejections += 1;
                return Ok(merged);
            }
        }
    }

    // First-level candidates.
    let max_var = order
        .iter()
        .map(|v| v.index())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let mut boxes: Vec<Bbox<K>> = vec![Bbox::Empty; max_var];
    for (v, _) in query.known_vars() {
        boxes[v.index()] = base_assign.get(v).expect("bound").bbox();
    }
    let (first_var, first_coll) = unknowns[0];
    let first_row = plan.row_for(first_var).expect("row per variable");
    let mut candidates: Vec<usize> = Vec::new();
    {
        let lookup = |i: usize| boxes.get(i).copied().unwrap_or(Bbox::Empty);
        let q = first_row.corner_query(lookup);
        let mut ids = Vec::new();
        if !q.is_unsatisfiable() {
            db.query_collection(first_coll, kind, &q, &mut ids);
        }
        candidates.extend(ids.into_iter().map(|id| id as usize));
        candidates.extend_from_slice(db.empty_objects(first_coll));
    }
    merged.stats.index_candidates += candidates.len();

    let chunk = candidates.len().div_ceil(threads).max(1);
    let results: Vec<Result<QueryResult, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk_ids in candidates.chunks(chunk) {
            let plan = &plan;
            let base_assign = &base_assign;
            let boxes = &boxes;
            let unknowns = &unknowns;
            let alg = db.algebra();
            handles.push(scope.spawn(move || {
                let mut local = QueryResult {
                    solutions: Vec::new(),
                    stats: ExecStats::default(),
                };
                let mut assign = base_assign.clone();
                let mut my_boxes = boxes.clone();
                let mut tuple: Solution = BTreeMap::new();
                for &index in chunk_ids {
                    if options
                        .max_solutions
                        .is_some_and(|m| local.solutions.len() >= m)
                    {
                        break;
                    }
                    local.stats.partial_tuples += 1;
                    let obj = ObjectRef {
                        collection: unknowns[0].1,
                        index,
                    };
                    assign.bind(unknowns[0].0, db.region(obj).clone());
                    local.stats.exact_row_checks += 1;
                    let row = plan.row_for(unknowns[0].0).expect("row");
                    if row.exact.check(&alg, &assign)? {
                        my_boxes[unknowns[0].0.index()] = db.region(obj).bbox();
                        tuple.insert(unknowns[0].0, obj);
                        subtree(
                            db,
                            &alg,
                            plan,
                            Some(kind),
                            unknowns,
                            1,
                            &mut assign,
                            &mut my_boxes,
                            &mut tuple,
                            &mut local,
                            options,
                        )?;
                        tuple.remove(&unknowns[0].0);
                        my_boxes[unknowns[0].0.index()] = Bbox::Empty;
                    } else {
                        local.stats.row_rejections += 1;
                    }
                    assign.unbind(unknowns[0].0);
                }
                Ok(local)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    for r in results {
        let r = r?;
        merged.stats.merge(&r.stats);
        merged.solutions.extend(r.solutions);
    }
    if let Some(max) = options.max_solutions {
        merged.solutions.truncate(max);
    }
    merged.stats.solutions = merged.solutions.len();
    Ok(merged)
}

/// Sequential exploration below the parallel first level (mirrors the
/// sequential executor's recursion).
#[allow(clippy::too_many_arguments)]
fn subtree<const K: usize>(
    db: &SpatialDatabase<K>,
    alg: &scq_region::RegionAlgebra<K>,
    plan: &BboxPlan<K>,
    kind: Option<IndexKind>,
    unknowns: &[(Var, crate::database::CollectionId)],
    level: usize,
    assign: &mut scq_algebra::Assignment<scq_region::Region<K>>,
    boxes: &mut Vec<Bbox<K>>,
    tuple: &mut Solution,
    local: &mut QueryResult,
    options: ExecOptions,
) -> Result<(), ExecError> {
    if options
        .max_solutions
        .is_some_and(|m| local.solutions.len() >= m)
    {
        return Ok(());
    }
    if level == unknowns.len() {
        local.solutions.push(tuple.clone());
        return Ok(());
    }
    let (var, coll) = unknowns[level];
    let row = plan.row_for(var).expect("row per variable");
    let mut candidates: Vec<usize> = Vec::new();
    match kind {
        Some(k) => {
            let lookup = |i: usize| boxes.get(i).copied().unwrap_or(Bbox::Empty);
            let q = row.corner_query(lookup);
            let mut ids = Vec::new();
            if !q.is_unsatisfiable() {
                db.query_collection(coll, k, &q, &mut ids);
            }
            candidates.extend(ids.into_iter().map(|id| id as usize));
            candidates.extend_from_slice(db.empty_objects(coll));
        }
        None => candidates.extend(db.object_indices(coll)),
    }
    local.stats.index_candidates += candidates.len();
    for index in candidates {
        if options
            .max_solutions
            .is_some_and(|m| local.solutions.len() >= m)
        {
            return Ok(());
        }
        local.stats.partial_tuples += 1;
        let obj = ObjectRef {
            collection: coll,
            index,
        };
        assign.bind(var, db.region(obj).clone());
        local.stats.exact_row_checks += 1;
        if row.exact.check(alg, assign)? {
            boxes[var.index()] = db.region(obj).bbox();
            tuple.insert(var, obj);
            subtree(
                db,
                alg,
                plan,
                kind,
                unknowns,
                level + 1,
                assign,
                boxes,
                tuple,
                local,
                options,
            )?;
            tuple.remove(&var);
            boxes[var.index()] = Bbox::Empty;
        } else {
            local.stats.row_rejections += 1;
        }
        assign.unbind(var);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::bbox_execute;
    use crate::workload::{map_workload, MapParams};
    use scq_core::parse_system;
    use scq_region::{AaBox, Region};

    fn setup() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
        let w = map_workload(
            &mut db,
            13,
            &MapParams {
                n_states: 6,
                n_towns: 20,
                n_roads: 60,
                useful_road_fraction: 0.15,
            },
        );
        let sys =
            parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C").unwrap();
        let q = Query::new(sys)
            .known("C", w.country.clone())
            .known("A", w.area.clone())
            .from_collection("T", w.towns)
            .from_collection("R", w.roads)
            .from_collection("B", w.states)
            .with_order(&["T", "R", "B"]);
        (db, q)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (db, q) = setup();
        let seq = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        for threads in [2, 4, 7] {
            let par = bbox_execute_parallel(&db, &q, IndexKind::RTree, threads, ExecOptions::all())
                .unwrap();
            let mut a = seq.solutions.clone();
            let mut b = par.solutions.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(par.stats.solutions, seq.stats.solutions);
        }
    }

    #[test]
    fn single_thread_falls_back() {
        let (db, q) = setup();
        let seq = bbox_execute(&db, &q, IndexKind::GridFile).unwrap();
        let par =
            bbox_execute_parallel(&db, &q, IndexKind::GridFile, 1, ExecOptions::all()).unwrap();
        assert_eq!(seq.solutions, par.solutions);
    }

    #[test]
    fn parallel_respects_solution_cap() {
        let (db, q) = setup();
        let capped = bbox_execute_parallel(
            &db,
            &q,
            IndexKind::RTree,
            4,
            ExecOptions {
                max_solutions: Some(2),
            },
        )
        .unwrap();
        assert!(capped.solutions.len() <= 2);
        assert!(!capped.solutions.is_empty());
    }

    #[test]
    fn parallel_unsat_inputs() {
        let (db, mut q) = setup();
        let v = q.system.table.get("A").unwrap();
        q.bindings.insert(
            v,
            crate::query::VarBinding::Known(Region::from_box(AaBox::new(
                [990.0, 990.0],
                [999.0, 999.0],
            ))),
        );
        let par = bbox_execute_parallel(&db, &q, IndexKind::RTree, 4, ExecOptions::all()).unwrap();
        assert!(par.solutions.is_empty());
    }
}
