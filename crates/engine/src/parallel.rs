//! Parallel query execution over a shared work queue.
//!
//! The backtracking search parallelizes at *every* level, not just the
//! first: workers pull subtree tasks from a shared queue, and while
//! exploring a subtree they **donate** accepted child subtrees back to
//! the queue whenever it runs low — so a query whose first level has
//! two fat candidates still spreads across all workers, where the old
//! first-level-only partitioning would have used two.
//!
//! A task is a validated prefix of object indices: re-deriving it on
//! the receiving worker is a handful of by-reference binds into a
//! [`FlatAssignment`] (the zero-clone core makes splitting cheap — no
//! region is ever copied between workers). Candidate generation, the
//! bbox prefilter, and the exact row check are the same helpers the
//! sequential executor uses ([`crate::exec`]), so the two executors
//! cannot drift.
//!
//! Semantics match [`crate::bbox_execute`] exactly — same solution set,
//! in nondeterministic order. [`ExecOptions::max_solutions`] is
//! enforced by a **shared atomic counter**: the worker that claims the
//! last slot raises a stop flag that halts every worker at its next
//! candidate, so a capped parallel run does only marginally more work
//! than the sequential capped run (the old per-worker cap did up to
//! `threads ×` the work and truncated after the merge).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use scq_algebra::FlatAssignment;
use scq_bbox::Bbox;
use scq_core::plan::BboxPlan;
use scq_core::triangularize;
use scq_region::{Region, RegionAlgebra};

use crate::database::{CollectionId, ObjectRef};
use crate::exec::{
    bind_knowns, gather_candidates, level_bufs, prepare, try_candidate, ExecError, ExecOptions,
    LevelBuf, QueryOutcome, QueryResult, Solution,
};
use crate::query::{IndexKind, Query};
use crate::stats::ExecStats;
use crate::view::StoreView;

/// A unit of work: a **validated** prefix of the retrieval order plus
/// the still-untried candidates at the next level. The receiving worker
/// rebinds the prefix (no row re-checks, no re-gather) and processes
/// the pending candidates.
struct Task {
    prefix: Vec<usize>,
    pending: Vec<usize>,
}

struct QueueState {
    tasks: VecDeque<Task>,
    /// Workers currently processing a task (for termination detection).
    active: usize,
}

/// Shared coordination state for one parallel execution.
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Approximate queue length, readable without the lock (workers use
    /// it to decide whether to donate subtrees).
    queue_len: AtomicUsize,
    /// Raised when the solution cap is reached or a worker errored.
    stop: AtomicBool,
    /// Solution slots claimed so far (only consulted with a cap).
    claimed: AtomicUsize,
    /// Queue lengths below this trigger donation.
    hunger: usize,
}

impl Shared {
    fn new(threads: usize) -> Self {
        Shared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                active: 0,
            }),
            available: Condvar::new(),
            queue_len: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            claimed: AtomicUsize::new(0),
            hunger: threads,
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn hungry(&self) -> bool {
        self.queue_len.load(Ordering::Relaxed) < self.hunger
    }

    fn push(&self, task: Task) {
        let mut st = self.queue.lock().expect("queue poisoned");
        st.tasks.push_back(task);
        self.queue_len.store(st.tasks.len(), Ordering::Relaxed);
        self.available.notify_one();
    }

    /// Blocks until a task is available, every worker is idle (search
    /// exhausted), or the stop flag is raised.
    fn pop(&self) -> Option<Task> {
        let mut st = self.queue.lock().expect("queue poisoned");
        loop {
            if self.stopped() {
                self.available.notify_all();
                return None;
            }
            if let Some(t) = st.tasks.pop_front() {
                st.active += 1;
                self.queue_len.store(st.tasks.len(), Ordering::Relaxed);
                return Some(t);
            }
            if st.active == 0 {
                self.available.notify_all();
                return None;
            }
            st = self.available.wait(st).expect("queue poisoned");
        }
    }

    /// Marks the current task finished; wakes waiters when the search
    /// is exhausted.
    fn finish(&self) {
        let mut st = self.queue.lock().expect("queue poisoned");
        st.active -= 1;
        if st.active == 0 && st.tasks.is_empty() {
            self.available.notify_all();
        }
    }

    /// Claims a solution slot. Returns whether the solution should be
    /// recorded; raises the stop flag on claiming the last slot.
    fn claim(&self, max: Option<usize>) -> bool {
        let Some(max) = max else { return true };
        let prev = self.claimed.fetch_add(1, Ordering::SeqCst);
        if prev >= max {
            // Already full (also covers max == 0, where no slot ever
            // existed): make sure the stop flag is up and drop it.
            self.halt();
            return false;
        }
        if prev + 1 == max {
            self.halt();
        }
        true
    }

    /// Raises the stop flag and wakes every waiting worker.
    fn halt(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }
}

/// Read-only search environment shared by all workers.
struct Env<'e, const K: usize, V: StoreView<K>> {
    db: &'e V,
    alg: RegionAlgebra<K>,
    plan: &'e BboxPlan<K>,
    kind: IndexKind,
    unknowns: &'e [(scq_boolean::Var, CollectionId)],
    options: ExecOptions,
    shared: &'e Shared,
}

/// Executes the query like [`crate::bbox_execute`], distributing
/// subtrees of the search over `threads` workers through a shared work
/// queue.
///
/// `threads == 0` or `1`, or a query with no unknowns, falls back to the
/// sequential executor.
pub fn bbox_execute_parallel<const K: usize, V: StoreView<K> + Sync>(
    db: &V,
    query: &Query<K>,
    kind: IndexKind,
    threads: usize,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    if threads <= 1 {
        return crate::exec::bbox_execute_opts(db, query, kind, options);
    }
    let started = std::time::Instant::now();
    let prep = prepare(db, query)?;
    if prep.unknowns.is_empty() {
        return crate::exec::bbox_execute_opts(db, query, kind, options);
    }
    let normal = query.system.normalize();
    let tri = triangularize(&normal, &prep.order);
    let plan: BboxPlan<K> = BboxPlan::compile(&tri);
    let alg = db.algebra();
    let mut stats = ExecStats::default();
    let mut missing: Vec<usize> = Vec::new();
    let empty = |stats: ExecStats| QueryResult {
        solutions: Vec::new(),
        stats,
        outcome: QueryOutcome::Complete,
    };
    if !plan.satisfiable || options.max_solutions == Some(0) {
        return Ok(empty(stats));
    }
    // Knowns: bound once here for validation, and cloned (slot vector
    // of references only) by each worker from the same arena.
    let Some((base_assign, base_boxes)) =
        bind_knowns(&alg, &plan, &prep.knowns, prep.max_var, &mut stats)?
    else {
        return Ok(empty(stats));
    };

    // Gather the first level once and seed the queue with it; deeper
    // levels are gathered by whichever worker first opens them.
    let first_row = plan
        .row_for(prep.unknowns[0].0)
        .expect("plan has a row per variable");
    let mut seed_buf = level_bufs(1);
    gather_candidates(
        db,
        prep.unknowns[0].1,
        Some(kind),
        first_row,
        &base_boxes,
        &mut seed_buf[0],
        &mut stats,
        &mut missing,
    );
    stats.index_candidates += seed_buf[0].candidates.len();

    let shared = Shared::new(threads);
    shared.push(Task {
        prefix: Vec::new(),
        pending: std::mem::take(&mut seed_buf[0].candidates),
    });

    // Workers run on fresh threads: re-install the caller's request
    // trace (if any) so shard probes they perform land in the right
    // span tree instead of vanishing.
    let trace = scq_obs::current();
    let results: Vec<Result<QueryResult, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let env = Env {
                db,
                alg: db.algebra(),
                plan: &plan,
                kind,
                unknowns: &prep.unknowns,
                options,
                shared: &shared,
            };
            let base_assign = &base_assign;
            let base_boxes = &base_boxes;
            let trace = trace.clone();
            handles.push(scope.spawn(move || {
                let _trace_guard = trace.as_ref().map(|t| t.install());
                worker(env, base_assign, base_boxes)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut merged = empty(stats);
    merged.outcome = QueryOutcome::from_missing(missing);
    for r in results {
        let r = r?;
        merged.stats.merge(&r.stats);
        merged.solutions.extend(r.solutions);
        merged.outcome.merge(&r.outcome);
    }
    if let Some(max) = options.max_solutions {
        merged.solutions.truncate(max);
    }
    merged.stats.solutions = merged.solutions.len();
    merged.stats.total_us = crate::stats::elapsed_us(started);
    Ok(merged)
}

/// Worker loop: pop a task, rebind its validated prefix, explore the
/// subtree (donating children while the queue is hungry), undo, repeat.
fn worker<'e, const K: usize, V: StoreView<K>>(
    env: Env<'e, K, V>,
    base_assign: &FlatAssignment<'e, Region<K>>,
    base_boxes: &[Bbox<K>],
) -> Result<QueryResult, ExecError> {
    let mut local = QueryResult {
        solutions: Vec::new(),
        stats: ExecStats::default(),
        outcome: QueryOutcome::Complete,
    };
    let mut missing: Vec<usize> = Vec::new();
    let mut assign = base_assign.clone();
    let mut boxes = base_boxes.to_vec();
    let mut tuple: Solution = BTreeMap::new();
    let mut path: Vec<usize> = Vec::new();
    let mut bufs = level_bufs(env.unknowns.len());

    while let Some(task) = env.shared.pop() {
        // Rebind the validated prefix — by-reference binds only, no row
        // re-checks, no stats.
        let level = task.prefix.len();
        for (i, &index) in task.prefix.iter().enumerate() {
            let (var, coll) = env.unknowns[i];
            let obj = ObjectRef {
                collection: coll,
                index,
            };
            assign.bind(var, env.db.region(obj));
            boxes[var.index()] = env.db.bbox(obj);
            tuple.insert(var, obj);
        }
        path.clone_from(&task.prefix);

        // Rebuild the level's corner query from the prefix boxes (no
        // index round-trip — the candidates travel with the task).
        let (var, _) = env.unknowns[level];
        let row = env.plan.row_for(var).expect("plan has a row per variable");
        let lookup = |i: usize| boxes.get(i).copied().unwrap_or(Bbox::Empty);
        let q = row.corner_query(lookup);

        let result = process_level(
            &env,
            level,
            row,
            &q,
            &task.pending,
            &mut assign,
            &mut boxes,
            &mut tuple,
            &mut path,
            &mut bufs[level + 1..],
            &mut local,
            &mut missing,
        );

        // Undo the prefix bindings regardless of outcome.
        for i in 0..level {
            let var = env.unknowns[i].0;
            assign.unbind(var);
            boxes[var.index()] = base_boxes[var.index()];
            tuple.remove(&var);
        }
        path.clear();
        env.shared.finish();

        if let Err(e) = result {
            env.shared.halt();
            return Err(e);
        }
    }
    local.outcome = QueryOutcome::from_missing(missing);
    Ok(local)
}

/// Processes a batch of candidates at one level: the parallel twin of
/// the sequential `opt_rec` loop, plus steal-half donation and shared
/// stop/claim coordination.
///
/// When the queue runs hungry, the worker donates the **second half**
/// of its remaining batch as one task (so splitting is `O(log n)` per
/// level, not one queue round-trip per candidate) and keeps the first
/// half.
#[allow(clippy::too_many_arguments)]
fn process_level<'e, const K: usize, V: StoreView<K>>(
    env: &Env<'e, K, V>,
    level: usize,
    row: &scq_core::plan::CompiledRow<K>,
    q: &scq_bbox::CornerQuery<K>,
    pending: &[usize],
    assign: &mut FlatAssignment<'e, Region<K>>,
    boxes: &mut [Bbox<K>],
    tuple: &mut Solution,
    path: &mut Vec<usize>,
    below: &mut [LevelBuf<K>],
    local: &mut QueryResult,
    missing: &mut Vec<usize>,
) -> Result<(), ExecError> {
    let (var, _) = env.unknowns[level];
    let mut end = pending.len();
    let mut pos = 0;
    while pos < end {
        if env.shared.stopped() {
            return Ok(());
        }
        if end - pos >= 2 && env.shared.hungry() {
            let mid = pos + (end - pos) / 2;
            env.shared.push(Task {
                prefix: path.clone(),
                pending: pending[mid..end].to_vec(),
            });
            end = mid;
            continue;
        }
        let index = pending[pos];
        pos += 1;
        let obj = ObjectRef {
            collection: env.unknowns[level].1,
            index,
        };
        if let Some(bb) =
            try_candidate(env.db, &env.alg, row, q, var, obj, assign, &mut local.stats)?
        {
            boxes[var.index()] = bb;
            tuple.insert(var, obj);
            path.push(index);
            descend(
                env,
                level + 1,
                assign,
                boxes,
                tuple,
                path,
                below,
                local,
                missing,
            )?;
            path.pop();
            tuple.remove(&var);
            boxes[var.index()] = Bbox::Empty;
            assign.unbind(var);
        }
    }
    Ok(())
}

/// Opens one level below a validated prefix: record a solution at the
/// leaves, otherwise gather the level's candidates (into the worker's
/// reusable buffer) and process them.
#[allow(clippy::too_many_arguments)]
fn descend<'e, const K: usize, V: StoreView<K>>(
    env: &Env<'e, K, V>,
    level: usize,
    assign: &mut FlatAssignment<'e, Region<K>>,
    boxes: &mut [Bbox<K>],
    tuple: &mut Solution,
    path: &mut Vec<usize>,
    bufs: &mut [LevelBuf<K>],
    local: &mut QueryResult,
    missing: &mut Vec<usize>,
) -> Result<(), ExecError> {
    if level == env.unknowns.len() {
        if env.shared.claim(env.options.max_solutions) {
            local.solutions.push(tuple.clone());
        }
        return Ok(());
    }
    let (var, coll) = env.unknowns[level];
    let row = env.plan.row_for(var).expect("plan has a row per variable");
    let (buf, rest) = bufs.split_first_mut().expect("buffer per level");
    let q = gather_candidates(
        env.db,
        coll,
        Some(env.kind),
        row,
        boxes,
        buf,
        &mut local.stats,
        missing,
    );
    local.stats.index_candidates += buf.candidates.len();
    // The batch is processed straight out of the reusable buffer
    // (moved around the recursion and restored, so the pool keeps its
    // capacity); a donated second half is copied into its task, the
    // retained first half is not.
    let cands = std::mem::take(&mut buf.candidates);
    let result = process_level(
        env, level, row, &q, &cands, assign, boxes, tuple, path, rest, local, missing,
    );
    buf.candidates = cands;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SpatialDatabase;
    use crate::exec::bbox_execute;
    use crate::workload::{map_workload, MapParams};
    use scq_core::parse_system;
    use scq_region::{AaBox, Region};

    fn setup() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
        let w = map_workload(
            &mut db,
            13,
            &MapParams {
                n_states: 6,
                n_towns: 20,
                n_roads: 60,
                useful_road_fraction: 0.15,
            },
        );
        let sys =
            parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C").unwrap();
        let q = Query::new(sys)
            .known("C", w.country.clone())
            .known("A", w.area.clone())
            .from_collection("T", w.towns)
            .from_collection("R", w.roads)
            .from_collection("B", w.states)
            .with_order(&["T", "R", "B"]);
        (db, q)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (db, q) = setup();
        let seq = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        for threads in [2, 4, 7] {
            let par = bbox_execute_parallel(&db, &q, IndexKind::RTree, threads, ExecOptions::all())
                .unwrap();
            let mut a = seq.solutions.clone();
            let mut b = par.solutions.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(par.stats.solutions, seq.stats.solutions);
        }
    }

    #[test]
    fn uncapped_parallel_does_the_same_work() {
        // Donation moves subtrees between workers but must not duplicate
        // or skip them: the aggregate counters equal the sequential
        // run's exactly.
        let (db, q) = setup();
        let seq = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        for threads in [2, 5] {
            let par = bbox_execute_parallel(&db, &q, IndexKind::RTree, threads, ExecOptions::all())
                .unwrap();
            assert_eq!(par.stats.partial_tuples, seq.stats.partial_tuples);
            assert_eq!(par.stats.index_candidates, seq.stats.index_candidates);
            assert_eq!(par.stats.exact_row_checks, seq.stats.exact_row_checks);
            assert_eq!(par.stats.regions_bound, seq.stats.regions_bound);
        }
    }

    #[test]
    fn single_thread_falls_back() {
        let (db, q) = setup();
        let seq = bbox_execute(&db, &q, IndexKind::GridFile).unwrap();
        let par =
            bbox_execute_parallel(&db, &q, IndexKind::GridFile, 1, ExecOptions::all()).unwrap();
        assert_eq!(seq.solutions, par.solutions);
    }

    #[test]
    fn parallel_respects_solution_cap() {
        let (db, q) = setup();
        let capped = bbox_execute_parallel(
            &db,
            &q,
            IndexKind::RTree,
            4,
            ExecOptions {
                max_solutions: Some(2),
            },
        )
        .unwrap();
        assert!(capped.solutions.len() <= 2);
        assert!(!capped.solutions.is_empty());
    }

    #[test]
    fn capped_parallel_stops_promptly() {
        // The shared atomic counter stops *all* workers once the cap is
        // reached, where the old per-worker cap let every worker run to
        // its own cap and truncated after the merge. Two bounds, both
        // safe under real concurrency (workers race in disjoint
        // subtrees until the stop flag rises, so per-run counts are
        // nondeterministic on multicore hosts):
        // 1. each concurrent worker does at most about the sequential
        //    capped work before somebody fills the cap;
        // 2. the run explores a small fraction of the full search.
        let (db, q) = setup();
        let threads = 4;
        let cap = ExecOptions {
            max_solutions: Some(2),
        };
        let uncapped = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        let seq = crate::exec::bbox_execute_opts(&db, &q, IndexKind::RTree, cap).unwrap();
        let par = bbox_execute_parallel(&db, &q, IndexKind::RTree, threads, cap).unwrap();
        assert_eq!(par.solutions.len(), 2);
        let per_worker_bound = threads * (seq.stats.partial_tuples + 16);
        assert!(
            par.stats.partial_tuples <= per_worker_bound,
            "parallel capped run over-worked: {} vs bound {}",
            par.stats.partial_tuples,
            per_worker_bound
        );
        assert!(
            par.stats.partial_tuples < uncapped.stats.partial_tuples / 2,
            "capped run should explore a fraction of the full search: {} vs {}",
            par.stats.partial_tuples,
            uncapped.stats.partial_tuples
        );
    }

    #[test]
    fn zero_cap_returns_immediately() {
        let (db, q) = setup();
        let par = bbox_execute_parallel(
            &db,
            &q,
            IndexKind::RTree,
            4,
            ExecOptions {
                max_solutions: Some(0),
            },
        )
        .unwrap();
        assert!(par.solutions.is_empty());
        assert_eq!(par.stats.partial_tuples, 0, "no search work at cap 0");
    }

    #[test]
    fn parallel_unsat_inputs() {
        let (db, mut q) = setup();
        let v = q.system.table.get("A").unwrap();
        q.bindings.insert(
            v,
            crate::query::VarBinding::Known(Region::from_box(AaBox::new(
                [990.0, 990.0],
                [999.0, 999.0],
            ))),
        );
        let par = bbox_execute_parallel(&db, &q, IndexKind::RTree, 4, ExecOptions::all()).unwrap();
        assert!(par.solutions.is_empty());
    }
}
