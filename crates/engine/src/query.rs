//! Query definition: a constraint system plus variable bindings and an
//! optional retrieval order.

use std::collections::BTreeMap;

use scq_boolean::Var;
use scq_core::ConstraintSystem;
use scq_region::Region;

use crate::database::CollectionId;
use crate::view::StoreView;

/// Which index structure the bbox executor probes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    /// Guttman R-tree.
    RTree,
    /// Grid file over corner points.
    GridFile,
    /// Linear scan (still applies the corner filter per object).
    Scan,
}

/// How a query variable gets its value.
#[derive(Clone, Debug)]
pub enum VarBinding<const K: usize> {
    /// The value is given with the query (e.g. the country `C` and the
    /// destination area `A` of the paper's smuggler example).
    Known(Region<K>),
    /// The value ranges over a database collection.
    Collection(CollectionId),
}

/// A constraint query against a [`SpatialDatabase`].
#[derive(Clone, Debug)]
pub struct Query<const K: usize> {
    /// The constraints.
    pub system: ConstraintSystem,
    /// Binding for every variable of the system.
    pub bindings: BTreeMap<Var, VarBinding<K>>,
    /// Retrieval order for the *unknown* (collection-bound) variables.
    /// `None` lets the planner choose (ascending collection size).
    pub order: Option<Vec<Var>>,
}

impl<const K: usize> Query<K> {
    /// Creates a query with no bindings yet.
    pub fn new(system: ConstraintSystem) -> Self {
        Query {
            system,
            bindings: BTreeMap::new(),
            order: None,
        }
    }

    /// Binds a variable (by name) to a known region.
    ///
    /// # Panics
    /// If the name is not a variable of the system.
    pub fn known(mut self, name: &str, region: Region<K>) -> Self {
        let v = self.system.table.get(name).expect("unknown variable name");
        self.bindings.insert(v, VarBinding::Known(region));
        self
    }

    /// Binds a variable (by name) to a collection.
    pub fn from_collection(mut self, name: &str, coll: CollectionId) -> Self {
        let v = self.system.table.get(name).expect("unknown variable name");
        self.bindings.insert(v, VarBinding::Collection(coll));
        self
    }

    /// Fixes the retrieval order of the unknown variables (by name).
    pub fn with_order(mut self, names: &[&str]) -> Self {
        let order = names
            .iter()
            .map(|n| self.system.table.get(n).expect("unknown variable name"))
            .collect();
        self.order = Some(order);
        self
    }

    /// The known variables (with their regions) in variable order.
    pub fn known_vars(&self) -> Vec<(Var, &Region<K>)> {
        self.bindings
            .iter()
            .filter_map(|(&v, b)| match b {
                VarBinding::Known(r) => Some((v, r)),
                VarBinding::Collection(_) => None,
            })
            .collect()
    }

    /// The unknown variables with their collections, in variable order.
    pub fn unknown_vars(&self) -> Vec<(Var, CollectionId)> {
        self.bindings
            .iter()
            .filter_map(|(&v, b)| match b {
                VarBinding::Known(_) => None,
                VarBinding::Collection(c) => Some((v, *c)),
            })
            .collect()
    }

    /// The full retrieval order: known variables first (they are "bound"
    /// before any retrieval), then the unknowns in the requested order,
    /// or by ascending collection size if none was given — smaller
    /// collections earlier mean cheaper backtracking levels on top.
    pub fn retrieval_order<V: StoreView<K>>(&self, db: &V) -> Vec<Var> {
        let mut order: Vec<Var> = self.known_vars().iter().map(|&(v, _)| v).collect();
        match &self.order {
            Some(unknowns) => order.extend(unknowns.iter().copied()),
            None => {
                let mut unknowns = self.unknown_vars();
                unknowns.sort_by_key(|&(v, c)| (db.live_len(c), v));
                order.extend(unknowns.into_iter().map(|(v, _)| v));
            }
        }
        order
    }

    /// Checks that every system variable is bound and every ordered
    /// variable is an unknown of the system; returns a description of
    /// the first problem.
    pub fn validate(&self) -> Result<(), String> {
        for v in self.system.vars() {
            if !self.bindings.contains_key(&v) {
                return Err(format!(
                    "variable {} is not bound",
                    self.system.table.display(v)
                ));
            }
        }
        if let Some(order) = &self.order {
            let unknowns: std::collections::BTreeSet<Var> =
                self.unknown_vars().iter().map(|&(v, _)| v).collect();
            for v in order {
                if !unknowns.contains(v) {
                    return Err(format!(
                        "ordered variable {} is not an unknown of the query",
                        self.system.table.display(*v)
                    ));
                }
            }
            if order.len() != unknowns.len() {
                return Err("retrieval order must list every unknown exactly once".into());
            }
            let mut seen = std::collections::BTreeSet::new();
            for v in order {
                if !seen.insert(*v) {
                    return Err("duplicate variable in retrieval order".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SpatialDatabase;
    use scq_core::parse_system;
    use scq_region::AaBox;

    fn setup() -> (SpatialDatabase<2>, Query<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let towns = db.collection("towns");
        let roads = db.collection("roads");
        for i in 0..5 {
            let x = i as f64;
            db.insert(
                towns,
                Region::from_box(AaBox::new([x, 0.0], [x + 0.5, 0.5])),
            );
        }
        db.insert(roads, Region::from_box(AaBox::new([0.0, 0.0], [9.0, 1.0])));
        let sys = parse_system("T <= C; R & T != 0").unwrap();
        let q = Query::new(sys)
            .known("C", Region::from_box(AaBox::new([0.0, 0.0], [10.0, 10.0])))
            .from_collection("T", towns)
            .from_collection("R", roads);
        (db, q)
    }

    #[test]
    fn bindings_partition() {
        let (_, q) = setup();
        assert_eq!(q.known_vars().len(), 1);
        assert_eq!(q.unknown_vars().len(), 2);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn default_order_by_collection_size() {
        let (db, q) = setup();
        let order = q.retrieval_order(&db);
        // C (known) first, then R (1 road) before T (5 towns)
        let names: Vec<&str> = order.iter().map(|&v| q.system.table.name(v)).collect();
        assert_eq!(names, vec!["C", "R", "T"]);
    }

    #[test]
    fn explicit_order_is_respected() {
        let (db, q) = setup();
        let q = q.with_order(&["T", "R"]);
        let names: Vec<String> = q
            .retrieval_order(&db)
            .iter()
            .map(|&v| q.system.table.display(v))
            .collect();
        assert_eq!(names, vec!["C", "T", "R"]);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn validation_catches_unbound() {
        let sys = parse_system("X <= Y").unwrap();
        let q: Query<2> = Query::new(sys);
        assert!(q.validate().unwrap_err().contains("not bound"));
    }

    #[test]
    fn validation_catches_bad_order() {
        let (_, q) = setup();
        let bad = q.clone().with_order(&["T"]);
        assert!(bad.validate().is_err());
        let dup = q.with_order(&["T", "T"]);
        assert!(dup.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "unknown variable name")]
    fn binding_unknown_name_panics() {
        let sys = parse_system("A <= B").unwrap();
        let _ = Query::<2>::new(sys).known("Z", Region::empty());
    }
}
