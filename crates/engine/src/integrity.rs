//! Integrity constraints over a spatial database.
//!
//! The paper's introduction puts *integrity constraints* on equal
//! footing with queries: both are Boolean constraint systems. A spatial
//! integrity rule is expressed as a **violation pattern** — a constraint
//! system describing forbidden configurations — and the database is
//! consistent exactly when the pattern has no solutions. The checker is
//! therefore the optimizer itself, run in existence mode per pattern.

use crate::exec::{bbox_execute_opts, ExecError, ExecOptions, Solution};
use crate::query::{IndexKind, Query};
use crate::SpatialDatabase;

/// A named violation pattern.
#[derive(Clone, Debug)]
pub struct IntegrityRule<const K: usize> {
    /// Human-readable rule name, reported in violations.
    pub name: String,
    /// The forbidden configuration; the database is consistent with the
    /// rule iff this query has no solutions.
    pub pattern: Query<K>,
}

/// One detected violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated rule's name.
    pub rule: String,
    /// The offending tuple.
    pub tuple: Solution,
}

/// Checks all rules; returns every violation (bounded per rule by
/// `max_per_rule` to keep reports readable).
pub fn check_integrity<const K: usize>(
    db: &SpatialDatabase<K>,
    rules: &[IntegrityRule<K>],
    kind: IndexKind,
    max_per_rule: usize,
) -> Result<Vec<Violation>, ExecError> {
    let mut out = Vec::new();
    for rule in rules {
        let result = bbox_execute_opts(
            db,
            &rule.pattern,
            kind,
            ExecOptions {
                max_solutions: Some(max_per_rule),
            },
        )?;
        out.extend(result.solutions.into_iter().map(|tuple| Violation {
            rule: rule.name.clone(),
            tuple,
        }));
    }
    Ok(out)
}

/// Fast consistency check: stops at the first violation of any rule.
pub fn is_consistent<const K: usize>(
    db: &SpatialDatabase<K>,
    rules: &[IntegrityRule<K>],
    kind: IndexKind,
) -> Result<bool, ExecError> {
    Ok(check_integrity(db, rules, kind, 1)?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_core::parse_system;
    use scq_region::{AaBox, Region};

    fn setup() -> (SpatialDatabase<2>, IntegrityRule<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let zones = db.collection("zones");
        let parks = db.collection("parks");
        db.insert(
            zones,
            Region::from_box(AaBox::new([0.0, 0.0], [50.0, 50.0])),
        );
        db.insert(
            zones,
            Region::from_box(AaBox::new([50.0, 0.0], [100.0, 50.0])),
        );
        db.insert(
            parks,
            Region::from_box(AaBox::new([10.0, 10.0], [20.0, 20.0])),
        );
        // Rule: no park may straddle a zone boundary — the violation
        // pattern is "park overlaps a zone without being contained".
        let sys = parse_system("P & Z != 0; P !<= Z").unwrap();
        let pattern = Query::new(sys)
            .from_collection("P", parks)
            .from_collection("Z", zones);
        (
            db,
            IntegrityRule {
                name: "park-in-one-zone".into(),
                pattern,
            },
        )
    }

    #[test]
    fn consistent_database_passes() {
        let (db, rule) = setup();
        // The single park is inside zone 0 — but it OVERLAPS zone 0 and
        // is contained, and does not overlap zone 1: consistent.
        assert!(is_consistent(&db, &[rule], IndexKind::RTree).unwrap());
    }

    #[test]
    fn violations_are_reported() {
        let (mut db, rule) = setup();
        let parks = db.collection_id("parks").unwrap();
        // a park straddling the x=50 boundary
        db.insert(
            parks,
            Region::from_box(AaBox::new([45.0, 5.0], [55.0, 15.0])),
        );
        let violations =
            check_integrity(&db, std::slice::from_ref(&rule), IndexKind::RTree, 10).unwrap();
        // it overlaps both zones without containment in either → 2 tuples
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().all(|v| v.rule == "park-in-one-zone"));
        assert!(!is_consistent(&db, &[rule], IndexKind::GridFile).unwrap());
    }

    #[test]
    fn per_rule_cap_limits_report() {
        let (mut db, rule) = setup();
        let parks = db.collection_id("parks").unwrap();
        for i in 0..5 {
            let y = i as f64 * 8.0;
            db.insert(
                parks,
                Region::from_box(AaBox::new([48.0, y], [52.0, y + 4.0])),
            );
        }
        let violations = check_integrity(&db, &[rule], IndexKind::Scan, 3).unwrap();
        assert_eq!(violations.len(), 3, "report capped per rule");
    }
}
