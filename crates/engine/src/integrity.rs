//! Integrity constraints over a spatial database.
//!
//! The paper's introduction puts *integrity constraints* on equal
//! footing with queries: both are Boolean constraint systems. A spatial
//! integrity rule is expressed as a **violation pattern** — a constraint
//! system describing forbidden configurations — and the database is
//! consistent exactly when the pattern has no solutions. The checker is
//! therefore the optimizer itself, run in existence mode per pattern.

//
// Below the rule layer sits the **structural** checker, [`check`]: it
// cross-checks every spatial index against the collection's live
// objects after arbitrary mutation sequences (insert / remove /
// update), so a maintenance bug in any index surfaces as a named
// inconsistency instead of silently wrong query answers.

use scq_bbox::CornerQuery;

use crate::exec::{bbox_execute_opts, ExecError, ExecOptions, Solution};
use crate::query::{IndexKind, Query};
use crate::view::StoreView;
use crate::SpatialDatabase;

/// A named violation pattern.
#[derive(Clone, Debug)]
pub struct IntegrityRule<const K: usize> {
    /// Human-readable rule name, reported in violations.
    pub name: String,
    /// The forbidden configuration; the database is consistent with the
    /// rule iff this query has no solutions.
    pub pattern: Query<K>,
}

/// One detected violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated rule's name.
    pub rule: String,
    /// The offending tuple.
    pub tuple: Solution,
}

/// Checks all rules; returns every violation (bounded per rule by
/// `max_per_rule` to keep reports readable).
pub fn check_integrity<const K: usize, V: StoreView<K>>(
    db: &V,
    rules: &[IntegrityRule<K>],
    kind: IndexKind,
    max_per_rule: usize,
) -> Result<Vec<Violation>, ExecError> {
    let mut out = Vec::new();
    for rule in rules {
        let result = bbox_execute_opts(
            db,
            &rule.pattern,
            kind,
            ExecOptions {
                max_solutions: Some(max_per_rule),
            },
        )?;
        out.extend(result.solutions.into_iter().map(|tuple| Violation {
            rule: rule.name.clone(),
            tuple,
        }));
    }
    Ok(out)
}

/// Fast consistency check: stops at the first violation of any rule.
pub fn is_consistent<const K: usize, V: StoreView<K>>(
    db: &V,
    rules: &[IntegrityRule<K>],
    kind: IndexKind,
) -> Result<bool, ExecError> {
    Ok(check_integrity(db, rules, kind, 1)?.is_empty())
}

/// Structural cross-check of every index against the live objects.
///
/// For each collection this verifies that
///
/// 1. each index's entry count equals the collection's live count,
/// 2. an unconstrained corner query against each index returns exactly
///    the live objects with a nonempty bounding box, once each,
/// 3. the materialized bbox cache agrees with each live region,
/// 4. the empty-object list is exactly the live objects whose region is
///    empty, and
/// 5. the R-tree's structural invariants hold (node fill, MBRs, leaf
///    depth — this one panics on violation, as in the index's own test
///    support).
///
/// Returns every inconsistency found, described; an empty `Ok(())`
/// means the database survived its mutation history intact.
pub fn check<const K: usize>(db: &SpatialDatabase<K>) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    for coll in db.collections() {
        let name = db.collection_name(coll);
        let live = db.live_len(coll);
        // The cached live count must equal a recount of the liveness
        // slots — compaction and the mutation paths both maintain it,
        // and every downstream check below compares against it.
        let recount = db.live_indices(coll).count();
        if recount != live {
            problems.push(format!(
                "{name}: cached live count {live} != recounted live slots {recount}"
            ));
        }
        let mut expect_nonempty: Vec<u64> = Vec::new();
        let mut expect_empty: Vec<usize> = Vec::new();
        for index in db.live_indices(coll) {
            let obj = crate::database::ObjectRef {
                collection: coll,
                index,
            };
            let cached = db.bbox(obj);
            let actual = db.region(obj).bbox();
            if cached != actual {
                problems.push(format!(
                    "{name}[{index}]: cached bbox {cached:?} != region bbox {actual:?}"
                ));
            }
            if cached.is_empty() {
                expect_empty.push(index);
            } else {
                expect_nonempty.push(index as u64);
            }
        }
        let mut empties = db.empty_objects(coll).to_vec();
        empties.sort_unstable();
        if empties != expect_empty {
            problems.push(format!(
                "{name}: empty-object list {empties:?} != live empty regions {expect_empty:?}"
            ));
        }
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let n = db.index_len(coll, kind);
            if n != live {
                problems.push(format!(
                    "{name}: {kind:?} holds {n} entries, {live} live objects"
                ));
            }
            let mut got = Vec::new();
            db.query_collection(coll, kind, &CornerQuery::unconstrained(), &mut got);
            got.sort_unstable();
            if got != expect_nonempty {
                problems.push(format!(
                    "{name}: {kind:?} unconstrained query returned {got:?}, \
                     expected live nonempty {expect_nonempty:?}"
                ));
            }
        }
        db.check_rtree_invariants(coll);
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_core::parse_system;
    use scq_region::{AaBox, Region};

    fn setup() -> (SpatialDatabase<2>, IntegrityRule<2>) {
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let zones = db.collection("zones");
        let parks = db.collection("parks");
        db.insert(
            zones,
            Region::from_box(AaBox::new([0.0, 0.0], [50.0, 50.0])),
        );
        db.insert(
            zones,
            Region::from_box(AaBox::new([50.0, 0.0], [100.0, 50.0])),
        );
        db.insert(
            parks,
            Region::from_box(AaBox::new([10.0, 10.0], [20.0, 20.0])),
        );
        // Rule: no park may straddle a zone boundary — the violation
        // pattern is "park overlaps a zone without being contained".
        let sys = parse_system("P & Z != 0; P !<= Z").unwrap();
        let pattern = Query::new(sys)
            .from_collection("P", parks)
            .from_collection("Z", zones);
        (
            db,
            IntegrityRule {
                name: "park-in-one-zone".into(),
                pattern,
            },
        )
    }

    #[test]
    fn consistent_database_passes() {
        let (db, rule) = setup();
        // The single park is inside zone 0 — but it OVERLAPS zone 0 and
        // is contained, and does not overlap zone 1: consistent.
        assert!(is_consistent(&db, &[rule], IndexKind::RTree).unwrap());
    }

    #[test]
    fn violations_are_reported() {
        let (mut db, rule) = setup();
        let parks = db.collection_id("parks").unwrap();
        // a park straddling the x=50 boundary
        db.insert(
            parks,
            Region::from_box(AaBox::new([45.0, 5.0], [55.0, 15.0])),
        );
        let violations =
            check_integrity(&db, std::slice::from_ref(&rule), IndexKind::RTree, 10).unwrap();
        // it overlaps both zones without containment in either → 2 tuples
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().all(|v| v.rule == "park-in-one-zone"));
        assert!(!is_consistent(&db, &[rule], IndexKind::GridFile).unwrap());
    }

    #[test]
    fn structural_check_passes_after_mutations() {
        let (mut db, _) = setup();
        let zones = db.collection_id("zones").unwrap();
        let parks = db.collection_id("parks").unwrap();
        check(&db).expect("fresh database is consistent");
        let p = db.insert(
            parks,
            Region::from_box(AaBox::new([60.0, 10.0], [70.0, 20.0])),
        );
        let z = crate::database::ObjectRef {
            collection: zones,
            index: 0,
        };
        assert!(db.update(z, Region::from_box(AaBox::new([0.0, 0.0], [40.0, 40.0]))));
        assert!(db.remove(p));
        db.insert(parks, Region::empty());
        check(&db).expect("mutated database is consistent");
    }

    #[test]
    fn per_rule_cap_limits_report() {
        let (mut db, rule) = setup();
        let parks = db.collection_id("parks").unwrap();
        for i in 0..5 {
            let y = i as f64 * 8.0;
            db.insert(
                parks,
                Region::from_box(AaBox::new([48.0, y], [52.0, y + 4.0])),
            );
        }
        let violations = check_integrity(&db, &[rule], IndexKind::Scan, 3).unwrap();
        assert_eq!(violations.len(), 3, "report capped per rule");
    }
}
