//! Execution statistics shared by all executors.

/// Counters describing how much work an execution did.
///
/// The interesting comparison across executors (benchmark B1):
/// `partial_tuples` and `exact_row_checks` shrink dramatically when the
/// triangular form prunes early, and `index_candidates` shows how
/// selective the range queries are compared to full collection scans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Solutions emitted.
    pub solutions: usize,
    /// Partial tuples extended at any level (nodes of the search tree).
    pub partial_tuples: usize,
    /// Candidates produced by index range queries (bbox executor) or by
    /// collection enumeration (other executors).
    pub index_candidates: usize,
    /// Exact solved-row evaluations (region algebra work).
    pub exact_row_checks: usize,
    /// Partial tuples rejected by an exact row check.
    pub row_rejections: usize,
    /// Full constraint-system evaluations (naive executor only).
    pub full_system_checks: usize,
    /// Candidates rejected by the cheap bbox-vs-corner-query prefilter
    /// before any region algebra ran.
    pub bbox_prefilter_rejections: usize,
    /// Regions bound (by reference) into the search assignment.
    pub regions_bound: usize,
    /// Tombstoned slots skipped during collection enumeration (index
    /// range queries never surface tombstones, so this counts only the
    /// full-scan paths).
    pub tombstones_skipped: usize,
}

impl ExecStats {
    /// Sums two stat blocks (useful when aggregating benchmark runs).
    pub fn merge(&mut self, other: &ExecStats) {
        self.solutions += other.solutions;
        self.partial_tuples += other.partial_tuples;
        self.index_candidates += other.index_candidates;
        self.exact_row_checks += other.exact_row_checks;
        self.row_rejections += other.row_rejections;
        self.full_system_checks += other.full_system_checks;
        self.bbox_prefilter_rejections += other.bbox_prefilter_rejections;
        self.regions_bound += other.regions_bound;
        self.tombstones_skipped += other.tombstones_skipped;
    }
}

impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solutions={} partials={} candidates={} row_checks={} row_rejects={} \
             full_checks={} bbox_rejects={} bound={} tombstones={}",
            self.solutions,
            self.partial_tuples,
            self.index_candidates,
            self.exact_row_checks,
            self.row_rejections,
            self.full_system_checks,
            self.bbox_prefilter_rejections,
            self.regions_bound,
            self.tombstones_skipped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = ExecStats {
            solutions: 1,
            partial_tuples: 2,
            ..Default::default()
        };
        let b = ExecStats {
            solutions: 3,
            index_candidates: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.solutions, 4);
        assert_eq!(a.partial_tuples, 2);
        assert_eq!(a.index_candidates, 5);
    }

    #[test]
    fn display_is_compact() {
        let s = ExecStats::default();
        let t = s.to_string();
        assert!(t.contains("solutions=0"));
    }
}
