//! Execution statistics shared by all executors.

/// Microseconds elapsed since `start`, clamped into `u64` — the unit
/// every timing field of [`ExecStats`] uses.
pub fn elapsed_us(start: std::time::Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Counters describing how much work an execution did.
///
/// The interesting comparison across executors (benchmark B1):
/// `partial_tuples` and `exact_row_checks` shrink dramatically when the
/// triangular form prunes early, and `index_candidates` shows how
/// selective the range queries are compared to full collection scans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Solutions emitted.
    pub solutions: usize,
    /// Partial tuples extended at any level (nodes of the search tree).
    pub partial_tuples: usize,
    /// Candidates produced by index range queries (bbox executor) or by
    /// collection enumeration (other executors).
    pub index_candidates: usize,
    /// Exact solved-row evaluations (region algebra work).
    pub exact_row_checks: usize,
    /// Partial tuples rejected by an exact row check.
    pub row_rejections: usize,
    /// Full constraint-system evaluations (naive executor only).
    pub full_system_checks: usize,
    /// Candidates rejected by the cheap bbox-vs-corner-query prefilter
    /// before any region algebra ran.
    pub bbox_prefilter_rejections: usize,
    /// Regions bound (by reference) into the search assignment.
    pub regions_bound: usize,
    /// Tombstoned slots skipped during collection enumeration (index
    /// range queries never surface tombstones, so this counts only the
    /// full-scan paths).
    pub tombstones_skipped: usize,
    /// Shards the router proved disjoint from a range query and never
    /// probed (always 0 against an unsharded database).
    pub shards_pruned: usize,
    /// Levels where the backtracking search reused the previous
    /// sibling's corner-query answer: the prefix boxes feeding the
    /// level's `corner_query` were unchanged (and the collection's
    /// mutation epoch too), so the range query was not re-issued.
    pub corner_cache_hits: usize,
    /// Levels where the sibling corner-query cache could not help —
    /// the level's corner query changed since the previous sibling (or
    /// there was no previous sibling), so the index was probed.
    pub corner_cache_misses: usize,
    /// Shard probes that found the shard unavailable (process dead or
    /// unreachable after the transport's one reconnect attempt). Each
    /// such probe lost that shard's candidates — the query result is
    /// partial (see `QueryOutcome`). Always 0 on a healthy cluster.
    pub shards_unavailable: usize,
    /// Transport-level reconnect-and-retry events the shard backends
    /// performed while answering idempotent requests. Nonzero means
    /// connections broke mid-query but the answers stayed complete.
    pub retries: usize,
    /// Replica failovers the shard backends performed: an earlier
    /// replica (usually the primary) was unreachable or skipped by its
    /// circuit breaker and a later replica answered instead. Always 0
    /// on a healthy cluster and against an unsharded database.
    pub failovers: usize,
    /// Shard probes whose answer was served by a non-primary replica —
    /// complete but **stale-flagged** (see `ProbeReport::stale_shards`).
    pub stale_answers: usize,
    /// Wall-clock microseconds spent producing candidates (index range
    /// queries / shard probes / collection enumeration). Summed across
    /// parallel workers, so it can exceed `total_us`.
    pub probe_us: u64,
    /// Wall-clock microseconds spent on exact solved-row checks.
    /// Summed across parallel workers.
    pub check_us: u64,
    /// Wall-clock microseconds the router spent planning shard routes
    /// (always 0 against an unsharded database).
    pub route_us: u64,
    /// End-to-end wall-clock microseconds of the execution that
    /// produced this block. Merging keeps the **maximum** — merged
    /// blocks come from concurrent workers or shards, where the
    /// slowest leg is the elapsed time.
    pub total_us: u64,
}

impl ExecStats {
    /// Aggregates another stat block into this one, field by field with
    /// **saturating** adds — merged counters from many shards, workers
    /// or benchmark runs degrade to `usize::MAX` instead of wrapping.
    /// This is the single aggregation point: the parallel executor and
    /// the cross-shard merge both go through it.
    pub fn merge(&mut self, other: &ExecStats) {
        let ExecStats {
            solutions,
            partial_tuples,
            index_candidates,
            exact_row_checks,
            row_rejections,
            full_system_checks,
            bbox_prefilter_rejections,
            regions_bound,
            tombstones_skipped,
            shards_pruned,
            corner_cache_hits,
            corner_cache_misses,
            shards_unavailable,
            retries,
            failovers,
            stale_answers,
            probe_us,
            check_us,
            route_us,
            total_us,
        } = other;
        self.solutions = self.solutions.saturating_add(*solutions);
        self.partial_tuples = self.partial_tuples.saturating_add(*partial_tuples);
        self.index_candidates = self.index_candidates.saturating_add(*index_candidates);
        self.exact_row_checks = self.exact_row_checks.saturating_add(*exact_row_checks);
        self.row_rejections = self.row_rejections.saturating_add(*row_rejections);
        self.full_system_checks = self.full_system_checks.saturating_add(*full_system_checks);
        self.bbox_prefilter_rejections = self
            .bbox_prefilter_rejections
            .saturating_add(*bbox_prefilter_rejections);
        self.regions_bound = self.regions_bound.saturating_add(*regions_bound);
        self.tombstones_skipped = self.tombstones_skipped.saturating_add(*tombstones_skipped);
        self.shards_pruned = self.shards_pruned.saturating_add(*shards_pruned);
        self.corner_cache_hits = self.corner_cache_hits.saturating_add(*corner_cache_hits);
        self.corner_cache_misses = self
            .corner_cache_misses
            .saturating_add(*corner_cache_misses);
        self.shards_unavailable = self.shards_unavailable.saturating_add(*shards_unavailable);
        self.retries = self.retries.saturating_add(*retries);
        self.failovers = self.failovers.saturating_add(*failovers);
        self.stale_answers = self.stale_answers.saturating_add(*stale_answers);
        self.probe_us = self.probe_us.saturating_add(*probe_us);
        self.check_us = self.check_us.saturating_add(*check_us);
        self.route_us = self.route_us.saturating_add(*route_us);
        self.total_us = self.total_us.max(*total_us);
    }

    /// [`ExecStats::merge`] as a value-returning fold step.
    pub fn merged(mut self, other: &ExecStats) -> ExecStats {
        self.merge(other);
        self
    }

    /// This block with the wall-clock timing fields zeroed — the
    /// deterministic part. Tests comparing two executions for equality
    /// compare `a.without_timings() == b.without_timings()`; the raw
    /// blocks differ on every run because timings are measurements,
    /// not counts.
    pub fn without_timings(mut self) -> ExecStats {
        self.probe_us = 0;
        self.check_us = 0;
        self.route_us = 0;
        self.total_us = 0;
        self
    }
}

impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solutions={} partials={} candidates={} row_checks={} row_rejects={} \
             full_checks={} bbox_rejects={} bound={} tombstones={} shards_pruned={} \
             corner_cache_hits={} corner_cache_misses={} \
             shards_unavailable={} retries={} failovers={} stale_answers={} \
             probe_us={} check_us={} route_us={} total_us={}",
            self.solutions,
            self.partial_tuples,
            self.index_candidates,
            self.exact_row_checks,
            self.row_rejections,
            self.full_system_checks,
            self.bbox_prefilter_rejections,
            self.regions_bound,
            self.tombstones_skipped,
            self.shards_pruned,
            self.corner_cache_hits,
            self.corner_cache_misses,
            self.shards_unavailable,
            self.retries,
            self.failovers,
            self.stale_answers,
            self.probe_us,
            self.check_us,
            self.route_us,
            self.total_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = ExecStats {
            solutions: 1,
            partial_tuples: 2,
            ..Default::default()
        };
        let b = ExecStats {
            solutions: 3,
            index_candidates: 5,
            shards_pruned: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.solutions, 4);
        assert_eq!(a.partial_tuples, 2);
        assert_eq!(a.index_candidates, 5);
        assert_eq!(a.shards_pruned, 2);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = ExecStats {
            exact_row_checks: usize::MAX - 1,
            ..Default::default()
        };
        let b = ExecStats {
            exact_row_checks: 10,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.exact_row_checks, usize::MAX);
    }

    #[test]
    fn merged_folds() {
        let parts = [
            ExecStats {
                solutions: 1,
                ..Default::default()
            },
            ExecStats {
                solutions: 2,
                ..Default::default()
            },
        ];
        let total = parts
            .iter()
            .fold(ExecStats::default(), |acc, s| acc.merged(s));
        assert_eq!(total.solutions, 3);
    }

    #[test]
    fn display_is_compact() {
        let s = ExecStats::default();
        let t = s.to_string();
        assert!(t.contains("solutions=0"));
        assert!(t.contains("shards_pruned=0"));
        assert!(t.contains("shards_unavailable=0"));
        assert!(t.contains("retries=0"));
    }

    #[test]
    fn corner_cache_counters_merge_and_display() {
        let mut a = ExecStats {
            corner_cache_hits: 2,
            corner_cache_misses: 5,
            ..Default::default()
        };
        a.merge(&ExecStats {
            corner_cache_hits: 3,
            corner_cache_misses: 1,
            ..Default::default()
        });
        assert_eq!(a.corner_cache_hits, 5);
        assert_eq!(a.corner_cache_misses, 6);
        let t = a.to_string();
        assert!(t.contains("corner_cache_hits=5"));
        assert!(t.contains("corner_cache_misses=6"));
    }

    #[test]
    fn availability_counters_merge() {
        let mut a = ExecStats {
            shards_unavailable: 1,
            retries: 2,
            ..Default::default()
        };
        a.merge(&ExecStats {
            shards_unavailable: 3,
            retries: 1,
            ..Default::default()
        });
        assert_eq!(a.shards_unavailable, 4);
        assert_eq!(a.retries, 3);
    }

    #[test]
    fn failover_counters_merge_and_display() {
        let mut a = ExecStats {
            failovers: 1,
            stale_answers: 2,
            ..Default::default()
        };
        a.merge(&ExecStats {
            failovers: 2,
            stale_answers: 1,
            ..Default::default()
        });
        assert_eq!(a.failovers, 3);
        assert_eq!(a.stale_answers, 3);
        let t = a.to_string();
        assert!(t.contains("failovers=3"));
        assert!(t.contains("stale_answers=3"));
    }

    #[test]
    fn timings_sum_except_total_which_takes_the_max() {
        let mut a = ExecStats {
            probe_us: 10,
            check_us: 5,
            route_us: 1,
            total_us: 40,
            ..Default::default()
        };
        a.merge(&ExecStats {
            probe_us: 7,
            check_us: 2,
            route_us: 3,
            total_us: 25,
            ..Default::default()
        });
        assert_eq!(a.probe_us, 17);
        assert_eq!(a.check_us, 7);
        assert_eq!(a.route_us, 4);
        assert_eq!(a.total_us, 40, "merged total is the slowest leg");
        assert!(a.to_string().contains("probe_us=17"));
        let stripped = a.without_timings();
        assert_eq!(stripped.probe_us, 0);
        assert_eq!(stripped.total_us, 0);
        assert_eq!(stripped, ExecStats::default());
    }
}
