#![warn(missing_docs)]

//! Z-order (Morton) encoding and the z-order spatial join of Orenstein
//! and Manola's PROBE system — the related-work comparison point of the
//! paper's Section 1.
//!
//! The paper contrasts its constraint-based optimizer with PROBE's
//! z-order *spatial join*: a binary overlay operator implemented by
//! decomposing each object into dyadic z-intervals and merging the two
//! sorted interval lists. This crate implements that baseline for
//! two-dimensional data:
//!
//! * [`ZCurve`] — quantization of a universe box onto a `2ᵇ × 2ᵇ` grid
//!   and bit-interleaved Morton codes;
//! * [`decompose`] — quadtree decomposition of a box into maximal dyadic
//!   z-intervals;
//! * [`zorder_join`] — sort-merge join over z-intervals with exact
//!   bounding-box verification of candidate pairs.
//!
//! As the paper notes, the z-order join handles a *single binary overlay
//! constraint*; the constraint optimizer handles arbitrary Boolean
//! systems. Benchmark B7 compares the two on the query shape both
//! support.

pub mod zindex;

pub use zindex::ZOrderIndex;

use scq_bbox::Bbox;

/// Interleaves the low 32 bits of `x` and `y` (x in even positions).
pub fn morton_encode(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Inverse of [`morton_encode`].
pub fn morton_decode(z: u64) -> (u32, u32) {
    (compact1by1(z), compact1by1(z >> 1))
}

fn part1by1(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

fn compact1by1(z: u64) -> u32 {
    let mut x = z & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// A z-order curve over a universe box, quantized to `2^bits` cells per
/// dimension.
#[derive(Clone, Copy, Debug)]
pub struct ZCurve {
    universe: Bbox<2>,
    bits: u32,
}

impl ZCurve {
    /// Creates a curve over `universe` with `bits` bits per dimension.
    ///
    /// # Panics
    /// If the universe is empty or `bits` is 0 or exceeds 16 (the join
    /// works on 32-bit cell coordinates interleaved into u64; 16 bits
    /// per dimension keeps interval arithmetic comfortably in range).
    pub fn new(universe: Bbox<2>, bits: u32) -> Self {
        assert!(!universe.is_empty(), "universe must be nonempty");
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        ZCurve { universe, bits }
    }

    /// Grid cells per dimension.
    pub fn cells_per_dim(&self) -> u32 {
        1 << self.bits
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The universe's `(lo, hi)` corners.
    pub fn universe_corners(&self) -> Option<([f64; 2], [f64; 2])> {
        Some((self.universe.lo()?, self.universe.hi()?))
    }

    /// Quantizes a point to cell coordinates (clamped to the universe).
    pub fn quantize(&self, p: [f64; 2]) -> (u32, u32) {
        let lo = self.universe.lo().expect("nonempty");
        let hi = self.universe.hi().expect("nonempty");
        let n = self.cells_per_dim() as f64;
        let mut out = [0u32; 2];
        for d in 0..2 {
            let w = hi[d] - lo[d];
            let t = if w > 0.0 {
                ((p[d] - lo[d]) / w * n).floor()
            } else {
                0.0
            };
            out[d] = t.clamp(0.0, n - 1.0) as u32;
        }
        (out[0], out[1])
    }

    /// The cell-coordinate rectangle covered by `b` (clamped, inclusive).
    /// `None` when `b` is empty.
    pub fn quantize_box(&self, b: &Bbox<2>) -> Option<((u32, u32), (u32, u32))> {
        let lo = b.lo()?;
        let hi = b.hi()?;
        Some((self.quantize(lo), self.quantize(hi)))
    }
}

/// Decomposes a cell rectangle into maximal dyadic z-intervals.
///
/// Recursion over quadtree blocks: a block fully inside the rectangle
/// contributes its whole z-interval; a disjoint block contributes
/// nothing; a straddling block recurses into its four children. The
/// result is sorted and pairwise disjoint.
pub fn decompose_cells((x0, y0): (u32, u32), (x1, y1): (u32, u32), bits: u32) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    rec(0, 0, bits, (x0, y0), (x1, y1), &mut out);
    // Recursion emits blocks in z-order already; coalesce adjacent runs.
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(out.len());
    for (lo, hi) in out {
        match merged.last_mut() {
            Some(last) if last.1 == lo => last.1 = hi,
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

fn rec(
    bx: u32,
    by: u32,
    level: u32,
    (x0, y0): (u32, u32),
    (x1, y1): (u32, u32),
    out: &mut Vec<(u64, u64)>,
) {
    // Block at (bx, by) with side 2^level covers cells
    // [bx, bx + 2^level) × [by, by + 2^level).
    let side = 1u32 << level;
    let (bx1, by1) = (bx + side - 1, by + side - 1);
    // disjoint?
    if bx > x1 || bx1 < x0 || by > y1 || by1 < y0 {
        return;
    }
    // fully contained?
    if bx >= x0 && bx1 <= x1 && by >= y0 && by1 <= y1 {
        let z = morton_encode(bx, by);
        let size = 1u64 << (2 * level);
        out.push((z, z + size));
        return;
    }
    debug_assert!(level > 0, "level-0 blocks are single cells, always decided");
    let half = side / 2;
    rec(bx, by, level - 1, (x0, y0), (x1, y1), out);
    rec(bx + half, by, level - 1, (x0, y0), (x1, y1), out);
    rec(bx, by + half, level - 1, (x0, y0), (x1, y1), out);
    rec(bx + half, by + half, level - 1, (x0, y0), (x1, y1), out);
}

/// The total number of z-codes under a curve with `bits` bits per
/// dimension: `4^bits`, i.e. one code per grid cell.
pub fn key_space(bits: u32) -> u64 {
    1u64 << (2 * bits)
}

/// Partitions the z-code space of a `bits`-per-dimension curve into `n`
/// contiguous, equally-sized half-open ranges `[lo, hi)` covering
/// `[0, 4^bits)` exactly — the shard map of a z-order range-partitioned
/// database. Because the ranges follow the curve, spatially clustered
/// data lands in few shards and range queries prune the rest.
///
/// # Panics
/// If `n` is 0 or exceeds the number of cells.
pub fn shard_ranges(bits: u32, n: usize) -> Vec<(u64, u64)> {
    let total = key_space(bits);
    assert!(n > 0, "at least one shard");
    assert!(n as u64 <= total, "more shards than z-codes");
    let n64 = n as u64;
    let base = total / n64;
    let extra = total % n64; // first `extra` ranges get one more code
    let mut out = Vec::with_capacity(n);
    let mut lo = 0u64;
    for i in 0..n64 {
        let hi = lo + base + u64::from(i < extra);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// The z-code of a box's center point under `curve` — the routing key
/// of a z-order range-partitioned store. `None` for the empty box,
/// which has no center.
pub fn center_key(curve: &ZCurve, b: &Bbox<2>) -> Option<u64> {
    let lo = b.lo()?;
    let hi = b.hi()?;
    let (cx, cy) = curve.quantize([(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0]);
    Some(morton_encode(cx, cy))
}

/// Decomposes a box into z-intervals under `curve`. Empty boxes give no
/// intervals.
pub fn decompose(curve: &ZCurve, b: &Bbox<2>) -> Vec<(u64, u64)> {
    match curve.quantize_box(b) {
        None => Vec::new(),
        Some((lo, hi)) => decompose_cells(lo, hi, curve.bits),
    }
}

/// Like [`decompose`] but WITHOUT coalescing adjacent runs: every
/// returned interval is a single dyadic quadtree block. Dyadic blocks
/// either nest or are disjoint, which [`crate::ZOrderIndex`] exploits
/// for ancestor lookups.
pub fn decompose_blocks(curve: &ZCurve, b: &Bbox<2>) -> Vec<(u64, u64)> {
    match curve.quantize_box(b) {
        None => Vec::new(),
        Some((lo, hi)) => {
            let mut out = Vec::new();
            rec(0, 0, curve.bits, lo, hi, &mut out);
            out
        }
    }
}

/// The z-order spatial join: all pairs `(idₐ, id_b)` whose boxes overlap.
///
/// Each input box is decomposed into z-intervals; the two interval lists
/// are sort-merged with active lists (dyadic intervals either nest or
/// are disjoint, so candidates are exactly the interval overlaps), and
/// candidate pairs are verified with the exact bbox test — quantization
/// makes the interval stage a *filter*, never a final answer.
pub fn zorder_join(
    curve: &ZCurve,
    left: &[(Bbox<2>, u64)],
    right: &[(Bbox<2>, u64)],
) -> Vec<(u64, u64)> {
    #[derive(Clone, Copy)]
    struct Elem {
        lo: u64,
        hi: u64,
        idx: u32,
        side: bool, // false = left, true = right
    }
    let mut elems: Vec<Elem> = Vec::new();
    for (i, (b, _)) in left.iter().enumerate() {
        for (lo, hi) in decompose(curve, b) {
            elems.push(Elem {
                lo,
                hi,
                idx: i as u32,
                side: false,
            });
        }
    }
    for (i, (b, _)) in right.iter().enumerate() {
        for (lo, hi) in decompose(curve, b) {
            elems.push(Elem {
                lo,
                hi,
                idx: i as u32,
                side: true,
            });
        }
    }
    elems.sort_by_key(|e| (e.lo, e.hi));

    let mut active_l: Vec<(u64, u32)> = Vec::new(); // (hi, idx)
    let mut active_r: Vec<(u64, u32)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for e in &elems {
        active_l.retain(|&(hi, _)| hi > e.lo);
        active_r.retain(|&(hi, _)| hi > e.lo);
        let opposite: &[(u64, u32)] = if e.side { &active_l } else { &active_r };
        for &(_, other) in opposite {
            let (li, ri) = if e.side {
                (other, e.idx)
            } else {
                (e.idx, other)
            };
            if seen.insert((li, ri)) && left[li as usize].0.overlaps(&right[ri as usize].0) {
                out.push((left[li as usize].1, right[ri as usize].1));
            }
        }
        if e.side {
            active_r.push((e.hi, e.idx));
        } else {
            active_l.push((e.hi, e.idx));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn morton_round_trip() {
        for (x, y) in [
            (0, 0),
            (1, 0),
            (0, 1),
            (12345, 54321),
            (u32::MAX, 0),
            (u32::MAX, u32::MAX),
        ] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn morton_orders_quadrants() {
        // The four cells of a 2×2 block are consecutive in z-order.
        let z00 = morton_encode(0, 0);
        let z10 = morton_encode(1, 0);
        let z01 = morton_encode(0, 1);
        let z11 = morton_encode(1, 1);
        assert_eq!((z00, z10, z01, z11), (0, 1, 2, 3));
    }

    #[test]
    fn quantize_clamps() {
        let c = ZCurve::new(Bbox::new([0.0, 0.0], [10.0, 10.0]), 4);
        assert_eq!(c.quantize([0.0, 0.0]), (0, 0));
        assert_eq!(
            c.quantize([10.0, 10.0]),
            (15, 15),
            "upper edge clamps to last cell"
        );
        assert_eq!(c.quantize([-5.0, 20.0]), (0, 15));
    }

    #[test]
    fn decomposition_covers_exactly() {
        let bits = 4;
        let rect = ((3, 2), (9, 12));
        let ranges = decompose_cells(rect.0, rect.1, bits);
        // ranges sorted and disjoint
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "sorted, disjoint: {w:?}");
        }
        // exact cover check over the whole grid
        for x in 0u32..16 {
            for y in 0u32..16 {
                let z = morton_encode(x, y);
                let inside = (3..=9).contains(&x) && (2..=12).contains(&y);
                let covered = ranges.iter().any(|&(lo, hi)| lo <= z && z < hi);
                assert_eq!(covered, inside, "cell ({x},{y})");
            }
        }
    }

    #[test]
    fn full_grid_is_one_interval() {
        let bits = 5;
        let ranges = decompose_cells((0, 0), (31, 31), bits);
        assert_eq!(ranges, vec![(0, 1 << (2 * bits))]);
    }

    #[test]
    fn join_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(77);
        let universe = Bbox::new([0.0, 0.0], [100.0, 100.0]);
        let curve = ZCurve::new(universe, 8);
        let gen = |rng: &mut StdRng, n: usize, base: u64| -> Vec<(Bbox<2>, u64)> {
            (0..n)
                .map(|i| {
                    let lo = [rng.random_range(0.0..90.0), rng.random_range(0.0..90.0)];
                    let w = [rng.random_range(0.5..8.0), rng.random_range(0.5..8.0)];
                    (Bbox::new(lo, [lo[0] + w[0], lo[1] + w[1]]), base + i as u64)
                })
                .collect()
        };
        let left = gen(&mut rng, 120, 0);
        let right = gen(&mut rng, 150, 1000);
        let mut got = zorder_join(&curve, &left, &right);
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = Vec::new();
        for (lb, li) in &left {
            for (rb, ri) in &right {
                if lb.overlaps(rb) {
                    want.push((*li, *ri));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn join_with_empty_side() {
        let curve = ZCurve::new(Bbox::new([0.0, 0.0], [1.0, 1.0]), 4);
        let left = vec![(Bbox::new([0.0, 0.0], [1.0, 1.0]), 1u64)];
        assert!(zorder_join(&curve, &left, &[]).is_empty());
        assert!(zorder_join(&curve, &[], &left).is_empty());
    }

    #[test]
    fn coarse_quantization_still_exact() {
        // With 1 bit per dim everything lands in 4 cells; the exact
        // verification must weed out the false candidates.
        let curve = ZCurve::new(Bbox::new([0.0, 0.0], [100.0, 100.0]), 1);
        let left = vec![(Bbox::new([0.0, 0.0], [10.0, 10.0]), 1u64)];
        let right = vec![
            (Bbox::new([5.0, 5.0], [15.0, 15.0]), 2u64),   // overlaps
            (Bbox::new([40.0, 40.0], [45.0, 45.0]), 3u64), // same cell, no overlap
        ];
        let got = zorder_join(&curve, &left, &right);
        assert_eq!(got, vec![(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn rejects_excessive_bits() {
        ZCurve::new(Bbox::new([0.0, 0.0], [1.0, 1.0]), 17);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for (bits, n) in [(4u32, 1usize), (4, 3), (4, 7), (8, 16), (2, 16)] {
            let ranges = shard_ranges(bits, n);
            assert_eq!(ranges.len(), n);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[n - 1].1, key_space(bits));
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous: {w:?}");
                assert!(w[0].0 < w[0].1, "nonempty: {w:?}");
            }
            // balanced to within one code
            let sizes: Vec<u64> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "more shards than z-codes")]
    fn shard_ranges_reject_too_many_shards() {
        shard_ranges(1, 5);
    }

    #[test]
    fn center_key_routes_consistently() {
        let curve = ZCurve::new(Bbox::new([0.0, 0.0], [100.0, 100.0]), 8);
        assert_eq!(center_key(&curve, &Bbox::Empty), None);
        let b = Bbox::new([10.0, 20.0], [14.0, 26.0]);
        let k = center_key(&curve, &b).unwrap();
        assert_eq!(
            k,
            morton_encode(curve.quantize([12.0, 23.0]).0, {
                curve.quantize([12.0, 23.0]).1
            })
        );
        assert!(k < key_space(8));
        // the key falls inside the decomposition of any box containing
        // the center (soundness of range-based pruning)
        let cover = Bbox::new([0.0, 0.0], [50.0, 50.0]);
        let intervals = decompose(&curve, &cover);
        assert!(intervals.iter().any(|&(lo, hi)| lo <= k && k < hi));
    }

    #[test]
    fn center_key_clamps_outliers() {
        let curve = ZCurve::new(Bbox::new([0.0, 0.0], [10.0, 10.0]), 4);
        // a box whose center lies outside the universe still gets a key
        let k = center_key(&curve, &Bbox::new([50.0, 50.0], [60.0, 60.0])).unwrap();
        assert_eq!(k, morton_encode(15, 15));
    }
}
