//! A z-order backed spatial index — the paper's closing remark made
//! concrete: "it seems possible to extend our approach to make use of
//! z-ordering methods".
//!
//! Boxes are decomposed into raw dyadic z-blocks
//! ([`crate::decompose_blocks`]). A corner query yields two derived
//! boxes: the *region of interest* `[lo_min, hi_max]` every candidate is
//! contained in, and the *must-overlap* box `[hi_min, lo_max]` every
//! candidate intersects; their meet is decomposed into query z-ranges.
//! An element block intersects a query range `[a, b)` iff it starts
//! inside the range (one binary search) or is one of the ≤ `bits`+1
//! dyadic *ancestors* of `a` (blocks nest or are disjoint — direct
//! lookups). Survivors are verified exactly with
//! [`CornerQuery::matches`], so the index plugs into the same
//! [`SpatialIndex`] trait the optimizer's executors use.

use scq_bbox::{Bbox, CornerQuery};
use scq_index::SpatialIndex;

use crate::{decompose, decompose_blocks, ZCurve};

/// A sorted z-interval index over 2-d boxes.
pub struct ZOrderIndex {
    curve: ZCurve,
    /// `(z_lo, z_hi, item)` triples, sorted by `z_lo` on demand.
    elems: Vec<(u64, u64, u32)>,
    items: Vec<(Bbox<2>, u64)>,
    sorted: bool,
}

impl ZOrderIndex {
    /// Creates an index quantizing to `bits` per dimension inside
    /// `universe` (boxes outside are clamped; query semantics stay
    /// exact because every candidate is verified).
    pub fn new(universe: Bbox<2>, bits: u32) -> Self {
        ZOrderIndex {
            curve: ZCurve::new(universe, bits),
            elems: Vec::new(),
            items: Vec::new(),
            sorted: true,
        }
    }

    /// Builds from items.
    pub fn from_items<I: IntoIterator<Item = (u64, Bbox<2>)>>(
        universe: Bbox<2>,
        bits: u32,
        items: I,
    ) -> Self {
        let mut z = Self::new(universe, bits);
        for (id, b) in items {
            z.insert(id, b);
        }
        z.optimize();
        z
    }

    /// Sorts the element list so queries avoid per-query copies. Called
    /// automatically by [`ZOrderIndex::from_items`]; incremental users
    /// may call it after a batch of inserts.
    pub fn optimize(&mut self) {
        if !self.sorted {
            self.elems.sort_unstable();
            self.sorted = true;
        }
    }

    /// Number of z-interval elements (a storage-overhead metric).
    pub fn element_count(&self) -> usize {
        self.elems.len()
    }

    /// The box every matching candidate must *overlap*: the meet of the
    /// region of interest `[lo_min, hi_max]` (containment is a special
    /// case of overlap for boxes inside it) and the must-overlap box
    /// `[hi_min, lo_max]`, clamped to the universe.
    fn probe_box(&self, q: &CornerQuery<2>) -> Bbox<2> {
        let (ulo, uhi) = match self.curve.universe_corners() {
            Some(c) => c,
            None => return Bbox::Empty,
        };
        let mut lo = [0.0; 2];
        let mut hi = [0.0; 2];
        for d in 0..2 {
            // region of interest: cand ⊆ [lo_min, hi_max]
            let roi_lo = if q.lo_min[d].is_finite() {
                q.lo_min[d].max(ulo[d])
            } else {
                ulo[d]
            };
            let roi_hi = if q.hi_max[d].is_finite() {
                q.hi_max[d].min(uhi[d])
            } else {
                uhi[d]
            };
            // must-overlap interval from cand.lo ≤ lo_max ∧ cand.hi ≥
            // hi_min: when hi_min ≤ lo_max the candidate overlaps
            // [hi_min, lo_max]; when inverted (containment queries) the
            // candidate covers [lo_max, hi_min] — either way it overlaps
            // [min, max] of the two bounds.
            let b1 = if q.hi_min[d].is_finite() {
                q.hi_min[d].max(ulo[d])
            } else {
                ulo[d]
            };
            let b2 = if q.lo_max[d].is_finite() {
                q.lo_max[d].min(uhi[d])
            } else {
                uhi[d]
            };
            lo[d] = roi_lo.max(b1.min(b2));
            hi[d] = roi_hi.min(b1.max(b2));
            if lo[d] > hi[d] {
                return Bbox::Empty;
            }
        }
        Bbox::new(lo, hi)
    }
}

/// The dyadic ancestors of point `a`: block intervals of size `4^l`
/// containing `a`, for `l = 0..=bits`.
fn ancestors(a: u64, bits: u32) -> impl Iterator<Item = (u64, u64)> {
    (0..=bits).map(move |l| {
        let size = 1u64 << (2 * l);
        let lo = a & !(size - 1);
        (lo, lo + size)
    })
}

impl SpatialIndex<2> for ZOrderIndex {
    fn insert(&mut self, id: u64, bbox: Bbox<2>) {
        let item = self.items.len() as u32;
        self.items.push((bbox, id));
        for (lo, hi) in decompose_blocks(&self.curve, &bbox) {
            self.elems.push((lo, hi, item));
        }
        self.sorted = false;
    }

    fn remove(&mut self, id: u64, bbox: Bbox<2>) -> bool {
        let Some(pos) = self.items.iter().position(|&(b, i)| i == id && b == bbox) else {
            return false;
        };
        let last = self.items.len() - 1;
        self.items.swap_remove(pos);
        self.elems.retain(|&(_, _, item)| item as usize != pos);
        if pos != last {
            // The former last item moved into `pos`; re-point its blocks.
            // Element order by `z_lo` is untouched (only the payload
            // changes), so query binary searches stay valid.
            for e in &mut self.elems {
                if e.2 as usize == last {
                    e.2 = pos as u32;
                }
            }
        }
        true
    }

    fn query_corner(&self, query: &CornerQuery<2>, out: &mut Vec<u64>) {
        if query.is_unsatisfiable() || self.items.is_empty() {
            return;
        }
        // Interior mutability is avoided by requiring sortedness; fall
        // back to sorting a copy when queried mid-build.
        let mut local;
        let elems: &[(u64, u64, u32)] = if self.sorted {
            &self.elems
        } else {
            local = self.elems.clone();
            local.sort_unstable();
            &local
        };
        let probe = self.probe_box(query);
        if probe.is_empty() {
            return;
        }
        let ranges = decompose(&self.curve, &probe);
        let mut seen = vec![false; self.items.len()];
        let mut consider = |item: u32, out: &mut Vec<u64>| {
            if !seen[item as usize] {
                seen[item as usize] = true;
                let (bbox, id) = self.items[item as usize];
                if query.matches(&bbox) {
                    out.push(id);
                }
            }
        };
        let bits = self.curve.bits();
        for (a, b) in ranges {
            // 1. element blocks starting inside [a, b)
            let start = elems.partition_point(|&(lo, _, _)| lo < a);
            let end = elems.partition_point(|&(lo, _, _)| lo < b);
            for &(_, _, item) in &elems[start..end] {
                consider(item, out);
            }
            // 2. ancestor blocks of `a` (dyadic: nest or disjoint), which
            // contain the whole range start — ≤ bits+1 direct lookups.
            for (alo, ahi) in ancestors(a, bits) {
                if alo >= a {
                    continue; // starts in range: already covered above
                }
                let lo_start = elems.partition_point(|&(lo, _, _)| lo < alo);
                for &(lo, hi, item) in &elems[lo_start..] {
                    if lo != alo {
                        break;
                    }
                    if hi == ahi {
                        consider(item, out);
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use scq_index::ScanIndex;

    fn universe() -> Bbox<2> {
        Bbox::new([0.0, 0.0], [100.0, 100.0])
    }

    fn random_box(rng: &mut StdRng) -> Bbox<2> {
        let lo = [rng.random_range(0.0..92.0), rng.random_range(0.0..92.0)];
        let w = [rng.random_range(0.2..8.0), rng.random_range(0.2..8.0)];
        Bbox::new(lo, [lo[0] + w[0], lo[1] + w[1]])
    }

    #[test]
    fn agrees_with_scan() {
        let mut rng = StdRng::seed_from_u64(9);
        let items: Vec<(u64, Bbox<2>)> = (0..600u64).map(|id| (id, random_box(&mut rng))).collect();
        let z = ZOrderIndex::from_items(universe(), 8, items.iter().copied());
        let scan = ScanIndex::from_items(items.iter().copied());
        assert_eq!(z.len(), 600);
        for _ in 0..30 {
            let probe = random_box(&mut rng);
            for q in [
                CornerQuery::unconstrained().and_overlaps(&probe),
                CornerQuery::unconstrained().and_contained_in(&probe),
                CornerQuery::unconstrained().and_contains(&Bbox::new(
                    probe.lo().unwrap(),
                    [probe.lo().unwrap()[0] + 0.1, probe.lo().unwrap()[1] + 0.1],
                )),
            ] {
                let mut a = Vec::new();
                z.query_corner(&q, &mut a);
                let mut b = Vec::new();
                scan.query_corner(&q, &mut b);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn remove_agrees_with_scan() {
        let mut rng = StdRng::seed_from_u64(27);
        let mut items: Vec<(u64, Bbox<2>)> =
            (0..300u64).map(|id| (id, random_box(&mut rng))).collect();
        let mut z = ZOrderIndex::from_items(universe(), 8, items.iter().copied());
        assert!(!z.remove(999, random_box(&mut rng)), "missing entry");
        for step in 0..200 {
            let pos = (step * 31) % items.len();
            let (id, b) = items.swap_remove(pos);
            assert!(z.remove(id, b), "entry must be found");
        }
        assert_eq!(z.len(), items.len());
        let scan = ScanIndex::from_items(items.iter().copied());
        for _ in 0..20 {
            let probe = random_box(&mut rng);
            let q = CornerQuery::unconstrained().and_overlaps(&probe);
            let mut a = Vec::new();
            z.query_corner(&q, &mut a);
            let mut b = Vec::new();
            scan.query_corner(&q, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn unsorted_queries_still_correct() {
        let mut z = ZOrderIndex::new(universe(), 6);
        let mut scan = ScanIndex::new();
        let mut rng = StdRng::seed_from_u64(3);
        for id in 0..100u64 {
            let b = random_box(&mut rng);
            z.insert(id, b); // never bulk-sorted
            scan.insert(id, b);
        }
        let q = CornerQuery::unconstrained().and_overlaps(&Bbox::new([20.0, 20.0], [50.0, 50.0]));
        let mut a = Vec::new();
        z.query_corner(&q, &mut a);
        let mut b = Vec::new();
        scan.query_corner(&q, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_boxes_and_queries() {
        let mut z = ZOrderIndex::new(universe(), 6);
        z.insert(1, Bbox::Empty);
        z.insert(2, Bbox::new([1.0, 1.0], [2.0, 2.0]));
        let mut out = Vec::new();
        z.query_corner(&CornerQuery::unconstrained(), &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        z.query_corner(&CornerQuery::unsatisfiable(), &mut out);
        assert!(out.is_empty());
        assert_eq!(z.len(), 2);
    }

    #[test]
    fn coarse_grid_remains_exact() {
        // 1 bit per dim: everything collides in 4 cells, verification
        // must restore exactness.
        let items = vec![
            (1u64, Bbox::new([1.0, 1.0], [2.0, 2.0])),
            (2u64, Bbox::new([3.0, 3.0], [4.0, 4.0])),
            (3u64, Bbox::new([80.0, 80.0], [90.0, 90.0])),
        ];
        let z = ZOrderIndex::from_items(universe(), 1, items);
        let mut out = Vec::new();
        z.query_corner(
            &CornerQuery::unconstrained().and_overlaps(&Bbox::new([0.0, 0.0], [2.5, 2.5])),
            &mut out,
        );
        assert_eq!(out, vec![1]);
    }
}
