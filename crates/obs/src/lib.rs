//! # scq-obs — the cluster's observability plane
//!
//! Two halves, both pure std:
//!
//! * [`metrics`] — lock-cheap [`Counter`]/[`Gauge`]/[`Histogram`]
//!   instruments behind a named [`Registry`], coherent [`Snapshot`]s,
//!   Prometheus-style text exposition ([`Snapshot::render`]) and its
//!   parser ([`parse_exposition`]). Latency histograms use fixed log2
//!   buckets over microseconds so p50/p90/p99 derive from integer
//!   cumulative counts — no float sorting, no sample retention.
//! * [`trace`] — per-request span trees ([`TraceState`]) recorded via
//!   thread-local installation ([`span`], [`event`]), replayed from a
//!   bounded [`TraceRing`]. Layers that can't see the ring still
//!   record; threads with no trace installed pay one thread-local
//!   read.
//!
//! The serve tier owns a [`Registry`] and a [`TraceRing`]; the shard
//! tier owns its own registry and ships [`Snapshot`]s over the wire
//! for the router to [`Snapshot::merge`]. Long-lived components that
//! predate a registry (the WAL's flusher, a connection pool) own bare
//! [`Histogram`] handles and are attached by name at serve time with
//! [`Registry::register_histogram`] — shared cells, so the scrape is
//! always live.

pub mod metrics;
pub mod trace;

pub use metrics::{
    parse_exposition, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Sample, Snapshot,
    Value, N_BUCKETS,
};
pub use trace::{
    current, current_id, event, span, InstallGuard, SpanGuard, SpanRec, TraceRing, TraceState,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Satellite: writers hammer counters and a histogram while a
        // reader scrapes. Every scrape must be monotone in every
        // counter, histogram bucket sums must equal the derived count
        // (exact by construction), and after the dust settles the
        // totals must equal what the writers did.
        #[test]
        fn concurrent_scrapes_are_monotone_and_bucket_exact(
            writers in 2usize..5,
            per_writer in 50usize..300,
            values in proptest::collection::vec(0u64..100_000, 8),
        ) {
            let r = Arc::new(Registry::new());
            let stop = Arc::new(AtomicBool::new(false));
            let scraper = {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_count = 0u64;
                    let mut last_ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = r.snapshot();
                        if let Some(h) = s.histogram("lat") {
                            let count = h.count();
                            assert_eq!(
                                count,
                                h.buckets.iter().sum::<u64>(),
                                "bucket sum must equal derived count"
                            );
                            assert!(count >= last_count, "count went backwards");
                            last_count = count;
                        }
                        if let Some(ops) = s.counter("ops") {
                            assert!(ops >= last_ops, "counter went backwards");
                            last_ops = ops;
                        }
                    }
                })
            };
            std::thread::scope(|scope| {
                for _ in 0..writers {
                    let r = Arc::clone(&r);
                    let values = values.clone();
                    scope.spawn(move || {
                        let ops = r.counter("ops");
                        let lat = r.histogram("lat");
                        for i in 0..per_writer {
                            ops.inc();
                            lat.observe_us(values[i % values.len()]);
                        }
                    });
                }
            });
            stop.store(true, Ordering::Relaxed);
            scraper.join().unwrap();
            let s = r.snapshot();
            let expected = (writers * per_writer) as u64;
            prop_assert_eq!(s.counter("ops"), Some(expected));
            let h = s.histogram("lat").unwrap();
            prop_assert_eq!(h.count(), expected);
            let expected_sum: u64 = (0..per_writer)
                .map(|i| values[i % values.len()])
                .sum::<u64>()
                * writers as u64;
            prop_assert_eq!(h.sum_us, expected_sum);
        }

        // Quantiles answer a bucket upper bound that at least `q` of
        // the observations fall at or below.
        #[test]
        fn quantiles_bound_the_right_mass(
            obs in proptest::collection::vec(0u64..10_000_000, 1..200),
            q in 0.0f64..1.0,
        ) {
            let h = Histogram::new();
            for &v in &obs {
                h.observe_us(v);
            }
            let s = h.snapshot();
            let bound = s.quantile_us(q);
            let at_or_below = obs.iter().filter(|&&v| v <= bound).count() as f64;
            let need = (q * obs.len() as f64).ceil().max(1.0);
            prop_assert!(
                at_or_below >= need,
                "quantile {} bound {} covers {} of {} obs, need {}",
                q, bound, at_or_below, obs.len(), need
            );
        }
    }
}
