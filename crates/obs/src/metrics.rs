//! Metric instruments: counters, gauges and fixed log2-bucket latency
//! histograms behind a named registry, with Prometheus-style text
//! exposition.
//!
//! The design rules, in order:
//!
//! * **Recording is lock-cheap.** [`Counter::add`] and [`Gauge::set`]
//!   are single relaxed atomic operations; [`Histogram::observe_us`]
//!   is three. No float sorting, no allocation, no mutex on the hot
//!   path.
//! * **Scrapes are coherent.** Counters created by one [`Registry`]
//!   share a coherence gate: a multi-counter update wrapped in
//!   [`Registry::batch`] takes the gate's read side, and
//!   [`Registry::snapshot`] takes the write side — so a scrape never
//!   observes half of a logically-atomic update (the classic
//!   `partial_answers > queries` tear). Ungated single-counter adds
//!   stay lock-free.
//! * **Histogram counts are exact by construction.** A snapshot derives
//!   the observation count as the sum of its buckets, so "bucket sums
//!   equal the count" holds under any interleaving of writers and the
//!   scraper.
//!
//! Buckets are powers of two of **microseconds**: bucket 0 holds 0 µs,
//! bucket `i ≥ 1` holds `[2^(i-1), 2^i)` µs, and the last bucket
//! absorbs everything above. p50/p90/p99 come from the cumulative
//! bucket counts — a percentile answers the upper bound of the bucket
//! the rank falls in, an order-of-magnitude answer that never needs
//! the raw samples.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of log2 latency buckets: bucket 0 is `0 µs`, bucket 31
/// absorbs everything from `2^30 µs` (~18 minutes) up.
pub const N_BUCKETS: usize = 32;

/// The shared coherence gate of one registry's instruments.
type Gate = Arc<RwLock<()>>;

/// A monotonically increasing counter. Cloning shares the underlying
/// cell — handles are cheap and thread-safe.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh standalone counter (not attached to any registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` (relaxed; lock-free).
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh standalone gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; N_BUCKETS],
    sum_us: AtomicU64,
}

/// A fixed-bucket latency histogram over microseconds. Cloning shares
/// the cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            cells: Arc::new(HistogramCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum_us: AtomicU64::new(0),
            }),
        }
    }
}

/// The bucket a microsecond value falls into.
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` in microseconds; the last bucket
/// is unbounded (`None` = `+Inf`).
fn bucket_le(i: usize) -> Option<u64> {
    if i + 1 >= N_BUCKETS {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

impl Histogram {
    /// A fresh standalone histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one latency observation in microseconds.
    pub fn observe_us(&self, us: u64) {
        self.cells.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.cells.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one [`std::time::Duration`] observation.
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.cells.buckets[i].load(Ordering::Relaxed)),
            sum_us: self.cells.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram — the unit shipped over the
/// wire when the router merges shard-side metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`N_BUCKETS`]).
    pub buckets: [u64; N_BUCKETS],
    /// Sum of every observed value, in microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// Total observations — **derived** from the buckets, so it always
    /// equals their sum whatever the scrape raced against.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, b| a.saturating_add(*b))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound in
    /// microseconds of the bucket the rank falls in; 0 when empty. The
    /// unbounded last bucket answers `u64::MAX`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if seen >= rank {
                return bucket_le(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Adds another snapshot's cells into this one (saturating).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

/// One named instrument's snapshot value.
///
/// The histogram variant carries its full bucket array inline — a
/// snapshot holds tens of rows at most and lives only for the scrape,
/// so the size skew is cheaper than a heap hop per row.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Value {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's cells.
    Histogram(HistogramSnapshot),
}

/// A coherent point-in-time copy of a whole registry (or a merge of
/// several): named instrument values, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` rows, sorted by name.
    pub rows: Vec<(String, Value)>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.rows.iter().find_map(|(n, v)| match v {
            Value::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.rows.iter().find_map(|(n, v)| match v {
            Value::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.rows.iter().find_map(|(n, v)| match v {
            Value::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// Merges another snapshot in: same-named counters and histogram
    /// cells add, gauges take the other's value, new names append. The
    /// result stays sorted.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.rows {
            match self.rows.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => match (mine, value) {
                    (Value::Counter(a), Value::Counter(b)) => *a = a.saturating_add(*b),
                    (Value::Gauge(a), Value::Gauge(b)) => *a = *b,
                    (Value::Histogram(a), Value::Histogram(b)) => a.merge(b),
                    // A name that changed kind across tiers: keep ours.
                    _ => {}
                },
                None => self.rows.push((name.clone(), value.clone())),
            }
        }
        self.rows.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Renders Prometheus-style text exposition. Metric names mangle
    /// dots to underscores (`serve.query.latency` →
    /// `serve_query_latency_us`); histograms get a `_us` unit suffix
    /// and the classic `_bucket{le=…}` / `_sum` / `_count` triplet.
    /// `labels` is attached to every sample (the router labels merged
    /// shard snapshots with `tier`/`shard`).
    pub fn render(&self, labels: &[(&str, &str)]) -> String {
        let mut out = String::new();
        let label_str = |extra: Option<(&str, String)>| {
            let mut parts: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };
        for (name, value) in &self.rows {
            let base = mangle(name);
            match value {
                Value::Counter(v) => {
                    out.push_str(&format!("# TYPE {base} counter\n"));
                    out.push_str(&format!("{base}{} {v}\n", label_str(None)));
                }
                Value::Gauge(v) => {
                    out.push_str(&format!("# TYPE {base} gauge\n"));
                    out.push_str(&format!("{base}{} {v}\n", label_str(None)));
                }
                Value::Histogram(h) => {
                    let base = format!("{base}_us");
                    out.push_str(&format!("# TYPE {base} histogram\n"));
                    let mut cum = 0u64;
                    for (i, b) in h.buckets.iter().enumerate() {
                        cum = cum.saturating_add(*b);
                        // Empty buckets below the first occupied one
                        // and the long zero tail are elided: a 32-row
                        // block per histogram would drown the scrape.
                        if *b == 0 && bucket_le(i).is_some() {
                            continue;
                        }
                        let le = match bucket_le(i) {
                            Some(us) => us.to_string(),
                            None => "+Inf".into(),
                        };
                        out.push_str(&format!(
                            "{base}_bucket{} {cum}\n",
                            label_str(Some(("le", le)))
                        ));
                    }
                    out.push_str(&format!("{base}_sum{} {}\n", label_str(None), h.sum_us));
                    out.push_str(&format!("{base}_count{} {}\n", label_str(None), h.count()));
                }
            }
        }
        out
    }
}

fn mangle(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// One parsed exposition sample: mangled metric name, label set (as
/// written, brace-enclosed or empty) and numeric value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Mangled sample name (`serve_query_latency_us_count`).
    pub name: String,
    /// The raw label block, `{}`-less when absent.
    pub labels: String,
    /// The sample's value.
    pub value: f64,
}

/// Parses Prometheus-style text exposition back into samples — the
/// assertion side of [`Snapshot::render`], used by the CI smoke to
/// prove a scrape is well-formed. Comment lines must start `#`; every
/// other non-empty line must be `name[{labels}] value`.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", i + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value: {line:?}", i + 1))?;
        let (name, labels) = match head.split_once('{') {
            Some((n, rest)) => {
                if !rest.ends_with('}') {
                    return Err(format!("line {}: unterminated labels: {line:?}", i + 1));
                }
                (n, format!("{{{rest}"))
            }
            None => (head, String::new()),
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {}: bad metric name: {line:?}", i + 1));
        }
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named set of instruments with one coherence gate.
///
/// `counter`/`gauge`/`histogram` get-or-create by name and hand back
/// cheap shared handles; pre-built instruments (a WAL's fsync
/// histogram, a pool's wait histogram) attach under a name with the
/// `register_*` methods so one scrape covers them all.
#[derive(Default)]
pub struct Registry {
    gate: Gate,
    instruments: Mutex<Vec<(String, Instrument)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        pick: impl Fn(&Instrument) -> Option<T>,
        make: impl FnOnce() -> (T, Instrument),
    ) -> T {
        let mut list = self.instruments.lock().expect("registry lock");
        if let Some(found) = list
            .iter()
            .find_map(|(n, i)| if n == name { pick(i) } else { None })
        {
            return found;
        }
        let (handle, instrument) = make();
        list.push((name.to_string(), instrument));
        handle
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), Instrument::Counter(c))
            },
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), Instrument::Gauge(g))
            },
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_insert(
            name,
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (h.clone(), Instrument::Histogram(h))
            },
        )
    }

    /// Attaches an existing histogram under `name` (shared cells: the
    /// owner keeps observing, scrapes see it live).
    pub fn register_histogram(&self, name: &str, h: Histogram) {
        let mut list = self.instruments.lock().expect("registry lock");
        if !list.iter().any(|(n, _)| n == name) {
            list.push((name.to_string(), Instrument::Histogram(h)));
        }
    }

    /// Attaches an existing counter under `name`.
    pub fn register_counter(&self, name: &str, c: Counter) {
        let mut list = self.instruments.lock().expect("registry lock");
        if !list.iter().any(|(n, _)| n == name) {
            list.push((name.to_string(), Instrument::Counter(c)));
        }
    }

    /// Runs `f` as one logically-atomic multi-instrument update: a
    /// concurrent [`Registry::snapshot`] sees either none or all of its
    /// writes. Many batches run concurrently (read side of the gate).
    /// Do **not** nest `snapshot` inside a batch.
    pub fn batch<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.gate.read().expect("registry gate");
        f()
    }

    /// A coherent snapshot of every instrument (excludes in-flight
    /// [`Registry::batch`] updates by taking the gate's write side).
    pub fn snapshot(&self) -> Snapshot {
        let _g = self.gate.write().expect("registry gate");
        let list = self.instruments.lock().expect("registry lock");
        let mut rows: Vec<(String, Value)> = list
            .iter()
            .map(|(n, i)| {
                let v = match i {
                    Instrument::Counter(c) => Value::Counter(c.get()),
                    Instrument::Gauge(g) => Value::Gauge(g.get()),
                    Instrument::Histogram(h) => Value::Histogram(h.snapshot()),
                };
                (n.clone(), v)
            })
            .collect();
        drop(list);
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        // Every value lands in the bucket whose `le` bound admits it.
        for us in [0u64, 1, 2, 3, 7, 8, 100, 999, 1 << 20, 1 << 40] {
            let i = bucket_index(us);
            if let Some(le) = bucket_le(i) {
                assert!(us <= le, "{us} > le {le} of its own bucket {i}");
            }
            if i > 0 {
                if let Some(prev_le) = bucket_le(i - 1) {
                    assert!(us > prev_le, "{us} fits the previous bucket {}", i - 1);
                }
            }
        }
    }

    #[test]
    fn quantiles_answer_bucket_upper_bounds() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 40, 2000] {
            h.observe_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum_us, 2100);
        // 4 of 5 observations are ≤ 63 µs; the p50 rank (3rd) falls in
        // a ≤ 63 µs bucket, the p99 rank (5th) in the 2000 µs bucket.
        assert!(s.quantile_us(0.5) <= 63, "{}", s.quantile_us(0.5));
        assert!(s.quantile_us(0.99) >= 2000, "{}", s.quantile_us(0.99));
        assert_eq!(Histogram::new().snapshot().quantile_us(0.99), 0);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.snapshot().counter("x"), Some(3));
        let h = r.histogram("lat");
        h.observe_us(5);
        assert_eq!(r.snapshot().histogram("lat").unwrap().count(), 1);
        let g = r.gauge("depth");
        g.set(-4);
        assert_eq!(r.snapshot().gauge("depth"), Some(-4));
    }

    #[test]
    fn render_and_parse_round_trip() {
        let r = Registry::new();
        r.counter("serve.queries").add(7);
        r.gauge("pool.idle").set(3);
        let h = r.histogram("serve.query.latency");
        h.observe_us(0);
        h.observe_us(5);
        h.observe_us(1_000_000);
        let text = r.snapshot().render(&[("tier", "router")]);
        assert!(text.contains("# TYPE serve_queries counter"));
        assert!(text.contains("serve_queries{tier=\"router\"} 7"));
        assert!(text.contains("# TYPE serve_query_latency_us histogram"));
        assert!(text.contains("serve_query_latency_us_count{tier=\"router\"} 3"));
        let samples = parse_exposition(&text).expect("well-formed exposition");
        let count = samples
            .iter()
            .find(|s| s.name == "serve_query_latency_us_count")
            .expect("histogram count sample");
        assert_eq!(count.value, 3.0);
        assert!(
            samples
                .iter()
                .any(|s| s.name == "serve_query_latency_us_bucket"
                    && s.labels.contains("le=\"+Inf\""))
        );
        // The cumulative +Inf bucket equals the count.
        let inf = samples
            .iter()
            .find(|s| s.name == "serve_query_latency_us_bucket" && s.labels.contains("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 3.0);
        assert!(parse_exposition("not a metric line").is_err());
        assert!(parse_exposition("bad{unclosed 3").is_err());
    }

    #[test]
    fn snapshot_merge_adds_counters_and_cells() {
        let a = Registry::new();
        a.counter("c").add(1);
        a.histogram("h").observe_us(10);
        let b = Registry::new();
        b.counter("c").add(2);
        b.counter("only_b").add(9);
        b.histogram("h").observe_us(20);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("c"), Some(3));
        assert_eq!(m.counter("only_b"), Some(9));
        assert_eq!(m.histogram("h").unwrap().count(), 2);
        assert_eq!(m.histogram("h").unwrap().sum_us, 30);
    }

    #[test]
    fn batched_updates_never_tear_in_a_snapshot() {
        // The regression the serve tier fixes with this registry: two
        // counters updated "together" must never be seen torn apart.
        let r = std::sync::Arc::new(Registry::new());
        let total = r.counter("total");
        let sub = r.counter("subset");
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let r = std::sync::Arc::clone(&r);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    r.batch(|| {
                        // `subset` first: without the gate a snapshot
                        // between the two adds would see subset > total.
                        sub.inc();
                        total.inc();
                    });
                }
            })
        };
        for _ in 0..2000 {
            let s = r.snapshot();
            let (t, p) = (s.counter("total").unwrap(), s.counter("subset").unwrap());
            assert!(p <= t, "torn snapshot: subset {p} > total {t}");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
