//! Request tracing: per-request span trees in a bounded in-memory
//! ring.
//!
//! A trace is born at the serve front end (one per client command),
//! installed into the current thread, and recorded into as the request
//! descends through route → per-shard probe → bind/check → merge.
//! Layers that do the work stay oblivious to storage: they call
//! [`span`] / [`event`], which write into whichever trace is installed
//! — or do nothing at all when none is (the common case for library
//! tests and embedded use, which therefore pay one thread-local read).
//!
//! Spans carry a depth so the flat record list replays as a tree, and
//! fan-out workers re-install the parent's trace handle
//! ([`TraceState::install`] is `Send`-friendly via `Arc`) so shard
//! probes land in the right request even across `thread::scope`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One recorded span or event.
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// Static span name (`probe`, `merge`, `failover`, …).
    pub name: &'static str,
    /// Free-form detail (`shard=3 addr=127.0.0.1:4711`).
    pub detail: String,
    /// Nesting depth below the root command span.
    pub depth: usize,
    /// Start offset from the trace origin, in microseconds.
    pub start_us: u64,
    /// Span duration in microseconds (0 for point events).
    pub dur_us: u64,
}

#[derive(Default)]
struct TraceInner {
    spans: Vec<SpanRec>,
    depth: usize,
}

/// One request's trace: its ID, origin instant and recorded spans.
pub struct TraceState {
    id: u64,
    origin: Instant,
    inner: Mutex<TraceInner>,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<TraceState>>> = const { RefCell::new(None) };
}

/// Cap on spans recorded per trace — a runaway fan-out must not turn
/// one trace into an allocation attack on the ring.
const MAX_SPANS: usize = 512;

impl TraceState {
    /// A fresh trace with the given ID, origin = now.
    pub fn new(id: u64) -> Arc<TraceState> {
        Arc::new(TraceState {
            id,
            origin: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
        })
    }

    /// The trace's ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Installs this trace as the current thread's trace; the returned
    /// guard restores the previous one on drop. Fan-out workers call
    /// this with a clone of the parent's handle.
    pub fn install(self: &Arc<TraceState>) -> InstallGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(self)));
        InstallGuard { prev }
    }

    fn record(&self, rec: SpanRec) {
        let mut inner = self.inner.lock().expect("trace lock");
        if inner.spans.len() < MAX_SPANS {
            inner.spans.push(rec);
        }
    }

    /// A copy of the recorded spans, in record order (parents precede
    /// children started after them; guard-recorded spans appear when
    /// they end).
    pub fn spans(&self) -> Vec<SpanRec> {
        self.inner.lock().expect("trace lock").spans.clone()
    }

    /// Renders the span tree as lines: `name dur=<µs>us [detail]`,
    /// indented two spaces per depth, sorted by start offset so the
    /// replay reads in causal order.
    pub fn render(&self) -> Vec<String> {
        let mut spans = self.spans();
        spans.sort_by_key(|s| (s.start_us, s.depth));
        spans
            .iter()
            .map(|s| {
                let indent = "  ".repeat(s.depth);
                if s.detail.is_empty() {
                    format!("{indent}{} dur={}us", s.name, s.dur_us)
                } else {
                    format!("{indent}{} dur={}us {}", s.name, s.dur_us, s.detail)
                }
            })
            .collect()
    }
}

/// Guard restoring the previously installed trace.
pub struct InstallGuard {
    prev: Option<Arc<TraceState>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// The current thread's installed trace, if any — fan-out sites
/// capture this before spawning workers.
pub fn current() -> Option<Arc<TraceState>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The current trace's ID, if one is installed.
pub fn current_id() -> Option<u64> {
    current().map(|t| t.id())
}

/// Opens a span on the current trace; it records on guard drop. `None`
/// (free of any cost beyond the thread-local read) when no trace is
/// installed.
pub fn span(name: &'static str, detail: impl Into<String>) -> Option<SpanGuard> {
    let trace = current()?;
    let start = Instant::now();
    let (depth, start_us) = {
        let mut inner = trace.inner.lock().expect("trace lock");
        let d = inner.depth;
        inner.depth = d.saturating_add(1);
        (
            d,
            start
                .duration_since(trace.origin)
                .as_micros()
                .min(u64::MAX as u128) as u64,
        )
    };
    Some(SpanGuard {
        trace,
        name,
        detail: detail.into(),
        depth,
        start,
        start_us,
    })
}

/// Records a zero-duration point event (`failover`, `retry`,
/// `breaker-skip`) on the current trace, at the current depth.
pub fn event(name: &'static str, detail: impl Into<String>) {
    if let Some(trace) = current() {
        let (depth, start_us) = {
            let inner = trace.inner.lock().expect("trace lock");
            (
                inner.depth,
                Instant::now()
                    .duration_since(trace.origin)
                    .as_micros()
                    .min(u64::MAX as u128) as u64,
            )
        };
        trace.record(SpanRec {
            name,
            detail: detail.into(),
            depth,
            start_us,
            dur_us: 0,
        });
    }
}

/// An open span; records itself (with its measured duration) when
/// dropped.
pub struct SpanGuard {
    trace: Arc<TraceState>,
    name: &'static str,
    detail: String,
    depth: usize,
    start: Instant,
    start_us: u64,
}

impl SpanGuard {
    /// Replaces the span's detail (for facts only known at the end,
    /// like a probe's candidate count).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        {
            let mut inner = self.trace.inner.lock().expect("trace lock");
            inner.depth = inner.depth.saturating_sub(1);
        }
        self.trace.record(SpanRec {
            name: self.name,
            detail: std::mem::take(&mut self.detail),
            depth: self.depth,
            start_us: self.start_us,
            dur_us,
        });
    }
}

/// A bounded ring of finished traces, newest-first lookup by ID. The
/// serve tier keeps one and pushes every completed command's trace;
/// `TRACE <id>` replays from here.
pub struct TraceRing {
    cap: usize,
    ring: Mutex<VecDeque<Arc<TraceState>>>,
}

impl TraceRing {
    /// A ring holding at most `cap` traces.
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a finished trace, evicting the oldest beyond capacity.
    pub fn push(&self, trace: Arc<TraceState>) {
        let mut ring = self.ring.lock().expect("ring lock");
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Finds a trace by ID (newest match wins).
    pub fn get(&self, id: u64) -> Option<Arc<TraceState>> {
        let ring = self.ring.lock().expect("ring lock");
        ring.iter().rev().find(|t| t.id() == id).cloned()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("ring lock").len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_render_as_a_tree() {
        let t = TraceState::new(7);
        {
            let _g = t.install();
            let _root = span("command", "QUERY demo");
            {
                let mut probe = span("probe", "").expect("trace installed");
                probe.set_detail("shard=2 candidates=5");
                event("failover", "addr=127.0.0.1:9");
            }
            let _merge = span("merge", "");
        }
        let spans = t.spans();
        assert_eq!(t.id(), 7);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        // Guards record on drop: children before parents, events inline.
        assert_eq!(names, ["failover", "probe", "merge", "command"]);
        let probe = spans.iter().find(|s| s.name == "probe").unwrap();
        assert_eq!(probe.depth, 1);
        assert_eq!(probe.detail, "shard=2 candidates=5");
        let failover = spans.iter().find(|s| s.name == "failover").unwrap();
        assert_eq!(failover.depth, 2);
        assert_eq!(failover.dur_us, 0);
        let lines = t.render();
        assert!(lines[0].starts_with("command dur="));
        assert!(lines.iter().any(|l| l.starts_with("  probe dur=")));
        assert!(lines
            .iter()
            .any(|l| l.contains("failover") && l.contains("addr=127.0.0.1:9")));
    }

    #[test]
    fn uninstalled_threads_record_nothing() {
        assert!(current().is_none());
        assert!(span("orphan", "").is_none());
        event("orphan", ""); // must not panic
        assert!(current_id().is_none());
    }

    #[test]
    fn install_guard_restores_the_previous_trace() {
        let a = TraceState::new(1);
        let b = TraceState::new(2);
        let _ga = a.install();
        assert_eq!(current_id(), Some(1));
        {
            let _gb = b.install();
            assert_eq!(current_id(), Some(2));
        }
        assert_eq!(current_id(), Some(1));
    }

    #[test]
    fn workers_reinstall_the_parents_trace() {
        let t = TraceState::new(9);
        let _g = t.install();
        let _root = span("command", "");
        let parent = current().expect("installed");
        std::thread::scope(|s| {
            for i in 0..3 {
                let parent = Arc::clone(&parent);
                s.spawn(move || {
                    let _g = parent.install();
                    let _p = span("probe", format!("shard={i}"));
                });
            }
        });
        let spans = t.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "probe").count(), 3);
        for i in 0..3 {
            assert!(spans.iter().any(|s| s.detail == format!("shard={i}")));
        }
    }

    #[test]
    fn ring_evicts_oldest_and_finds_by_id() {
        let ring = TraceRing::new(2);
        assert!(ring.is_empty());
        ring.push(TraceState::new(1));
        ring.push(TraceState::new(2));
        ring.push(TraceState::new(3));
        assert_eq!(ring.len(), 2);
        assert!(ring.get(1).is_none(), "oldest must be evicted");
        assert!(ring.get(2).is_some());
        assert_eq!(ring.get(3).unwrap().id(), 3);
    }

    #[test]
    fn span_count_is_bounded() {
        let t = TraceState::new(4);
        let _g = t.install();
        for _ in 0..(MAX_SPANS + 50) {
            event("e", "");
        }
        assert_eq!(t.spans().len(), MAX_SPANS);
    }
}
