//! Variable assignments: partial maps from [`Var`] to algebra elements.

use std::collections::BTreeMap;

use scq_boolean::Var;

/// A partial assignment of algebra elements to variables.
///
/// Used both for *known* query inputs (e.g. the country `C` and target
/// area `A` in the paper's smuggler example) and for the growing partial
/// solution tuples of the incremental evaluation strategy.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment<E> {
    map: BTreeMap<Var, E>,
}

impl<E> Default for Assignment<E> {
    fn default() -> Self {
        Assignment {
            map: BTreeMap::new(),
        }
    }
}

impl<E: Clone> Assignment<E> {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `v` to `e`, replacing any previous binding.
    pub fn bind(&mut self, v: Var, e: E) -> &mut Self {
        self.map.insert(v, e);
        self
    }

    /// Builder-style binding.
    pub fn with(mut self, v: Var, e: E) -> Self {
        self.map.insert(v, e);
        self
    }

    /// Removes a binding.
    pub fn unbind(&mut self, v: Var) -> Option<E> {
        self.map.remove(&v)
    }

    /// Looks up the element bound to `v`.
    pub fn get(&self, v: Var) -> Option<&E> {
        self.map.get(&v)
    }

    /// Whether `v` is bound.
    pub fn is_bound(&self, v: Var) -> bool {
        self.map.contains_key(&v)
    }

    /// The bound variables in order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.map.keys().copied()
    }

    /// Iterates over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &E)> + '_ {
        self.map.iter().map(|(&v, e)| (v, e))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_unbind() {
        let mut a: Assignment<u64> = Assignment::new();
        a.bind(Var(0), 5).bind(Var(1), 7);
        assert_eq!(a.get(Var(0)), Some(&5));
        assert!(a.is_bound(Var(1)));
        assert_eq!(a.len(), 2);
        assert_eq!(a.unbind(Var(0)), Some(5));
        assert!(!a.is_bound(Var(0)));
    }

    #[test]
    fn with_builder_and_iter() {
        let a = Assignment::new().with(Var(2), "x").with(Var(0), "y");
        let vars: Vec<Var> = a.vars().collect();
        assert_eq!(vars, vec![Var(0), Var(2)], "iteration in variable order");
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn rebinding_replaces() {
        let mut a: Assignment<i32> = Assignment::new();
        a.bind(Var(0), 1);
        a.bind(Var(0), 2);
        assert_eq!(a.get(Var(0)), Some(&2));
        assert_eq!(a.len(), 1);
    }
}
