//! Variable assignments: partial maps from [`Var`] to algebra elements.
//!
//! Two implementations share the [`VarLookup`] read interface:
//!
//! * [`Assignment`] — an owning `BTreeMap`, convenient for query inputs
//!   and tests;
//! * [`FlatAssignment`] — slot-based storage of *borrowed* elements,
//!   indexed by [`Var::index`]. This is the executor's hot-path
//!   representation: binding a candidate is writing one `Option<&E>`
//!   slot, with no element clone and no tree rebalancing.

use std::collections::BTreeMap;

use scq_boolean::Var;

/// Read access to a variable assignment, generic over storage.
///
/// The evaluators ([`crate::eval::eval_formula_in`],
/// `SolvedRow::check_in` in `scq-core`) are written against this trait
/// so that both owning and borrowing assignments evaluate without
/// cloning elements at variable leaves.
pub trait VarLookup<E> {
    /// The element bound to `v`, if any.
    fn lookup(&self, v: Var) -> Option<&E>;
}

/// A partial assignment of algebra elements to variables.
///
/// Used both for *known* query inputs (e.g. the country `C` and target
/// area `A` in the paper's smuggler example) and for the growing partial
/// solution tuples of the incremental evaluation strategy.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment<E> {
    map: BTreeMap<Var, E>,
}

impl<E> Default for Assignment<E> {
    fn default() -> Self {
        Assignment {
            map: BTreeMap::new(),
        }
    }
}

impl<E: Clone> Assignment<E> {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `v` to `e`, replacing any previous binding.
    pub fn bind(&mut self, v: Var, e: E) -> &mut Self {
        self.map.insert(v, e);
        self
    }

    /// Builder-style binding.
    pub fn with(mut self, v: Var, e: E) -> Self {
        self.map.insert(v, e);
        self
    }

    /// Removes a binding.
    pub fn unbind(&mut self, v: Var) -> Option<E> {
        self.map.remove(&v)
    }

    /// Looks up the element bound to `v`.
    pub fn get(&self, v: Var) -> Option<&E> {
        self.map.get(&v)
    }

    /// Whether `v` is bound.
    pub fn is_bound(&self, v: Var) -> bool {
        self.map.contains_key(&v)
    }

    /// The bound variables in order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.map.keys().copied()
    }

    /// Iterates over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &E)> + '_ {
        self.map.iter().map(|(&v, e)| (v, e))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<E> VarLookup<E> for Assignment<E> {
    fn lookup(&self, v: Var) -> Option<&E> {
        self.map.get(&v)
    }
}

/// A partial assignment of **borrowed** elements, stored flat in a slot
/// per variable index.
///
/// The executors bind `&Region` straight out of the database instead of
/// cloning regions into a map: a bind is `slots[v.index()] = Some(r)`,
/// a lookup is one indexed load. Slots beyond the preallocated capacity
/// grow on demand, so `Var` indices need not be dense.
#[derive(Clone, Debug)]
pub struct FlatAssignment<'e, E> {
    slots: Vec<Option<&'e E>>,
    bound: usize,
}

impl<'e, E> FlatAssignment<'e, E> {
    /// An empty assignment with room for variable indices `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        FlatAssignment {
            slots: vec![None; n],
            bound: 0,
        }
    }

    /// Binds `v` to a borrowed element, replacing any previous binding.
    pub fn bind(&mut self, v: Var, e: &'e E) -> &mut Self {
        let i = v.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        if self.slots[i].is_none() {
            self.bound += 1;
        }
        self.slots[i] = Some(e);
        self
    }

    /// Removes a binding, returning the borrow if one was present.
    pub fn unbind(&mut self, v: Var) -> Option<&'e E> {
        let slot = self.slots.get_mut(v.index())?;
        let old = slot.take();
        if old.is_some() {
            self.bound -= 1;
        }
        old
    }

    /// The element bound to `v`.
    pub fn get(&self, v: Var) -> Option<&'e E> {
        self.slots.get(v.index()).copied().flatten()
    }

    /// Whether `v` is bound.
    pub fn is_bound(&self, v: Var) -> bool {
        self.get(v).is_some()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bound
    }

    /// Whether there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.bound == 0
    }
}

impl<E> VarLookup<E> for FlatAssignment<'_, E> {
    fn lookup(&self, v: Var) -> Option<&E> {
        self.get(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_unbind() {
        let mut a: Assignment<u64> = Assignment::new();
        a.bind(Var(0), 5).bind(Var(1), 7);
        assert_eq!(a.get(Var(0)), Some(&5));
        assert!(a.is_bound(Var(1)));
        assert_eq!(a.len(), 2);
        assert_eq!(a.unbind(Var(0)), Some(5));
        assert!(!a.is_bound(Var(0)));
    }

    #[test]
    fn with_builder_and_iter() {
        let a = Assignment::new().with(Var(2), "x").with(Var(0), "y");
        let vars: Vec<Var> = a.vars().collect();
        assert_eq!(vars, vec![Var(0), Var(2)], "iteration in variable order");
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn rebinding_replaces() {
        let mut a: Assignment<i32> = Assignment::new();
        a.bind(Var(0), 1);
        a.bind(Var(0), 2);
        assert_eq!(a.get(Var(0)), Some(&2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn flat_bind_get_unbind() {
        let (x, y) = (5u64, 7u64);
        let mut a: FlatAssignment<'_, u64> = FlatAssignment::with_capacity(2);
        a.bind(Var(0), &x).bind(Var(1), &y);
        assert_eq!(a.get(Var(0)), Some(&5));
        assert!(a.is_bound(Var(1)));
        assert_eq!(a.len(), 2);
        assert_eq!(a.unbind(Var(0)), Some(&5));
        assert!(!a.is_bound(Var(0)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.unbind(Var(0)), None, "double unbind is a no-op");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn flat_grows_beyond_capacity() {
        let v = 3i32;
        let mut a: FlatAssignment<'_, i32> = FlatAssignment::with_capacity(1);
        a.bind(Var(9), &v);
        assert_eq!(a.get(Var(9)), Some(&3));
        assert_eq!(a.get(Var(4)), None);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn flat_rebinding_keeps_count() {
        let (x, y) = (1u8, 2u8);
        let mut a: FlatAssignment<'_, u8> = FlatAssignment::with_capacity(4);
        a.bind(Var(2), &x);
        a.bind(Var(2), &y);
        assert_eq!(a.get(Var(2)), Some(&2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn both_implementations_agree_through_var_lookup() {
        fn read<E, L: VarLookup<E>>(l: &L, v: Var) -> Option<&E> {
            l.lookup(v)
        }
        let owned = Assignment::new().with(Var(1), 42u64);
        let x = 42u64;
        let mut flat: FlatAssignment<'_, u64> = FlatAssignment::with_capacity(2);
        flat.bind(Var(1), &x);
        assert_eq!(read(&owned, Var(1)), read(&flat, Var(1)));
        assert_eq!(read(&owned, Var(0)), None);
        assert_eq!(read(&flat, Var(0)), None);
    }
}
