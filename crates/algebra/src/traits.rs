//! The [`BooleanAlgebra`] and [`Atomless`] traits.

/// A Boolean algebra `(B, 0, 1, ∧, ∨, ¬)`.
///
/// Implementors provide the five operations and a zero test; the order,
/// difference, symmetric difference and one test are derived. The algebra
/// itself is a *value* (not just a type) because concrete algebras carry
/// parameters — the width of a powerset algebra, the universe box of a
/// region algebra.
pub trait BooleanAlgebra {
    /// The element type.
    type Elem: Clone + PartialEq + std::fmt::Debug;

    /// The bottom element `0`.
    fn zero(&self) -> Self::Elem;

    /// The top element `1`.
    fn one(&self) -> Self::Elem;

    /// Meet `a ∧ b` (intersection).
    fn meet(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Join `a ∨ b` (union).
    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Complement `¬a`.
    fn complement(&self, a: &Self::Elem) -> Self::Elem;

    /// Whether `a = 0`. This is the one semantic predicate the constraint
    /// checker needs (`f = 0` / `g ≠ 0`).
    fn is_zero(&self, a: &Self::Elem) -> bool;

    /// Whether `a = 1`.
    fn is_one(&self, a: &Self::Elem) -> bool {
        self.is_zero(&self.complement(a))
    }

    /// Difference `a ∧ ¬b`.
    fn diff(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.meet(a, &self.complement(b))
    }

    /// Symmetric difference `(a ∧ ¬b) ∨ (¬a ∧ b)`.
    fn sym_diff(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.join(&self.diff(a, b), &self.diff(b, a))
    }

    /// The algebra order `a ≤ b  ⟺  a ∧ ¬b = 0`.
    fn le(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        self.is_zero(&self.diff(a, b))
    }

    /// Semantic equality `a = b ⟺ a ⊕ b = 0`.
    ///
    /// Concrete algebras whose `Elem: PartialEq` is already semantic may
    /// override this with `a == b`.
    fn eq_elem(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        self.is_zero(&self.sym_diff(a, b))
    }
}

/// An *atomless* Boolean algebra: no minimal nonzero elements.
///
/// Formally (paper, Definition before Theorem 6): `x ≠ 0` is atomic iff
/// there is no `y` with `0 < y < x`; an algebra is atomless iff it has no
/// atomic elements. The measure algebra of ℝᵏ is atomless, and on atomless
/// algebras the `proj` operator of the paper computes *exactly*
/// `∃x S` (Theorem 7) rather than merely its best approximation.
pub trait Atomless: BooleanAlgebra {
    /// For a nonzero `a`, returns some `b` with `0 < b < a`.
    ///
    /// Returns `None` only when `a = 0`. The existence of such a `b` for
    /// every nonzero `a` *is* atomlessness, so this method doubles as the
    /// constructive witness used by the independence-theorem tests.
    fn proper_part(&self, a: &Self::Elem) -> Option<Self::Elem>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bool2::Bool2;

    #[test]
    fn derived_operations_on_bool2() {
        let a = Bool2;
        assert!(a.le(&false, &true));
        assert!(!a.le(&true, &false));
        assert!(a.eq_elem(&true, &true));
        assert!(!a.eq_elem(&true, &false));
        assert!(!a.diff(&true, &true));
        assert!(a.sym_diff(&true, &false));
        assert!(a.is_one(&true));
        assert!(!a.is_one(&false));
    }
}
