//! The two-element Boolean algebra.

use crate::traits::BooleanAlgebra;

/// The two-valued algebra `{0, 1}`.
///
/// The paper points out that over `Bool2` negative constraints add no
/// power, because `x ≠ 0` is equivalent to `¬x = 0`; the tests below pin
/// that down. `Bool2` is atomic (its single nonzero element `1` is an
/// atom), so it is *not* [`crate::Atomless`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bool2;

impl BooleanAlgebra for Bool2 {
    type Elem = bool;

    fn zero(&self) -> bool {
        false
    }

    fn one(&self) -> bool {
        true
    }

    fn meet(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }

    fn join(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }

    fn complement(&self, a: &bool) -> bool {
        !*a
    }

    fn is_zero(&self, a: &bool) -> bool {
        !*a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn satisfies_boolean_algebra_laws() {
        let elems = [false, true];
        laws::check_all(&Bool2, &elems);
    }

    #[test]
    fn negative_constraints_collapse() {
        // x ≠ 0 ⟺ ¬x = 0 in the two-valued algebra.
        let a = Bool2;
        for x in [false, true] {
            let neq_zero = !a.is_zero(&x);
            let comp_eq_zero = a.is_zero(&a.complement(&x));
            assert_eq!(neq_zero, comp_eq_zero);
        }
    }
}
