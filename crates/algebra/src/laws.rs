//! Reusable Boolean-algebra law checkers.
//!
//! Every concrete algebra in the workspace (including `scq-region`'s
//! geometric algebra) runs these checks over a sample of elements; they
//! exhaustively verify the Huntington axioms plus useful derived laws on
//! all pairs/triples drawn from the sample.

use crate::traits::BooleanAlgebra;

/// Checks commutativity, associativity, absorption, distributivity,
/// identity, complementation, De Morgan and involution over all
/// pairs/triples from `elems`.
///
/// # Panics
/// On the first violated law, with a message naming it.
pub fn check_all<A: BooleanAlgebra>(alg: &A, elems: &[A::Elem]) {
    check_constants(alg);
    for a in elems {
        check_unary(alg, a);
        for b in elems {
            check_binary(alg, a, b);
            for c in elems {
                check_ternary(alg, a, b, c);
            }
        }
    }
}

/// `0 ≠ 1` sanity and constant behaviour.
pub fn check_constants<A: BooleanAlgebra>(alg: &A) {
    assert!(alg.is_zero(&alg.zero()), "0 must be zero");
    assert!(
        !alg.is_zero(&alg.one()),
        "1 must not be zero (degenerate algebra)"
    );
    assert!(alg.is_one(&alg.one()), "1 must be one");
    assert!(
        alg.eq_elem(&alg.complement(&alg.zero()), &alg.one()),
        "~0 = 1"
    );
    assert!(
        alg.eq_elem(&alg.complement(&alg.one()), &alg.zero()),
        "~1 = 0"
    );
}

/// Laws in one element.
pub fn check_unary<A: BooleanAlgebra>(alg: &A, a: &A::Elem) {
    let not_a = alg.complement(a);
    assert!(alg.is_zero(&alg.meet(a, &not_a)), "a & ~a = 0");
    assert!(alg.is_one(&alg.join(a, &not_a)), "a | ~a = 1");
    assert!(alg.eq_elem(&alg.complement(&not_a), a), "~~a = a");
    assert!(alg.eq_elem(&alg.meet(a, a), a), "idempotence of meet");
    assert!(alg.eq_elem(&alg.join(a, a), a), "idempotence of join");
    assert!(alg.eq_elem(&alg.meet(a, &alg.one()), a), "a & 1 = a");
    assert!(alg.eq_elem(&alg.join(a, &alg.zero()), a), "a | 0 = a");
    assert!(alg.is_zero(&alg.meet(a, &alg.zero())), "a & 0 = 0");
    assert!(alg.is_one(&alg.join(a, &alg.one())), "a | 1 = 1");
    assert!(alg.le(&alg.zero(), a), "0 ≤ a");
    assert!(alg.le(a, &alg.one()), "a ≤ 1");
    assert!(alg.le(a, a), "reflexivity");
}

/// Laws in two elements.
pub fn check_binary<A: BooleanAlgebra>(alg: &A, a: &A::Elem, b: &A::Elem) {
    assert!(
        alg.eq_elem(&alg.meet(a, b), &alg.meet(b, a)),
        "meet commutes"
    );
    assert!(
        alg.eq_elem(&alg.join(a, b), &alg.join(b, a)),
        "join commutes"
    );
    // absorption
    assert!(
        alg.eq_elem(&alg.meet(a, &alg.join(a, b)), a),
        "a & (a|b) = a"
    );
    assert!(
        alg.eq_elem(&alg.join(a, &alg.meet(a, b)), a),
        "a | (a&b) = a"
    );
    // De Morgan
    assert!(
        alg.eq_elem(
            &alg.complement(&alg.meet(a, b)),
            &alg.join(&alg.complement(a), &alg.complement(b))
        ),
        "~(a&b) = ~a | ~b"
    );
    assert!(
        alg.eq_elem(
            &alg.complement(&alg.join(a, b)),
            &alg.meet(&alg.complement(a), &alg.complement(b))
        ),
        "~(a|b) = ~a & ~b"
    );
    // order is antisymmetric w.r.t. semantic equality
    if alg.le(a, b) && alg.le(b, a) {
        assert!(alg.eq_elem(a, b), "antisymmetry");
    }
    // meet is the infimum
    assert!(alg.le(&alg.meet(a, b), a), "a&b ≤ a");
    assert!(alg.le(a, &alg.join(a, b)), "a ≤ a|b");
}

/// Laws in three elements.
pub fn check_ternary<A: BooleanAlgebra>(alg: &A, a: &A::Elem, b: &A::Elem, c: &A::Elem) {
    assert!(
        alg.eq_elem(&alg.meet(a, &alg.meet(b, c)), &alg.meet(&alg.meet(a, b), c)),
        "meet associates"
    );
    assert!(
        alg.eq_elem(&alg.join(a, &alg.join(b, c)), &alg.join(&alg.join(a, b), c)),
        "join associates"
    );
    assert!(
        alg.eq_elem(
            &alg.meet(a, &alg.join(b, c)),
            &alg.join(&alg.meet(a, b), &alg.meet(a, c))
        ),
        "meet distributes over join"
    );
    assert!(
        alg.eq_elem(
            &alg.join(a, &alg.meet(b, c)),
            &alg.meet(&alg.join(a, b), &alg.join(a, c))
        ),
        "join distributes over meet"
    );
}

/// Checks that [`crate::Atomless::proper_part`] really witnesses
/// atomlessness on the given sample: for nonzero `a` it returns `b` with
/// `0 < b < a`, and for zero it returns `None`.
pub fn check_atomless<A: crate::Atomless>(alg: &A, elems: &[A::Elem]) {
    assert!(
        alg.proper_part(&alg.zero()).is_none(),
        "zero has no proper part"
    );
    for a in elems {
        if alg.is_zero(a) {
            continue;
        }
        let b = alg
            .proper_part(a)
            .unwrap_or_else(|| panic!("nonzero element {a:?} must have a proper part"));
        assert!(!alg.is_zero(&b), "proper part must be nonzero");
        assert!(alg.le(&b, a), "proper part must be below");
        assert!(!alg.eq_elem(&b, a), "proper part must be strict");
    }
}
