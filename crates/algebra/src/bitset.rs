//! The finite powerset algebra `2^{0..n}` represented as bit masks.
//!
//! This algebra is **atomic** — the singletons are atoms — which makes it
//! the natural stage for the paper's non-closure example: the system
//! `∃x (x·¬y = 0 ∧ x ≠ 0 ∧ y·¬x ≠ 0)` forces `|y| ≥ 2`, a condition no
//! Boolean constraint over `y` can express, so `proj` is a strict
//! over-approximation here (and exact on atomless algebras).

use crate::traits::BooleanAlgebra;

/// The powerset algebra of `{0, 1, …, width-1}` with `width ≤ 64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitsetAlgebra {
    width: u32,
}

impl BitsetAlgebra {
    /// Creates the powerset algebra of a `width`-element set.
    ///
    /// # Panics
    /// If `width > 64` or `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        BitsetAlgebra { width }
    }

    /// Number of ground elements.
    pub fn width(&self) -> u32 {
        self.width
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// The singleton `{i}`.
    pub fn singleton(&self, i: u32) -> u64 {
        assert!(i < self.width);
        1u64 << i
    }

    /// Number of ground elements in `a`.
    pub fn cardinality(&self, a: u64) -> u32 {
        (a & self.mask()).count_ones()
    }

    /// Iterates over all `2^width` elements (careful: exponential).
    pub fn elements(&self) -> impl Iterator<Item = u64> {
        let m = self.mask();
        (0..=m).take_while(move |&x| x <= m)
    }

    /// The atoms (singletons) of the algebra.
    pub fn atoms(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.width).map(|i| 1u64 << i)
    }
}

impl BooleanAlgebra for BitsetAlgebra {
    type Elem = u64;

    fn zero(&self) -> u64 {
        0
    }

    fn one(&self) -> u64 {
        self.mask()
    }

    fn meet(&self, a: &u64, b: &u64) -> u64 {
        a & b
    }

    fn join(&self, a: &u64, b: &u64) -> u64 {
        a | b
    }

    fn complement(&self, a: &u64) -> u64 {
        !a & self.mask()
    }

    fn is_zero(&self, a: &u64) -> bool {
        a & self.mask() == 0
    }

    fn eq_elem(&self, a: &u64, b: &u64) -> bool {
        a & self.mask() == b & self.mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn laws_hold_on_width_4() {
        let a = BitsetAlgebra::new(4);
        let elems: Vec<u64> = a.elements().collect();
        assert_eq!(elems.len(), 16);
        laws::check_all(&a, &elems);
    }

    #[test]
    fn laws_hold_on_width_64() {
        let a = BitsetAlgebra::new(64);
        let elems = [0u64, u64::MAX, 0xDEAD_BEEF, 1 << 63, 0x0F0F_F0F0_1234_5678];
        laws::check_all(&a, &elems);
    }

    #[test]
    fn atoms_are_atomic() {
        // An atom has no proper nonzero subset.
        let a = BitsetAlgebra::new(5);
        for atom in a.atoms() {
            for e in a.elements() {
                let below = a.le(&e, &atom);
                assert!(
                    !(below && !a.is_zero(&e) && e != atom),
                    "atom {atom:b} has proper part {e:b}"
                );
            }
        }
    }

    #[test]
    fn cardinality_and_singletons() {
        let a = BitsetAlgebra::new(8);
        let s = a.join(&a.singleton(1), &a.singleton(5));
        assert_eq!(a.cardinality(s), 2);
        assert!(a.le(&a.singleton(1), &s));
        assert!(!a.le(&a.singleton(2), &s));
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn rejects_zero_width() {
        BitsetAlgebra::new(0);
    }

    #[test]
    fn complement_respects_mask() {
        let a = BitsetAlgebra::new(3);
        assert_eq!(a.complement(&0b101), 0b010);
        assert!(a.is_one(&0b111));
    }
}
