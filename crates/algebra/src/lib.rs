#![warn(missing_docs)]

//! Boolean algebras as first-class values, and evaluation of symbolic
//! formulas and constraint systems inside them.
//!
//! The paper's constraint language is interpreted over an arbitrary Boolean
//! algebra — typically the (atomless) algebra of measurable subsets of ℝᵏ,
//! but also finite powerset algebras and the two-valued algebra. This crate
//! provides:
//!
//! * [`BooleanAlgebra`] — the operations `0, 1, ∧, ∨, ¬` plus a zero test,
//!   with the derived order `≤`, difference and symmetric difference;
//! * [`Atomless`] — the property the paper's Theorems 6–8 rely on: every
//!   nonzero element strictly contains a nonzero element;
//! * [`Bool2`] — the two-element algebra (where negative constraints add
//!   no expressive power, as the paper remarks);
//! * [`BitsetAlgebra`] — the finite powerset algebra `2^n` (atomic!), used
//!   to exhibit the paper's non-closure example `|y| ≥ 2`;
//! * [`eval_formula`] / [`Assignment`] — algebra-generic evaluation;
//! * [`laws`] — reusable law checkers (commutativity, distributivity,
//!   De Morgan, complementation …) used by the tests of every concrete
//!   algebra, including `scq-region`'s.

pub mod assignment;
pub mod bitset;
pub mod bool2;
pub mod eval;
pub mod laws;
pub mod traits;

pub use assignment::{Assignment, FlatAssignment, VarLookup};
pub use bitset::BitsetAlgebra;
pub use bool2::Bool2;
pub use eval::{eval_formula, eval_formula_in, eval_sop, Val};
pub use traits::{Atomless, BooleanAlgebra};
