//! Algebra-generic evaluation of symbolic formulas.

use scq_boolean::cube::Sop;
use scq_boolean::{Formula, Var};

use crate::assignment::Assignment;
use crate::traits::BooleanAlgebra;

/// Error for evaluation under an incomplete assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnboundVar(pub Var);

impl std::fmt::Display for UnboundVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variable {} is not bound", self.0)
    }
}

impl std::error::Error for UnboundVar {}

/// Evaluates `f` in `alg` under `assign`.
///
/// Every variable occurring in `f` must be bound; otherwise the first
/// unbound variable is reported.
pub fn eval_formula<A: BooleanAlgebra>(
    alg: &A,
    f: &Formula,
    assign: &Assignment<A::Elem>,
) -> Result<A::Elem, UnboundVar> {
    match f {
        Formula::Zero => Ok(alg.zero()),
        Formula::One => Ok(alg.one()),
        Formula::Var(v) => assign.get(*v).cloned().ok_or(UnboundVar(*v)),
        Formula::Not(g) => Ok(alg.complement(&eval_formula(alg, g, assign)?)),
        Formula::And(a, b) => {
            let x = eval_formula(alg, a, assign)?;
            if alg.is_zero(&x) {
                return Ok(alg.zero()); // short-circuit: 0 ∧ _ = 0
            }
            let y = eval_formula(alg, b, assign)?;
            Ok(alg.meet(&x, &y))
        }
        Formula::Or(a, b) => {
            let x = eval_formula(alg, a, assign)?;
            let y = eval_formula(alg, b, assign)?;
            Ok(alg.join(&x, &y))
        }
    }
}

/// Evaluates a sum-of-products form in `alg` under `assign`.
pub fn eval_sop<A: BooleanAlgebra>(
    alg: &A,
    s: &Sop,
    assign: &Assignment<A::Elem>,
) -> Result<A::Elem, UnboundVar> {
    let mut acc = alg.zero();
    for cube in s.cubes() {
        let mut term = alg.one();
        for lit in cube.literals() {
            let e = assign.get(lit.var).cloned().ok_or(UnboundVar(lit.var))?;
            let e = if lit.positive { e } else { alg.complement(&e) };
            term = alg.meet(&term, &e);
            if alg.is_zero(&term) {
                break;
            }
        }
        acc = alg.join(&acc, &term);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitsetAlgebra;
    use crate::bool2::Bool2;
    use scq_boolean::formula_to_sop;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn matches_two_valued_eval() {
        let f = Formula::or(Formula::and(v(0), Formula::not(v(1))), v(2));
        for bits in 0u32..8 {
            let mut assign = Assignment::new();
            for i in 0..3 {
                assign.bind(Var(i), bits >> i & 1 == 1);
            }
            let got = eval_formula(&Bool2, &f, &assign).unwrap();
            assert_eq!(got, f.eval2(|x| bits >> x.0 & 1 == 1));
        }
    }

    #[test]
    fn unbound_variable_is_reported() {
        let f = Formula::and(v(0), v(7));
        let assign = Assignment::new().with(Var(0), true);
        assert_eq!(eval_formula(&Bool2, &f, &assign), Err(UnboundVar(Var(7))));
    }

    #[test]
    fn short_circuit_skips_unbound_branch() {
        // 0 ∧ x7 with x7 unbound: fine, because the meet is already 0.
        let f = Formula::And(
            std::sync::Arc::new(Formula::Zero),
            std::sync::Arc::new(v(7)),
        );
        let assign: Assignment<bool> = Assignment::new();
        assert_eq!(eval_formula(&Bool2, &f, &assign), Ok(false));
    }

    #[test]
    fn bitset_evaluation() {
        let alg = BitsetAlgebra::new(8);
        // f = (x ∧ ¬y) ∨ z over concrete sets
        let f = Formula::or(Formula::and(v(0), Formula::not(v(1))), v(2));
        let assign = Assignment::new()
            .with(Var(0), 0b1111_0000u64)
            .with(Var(1), 0b1100_0000u64)
            .with(Var(2), 0b0000_0011u64);
        let got = eval_formula(&alg, &f, &assign).unwrap();
        assert_eq!(got, 0b0011_0011);
    }

    #[test]
    fn sop_eval_agrees_with_formula_eval() {
        let alg = BitsetAlgebra::new(6);
        let f = Formula::or(
            Formula::and(v(0), Formula::not(v(1))),
            Formula::and(v(1), v(2)),
        );
        let s = formula_to_sop(&f);
        let assign = Assignment::new()
            .with(Var(0), 0b10_1010u64)
            .with(Var(1), 0b11_0011u64)
            .with(Var(2), 0b01_0110u64);
        let via_f = eval_formula(&alg, &f, &assign).unwrap();
        let via_s = eval_sop(&alg, &s, &assign).unwrap();
        assert!(alg.eq_elem(&via_f, &via_s));
    }

    #[test]
    fn sop_eval_reports_unbound() {
        let alg = BitsetAlgebra::new(4);
        let s = formula_to_sop(&Formula::and(v(0), v(3)));
        let assign = Assignment::new().with(Var(0), 0b1u64);
        assert_eq!(eval_sop(&alg, &s, &assign), Err(UnboundVar(Var(3))));
    }

    #[test]
    fn constants_need_no_bindings() {
        let alg = BitsetAlgebra::new(4);
        let assign: Assignment<u64> = Assignment::new();
        assert_eq!(eval_formula(&alg, &Formula::One, &assign), Ok(alg.one()));
        assert_eq!(eval_formula(&alg, &Formula::Zero, &assign), Ok(0));
    }
}
