//! Algebra-generic evaluation of symbolic formulas.
//!
//! Two entry points: [`eval_formula`] returns an owned element (cloning
//! at variable leaves), while [`eval_formula_in`] works over any
//! [`VarLookup`] and returns a [`Val`] that borrows leaf elements — the
//! executors' zero-clone path, where a formula that reduces to a single
//! variable never copies the (potentially fragment-heavy) element.

use scq_boolean::cube::Sop;
use scq_boolean::{Formula, Var};

use crate::assignment::{Assignment, VarLookup};
use crate::traits::BooleanAlgebra;

/// An evaluation result that is either a borrow of a bound element or
/// an owned intermediate — `Cow` without the `ToOwned` machinery.
#[derive(Debug)]
pub enum Val<'a, E> {
    /// A borrow of an element bound in the assignment.
    Ref(&'a E),
    /// An element computed during evaluation.
    Owned(E),
}

impl<E> AsRef<E> for Val<'_, E> {
    fn as_ref(&self) -> &E {
        match self {
            Val::Ref(e) => e,
            Val::Owned(e) => e,
        }
    }
}

impl<E> Val<'_, E> {
    /// The owned value, cloning only in the borrowed case.
    pub fn into_owned(self) -> E
    where
        E: Clone,
    {
        match self {
            Val::Ref(e) => e.clone(),
            Val::Owned(e) => e,
        }
    }
}

/// Evaluates `f` in `alg` over any assignment storage, without cloning
/// elements at variable leaves.
///
/// Every variable occurring in `f` must be bound; otherwise the first
/// unbound variable is reported.
pub fn eval_formula_in<'l, A: BooleanAlgebra, L: VarLookup<A::Elem>>(
    alg: &A,
    f: &Formula,
    lookup: &'l L,
) -> Result<Val<'l, A::Elem>, UnboundVar> {
    match f {
        Formula::Zero => Ok(Val::Owned(alg.zero())),
        Formula::One => Ok(Val::Owned(alg.one())),
        Formula::Var(v) => lookup.lookup(*v).map(Val::Ref).ok_or(UnboundVar(*v)),
        Formula::Not(g) => {
            let x = eval_formula_in(alg, g, lookup)?;
            Ok(Val::Owned(alg.complement(x.as_ref())))
        }
        Formula::And(a, b) => {
            let x = eval_formula_in(alg, a, lookup)?;
            if alg.is_zero(x.as_ref()) {
                return Ok(Val::Owned(alg.zero())); // short-circuit: 0 ∧ _ = 0
            }
            let y = eval_formula_in(alg, b, lookup)?;
            Ok(Val::Owned(alg.meet(x.as_ref(), y.as_ref())))
        }
        Formula::Or(a, b) => {
            let x = eval_formula_in(alg, a, lookup)?;
            let y = eval_formula_in(alg, b, lookup)?;
            Ok(Val::Owned(alg.join(x.as_ref(), y.as_ref())))
        }
    }
}

/// Error for evaluation under an incomplete assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnboundVar(pub Var);

impl std::fmt::Display for UnboundVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variable {} is not bound", self.0)
    }
}

impl std::error::Error for UnboundVar {}

/// Evaluates `f` in `alg` under `assign`.
///
/// Every variable occurring in `f` must be bound; otherwise the first
/// unbound variable is reported.
pub fn eval_formula<A: BooleanAlgebra>(
    alg: &A,
    f: &Formula,
    assign: &Assignment<A::Elem>,
) -> Result<A::Elem, UnboundVar> {
    eval_formula_in(alg, f, assign).map(Val::into_owned)
}

/// Evaluates a sum-of-products form in `alg` under `assign`.
pub fn eval_sop<A: BooleanAlgebra>(
    alg: &A,
    s: &Sop,
    assign: &Assignment<A::Elem>,
) -> Result<A::Elem, UnboundVar> {
    let mut acc = alg.zero();
    for cube in s.cubes() {
        let mut term = alg.one();
        for lit in cube.literals() {
            let e = assign.get(lit.var).cloned().ok_or(UnboundVar(lit.var))?;
            let e = if lit.positive { e } else { alg.complement(&e) };
            term = alg.meet(&term, &e);
            if alg.is_zero(&term) {
                break;
            }
        }
        acc = alg.join(&acc, &term);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitsetAlgebra;
    use crate::bool2::Bool2;
    use scq_boolean::formula_to_sop;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn matches_two_valued_eval() {
        let f = Formula::or(Formula::and(v(0), Formula::not(v(1))), v(2));
        for bits in 0u32..8 {
            let mut assign = Assignment::new();
            for i in 0..3 {
                assign.bind(Var(i), bits >> i & 1 == 1);
            }
            let got = eval_formula(&Bool2, &f, &assign).unwrap();
            assert_eq!(got, f.eval2(|x| bits >> x.0 & 1 == 1));
        }
    }

    #[test]
    fn unbound_variable_is_reported() {
        let f = Formula::and(v(0), v(7));
        let assign = Assignment::new().with(Var(0), true);
        assert_eq!(eval_formula(&Bool2, &f, &assign), Err(UnboundVar(Var(7))));
    }

    #[test]
    fn short_circuit_skips_unbound_branch() {
        // 0 ∧ x7 with x7 unbound: fine, because the meet is already 0.
        let f = Formula::And(
            std::sync::Arc::new(Formula::Zero),
            std::sync::Arc::new(v(7)),
        );
        let assign: Assignment<bool> = Assignment::new();
        assert_eq!(eval_formula(&Bool2, &f, &assign), Ok(false));
    }

    #[test]
    fn bitset_evaluation() {
        let alg = BitsetAlgebra::new(8);
        // f = (x ∧ ¬y) ∨ z over concrete sets
        let f = Formula::or(Formula::and(v(0), Formula::not(v(1))), v(2));
        let assign = Assignment::new()
            .with(Var(0), 0b1111_0000u64)
            .with(Var(1), 0b1100_0000u64)
            .with(Var(2), 0b0000_0011u64);
        let got = eval_formula(&alg, &f, &assign).unwrap();
        assert_eq!(got, 0b0011_0011);
    }

    #[test]
    fn sop_eval_agrees_with_formula_eval() {
        let alg = BitsetAlgebra::new(6);
        let f = Formula::or(
            Formula::and(v(0), Formula::not(v(1))),
            Formula::and(v(1), v(2)),
        );
        let s = formula_to_sop(&f);
        let assign = Assignment::new()
            .with(Var(0), 0b10_1010u64)
            .with(Var(1), 0b11_0011u64)
            .with(Var(2), 0b01_0110u64);
        let via_f = eval_formula(&alg, &f, &assign).unwrap();
        let via_s = eval_sop(&alg, &s, &assign).unwrap();
        assert!(alg.eq_elem(&via_f, &via_s));
    }

    #[test]
    fn sop_eval_reports_unbound() {
        let alg = BitsetAlgebra::new(4);
        let s = formula_to_sop(&Formula::and(v(0), v(3)));
        let assign = Assignment::new().with(Var(0), 0b1u64);
        assert_eq!(eval_sop(&alg, &s, &assign), Err(UnboundVar(Var(3))));
    }

    #[test]
    fn borrowed_eval_matches_owned_eval() {
        use crate::assignment::FlatAssignment;
        let alg = BitsetAlgebra::new(8);
        let f = Formula::or(Formula::and(v(0), Formula::not(v(1))), v(2));
        let (e0, e1, e2) = (0b1111_0000u64, 0b1100_0000u64, 0b0000_0011u64);
        let owned = Assignment::new()
            .with(Var(0), e0)
            .with(Var(1), e1)
            .with(Var(2), e2);
        let mut flat: FlatAssignment<'_, u64> = FlatAssignment::with_capacity(3);
        flat.bind(Var(0), &e0).bind(Var(1), &e1).bind(Var(2), &e2);
        let a = eval_formula(&alg, &f, &owned).unwrap();
        let b = eval_formula_in(&alg, &f, &flat).unwrap();
        assert_eq!(a, *b.as_ref());
        assert_eq!(a, b.into_owned());
    }

    #[test]
    fn borrowed_eval_returns_leaf_by_reference() {
        use crate::assignment::FlatAssignment;
        let alg = BitsetAlgebra::new(4);
        let e = 0b1010u64;
        let mut flat: FlatAssignment<'_, u64> = FlatAssignment::with_capacity(1);
        flat.bind(Var(0), &e);
        match eval_formula_in(&alg, &Formula::var(Var(0)), &flat).unwrap() {
            Val::Ref(r) => assert!(std::ptr::eq(r, &e), "leaf is the bound element itself"),
            Val::Owned(_) => panic!("variable leaf must not be copied"),
        }
    }

    #[test]
    fn borrowed_eval_reports_unbound() {
        use crate::assignment::FlatAssignment;
        let alg = BitsetAlgebra::new(2);
        let flat: FlatAssignment<'_, u64> = FlatAssignment::with_capacity(2);
        match eval_formula_in(&alg, &Formula::var(Var(1)), &flat) {
            Err(UnboundVar(v)) => assert_eq!(v, Var(1)),
            other => panic!("expected unbound error, got {other:?}"),
        }
    }

    #[test]
    fn constants_need_no_bindings() {
        let alg = BitsetAlgebra::new(4);
        let assign: Assignment<u64> = Assignment::new();
        assert_eq!(eval_formula(&alg, &Formula::One, &assign), Ok(alg.one()));
        assert_eq!(eval_formula(&alg, &Formula::Zero, &assign), Ok(0));
    }
}
