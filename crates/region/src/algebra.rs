//! [`RegionAlgebra`]: the Boolean algebra of regions inside a universe
//! box, with the atomlessness witness required by the paper's Theorem 7.

use scq_algebra::{Atomless, BooleanAlgebra};

use crate::aabox::AaBox;
use crate::region::Region;

/// The Boolean algebra of sub-regions of a fixed universe box.
///
/// `1` is the universe, `0` the empty region, meet/join/complement the
/// exact geometric operations. Elements are expected to be subsets of the
/// universe; [`RegionAlgebra::clamp`] restricts arbitrary regions.
///
/// Over `f64` coordinates this algebra is atomless for every universe
/// with positive volume: any nonempty region contains a strictly smaller
/// nonempty region (half of one of its fragments). This is the concrete
/// stage on which the paper's `proj` is *exact* (Theorem 7), not merely
/// the best approximation.
#[derive(Clone, Copy, Debug)]
pub struct RegionAlgebra<const K: usize> {
    universe: AaBox<K>,
}

impl<const K: usize> RegionAlgebra<K> {
    /// Creates the algebra with the given universe.
    ///
    /// # Panics
    /// If the universe is empty (the algebra would be degenerate).
    pub fn new(universe: AaBox<K>) -> Self {
        assert!(!universe.is_empty(), "universe must be nonempty");
        RegionAlgebra { universe }
    }

    /// The universe box.
    pub fn universe(&self) -> &AaBox<K> {
        &self.universe
    }

    /// Restricts a region to the universe.
    pub fn clamp(&self, r: &Region<K>) -> Region<K> {
        r.intersection(&Region::from_box(self.universe))
    }
}

impl<const K: usize> BooleanAlgebra for RegionAlgebra<K> {
    type Elem = Region<K>;

    fn zero(&self) -> Region<K> {
        Region::empty()
    }

    fn one(&self) -> Region<K> {
        Region::from_box(self.universe)
    }

    fn meet(&self, a: &Region<K>, b: &Region<K>) -> Region<K> {
        a.intersection(b)
    }

    fn join(&self, a: &Region<K>, b: &Region<K>) -> Region<K> {
        a.union(b)
    }

    fn complement(&self, a: &Region<K>) -> Region<K> {
        a.complement_in(&self.universe)
    }

    fn is_zero(&self, a: &Region<K>) -> bool {
        a.is_empty()
    }

    fn diff(&self, a: &Region<K>, b: &Region<K>) -> Region<K> {
        a.difference(b) // avoid materializing the complement
    }

    fn le(&self, a: &Region<K>, b: &Region<K>) -> bool {
        a.subset_of(b)
    }

    fn eq_elem(&self, a: &Region<K>, b: &Region<K>) -> bool {
        a.same_set(b)
    }
}

impl<const K: usize> Atomless for RegionAlgebra<K> {
    fn proper_part(&self, a: &Region<K>) -> Option<Region<K>> {
        let first = a.boxes().first()?;
        first.halve().map(|(left, _right)| Region::from_box(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_algebra::laws;

    fn alg() -> RegionAlgebra<2> {
        RegionAlgebra::new(AaBox::new([0.0, 0.0], [10.0, 10.0]))
    }

    fn sample_elems(a: &RegionAlgebra<2>) -> Vec<Region<2>> {
        let b = |lo: [f64; 2], hi: [f64; 2]| AaBox::new(lo, hi);
        vec![
            a.zero(),
            a.one(),
            Region::from_box(b([0.0, 0.0], [5.0, 5.0])),
            Region::from_box(b([2.0, 2.0], [8.0, 4.0])),
            Region::from_boxes([b([1.0, 1.0], [3.0, 3.0]), b([6.0, 6.0], [9.0, 9.0])]),
            Region::from_boxes([b([0.0, 4.0], [10.0, 6.0]), b([4.0, 0.0], [6.0, 10.0])]),
        ]
    }

    #[test]
    fn boolean_algebra_laws_hold() {
        let a = alg();
        let elems = sample_elems(&a);
        laws::check_all(&a, &elems);
    }

    #[test]
    fn atomless_witness() {
        let a = alg();
        let elems = sample_elems(&a);
        laws::check_atomless(&a, &elems);
    }

    #[test]
    fn repeated_halving_descends_forever() {
        // atomlessness in action: a strictly descending chain of nonzero
        // elements, impossible in an atomic algebra.
        let a = alg();
        let mut cur = a.one();
        for _ in 0..50 {
            let next = a.proper_part(&cur).expect("nonzero has a proper part");
            assert!(a.le(&next, &cur));
            assert!(!a.eq_elem(&next, &cur));
            assert!(!a.is_zero(&next));
            cur = next;
        }
    }

    #[test]
    fn clamp_restricts() {
        let a = alg();
        let big = Region::from_box(AaBox::new([-5.0, -5.0], [15.0, 15.0]));
        let clamped = a.clamp(&big);
        assert!(a.eq_elem(&clamped, &a.one()));
    }

    #[test]
    #[should_panic(expected = "universe must be nonempty")]
    fn degenerate_universe_rejected() {
        RegionAlgebra::new(AaBox::<2>::empty());
    }

    #[test]
    fn diff_override_consistent() {
        let a = alg();
        let elems = sample_elems(&a);
        for x in &elems {
            for y in &elems {
                let direct = a.diff(x, y);
                let via_complement = x.intersection(&a.complement(y));
                assert!(a.eq_elem(&direct, &via_complement));
            }
        }
    }
}
