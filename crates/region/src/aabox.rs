//! Half-open axis-aligned boxes `[lo, hi)`.

use scq_bbox::Bbox;

/// A half-open axis-aligned box `∏ᵢ [loᵢ, hiᵢ)`.
///
/// The box is *empty* iff `lo[d] >= hi[d]` in some dimension. Half-open
/// semantics make box subtraction exact: the fragments of `a \ b`
/// partition `a \ b` with no overlap and no sliver double-counting.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AaBox<const K: usize> {
    lo: [f64; K],
    hi: [f64; K],
}

impl<const K: usize> AaBox<K> {
    /// Creates a box. Coordinates must be finite.
    ///
    /// # Panics
    /// If any coordinate is not finite (debug builds assert; release
    /// builds propagate NaN poison through comparisons, so we always
    /// check).
    pub fn new(lo: [f64; K], hi: [f64; K]) -> Self {
        assert!(
            lo.iter().chain(hi.iter()).all(|c| c.is_finite()),
            "box coordinates must be finite"
        );
        AaBox { lo, hi }
    }

    /// A canonical empty box.
    pub fn empty() -> Self {
        AaBox {
            lo: [0.0; K],
            hi: [0.0; K],
        }
    }

    /// Lower corner (inclusive).
    pub fn lo(&self) -> [f64; K] {
        self.lo
    }

    /// Upper corner (exclusive).
    pub fn hi(&self) -> [f64; K] {
        self.hi
    }

    /// Whether the box contains no points.
    pub fn is_empty(&self) -> bool {
        (0..K).any(|d| self.lo[d] >= self.hi[d])
    }

    /// Whether `p` lies inside (half-open bounds).
    pub fn contains_point(&self, p: &[f64; K]) -> bool {
        (0..K).all(|d| self.lo[d] <= p[d] && p[d] < self.hi[d])
    }

    /// Whether `other ⊆ self`. The empty box is contained in everything.
    pub fn contains_box(&self, other: &AaBox<K>) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        (0..K).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Geometric intersection; `None` when empty.
    pub fn intersection(&self, other: &AaBox<K>) -> Option<AaBox<K>> {
        let mut lo = [0.0; K];
        let mut hi = [0.0; K];
        for d in 0..K {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
            if lo[d] >= hi[d] {
                return None;
            }
        }
        Some(AaBox { lo, hi })
    }

    /// Whether the boxes share any point (half-open test).
    pub fn intersects(&self, other: &AaBox<K>) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && (0..K).all(|d| self.lo[d] < other.hi[d] && other.lo[d] < self.hi[d])
    }

    /// Lebesgue measure: the product of side lengths (0 when empty).
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (0..K).map(|d| self.hi[d] - self.lo[d]).product()
        }
    }

    /// The fragments of `self \ cut`, pairwise disjoint, at most `2K`.
    ///
    /// Standard axis sweep: for each dimension the parts of `self`
    /// strictly below/above `cut` are split off whole, and the remaining
    /// core is narrowed to `cut`'s extent in that dimension.
    pub fn subtract(&self, cut: &AaBox<K>) -> Vec<AaBox<K>> {
        if self.is_empty() {
            return Vec::new();
        }
        let inter = match self.intersection(cut) {
            None => return vec![*self],
            Some(i) => i,
        };
        let mut out = Vec::new();
        let mut core = *self;
        for d in 0..K {
            // part below cut in dimension d
            if core.lo[d] < inter.lo[d] {
                let mut frag = core;
                frag.hi[d] = inter.lo[d];
                out.push(frag);
            }
            // part above cut in dimension d
            if inter.hi[d] < core.hi[d] {
                let mut frag = core;
                frag.lo[d] = inter.hi[d];
                out.push(frag);
            }
            // narrow the core to cut's slab
            core.lo[d] = inter.lo[d];
            core.hi[d] = inter.hi[d];
        }
        out
    }

    /// The closed bounding box `⌈·⌉` of this half-open box.
    ///
    /// The half-open box `[lo, hi)` has closure `[lo, hi]`; using the
    /// closed box is the standard over-approximation and what R-trees
    /// store.
    pub fn bbox(&self) -> Bbox<K> {
        if self.is_empty() {
            Bbox::Empty
        } else {
            Bbox::new(self.lo, self.hi)
        }
    }

    /// Splits the box in half along its longest dimension.
    ///
    /// Returns `None` when empty. Degenerate halving (midpoint equal to
    /// an endpoint due to floating-point underflow) cannot happen for
    /// nonempty boxes with finite coordinates because `lo < hi` implies
    /// `lo < midpoint < hi` in IEEE-754 arithmetic whenever
    /// `midpoint = lo/2 + hi/2` — we assert it anyway.
    pub fn halve(&self) -> Option<(AaBox<K>, AaBox<K>)> {
        if self.is_empty() {
            return None;
        }
        let d = (0..K)
            .max_by(|&a, &b| {
                let wa = self.hi[a] - self.lo[a];
                let wb = self.hi[b] - self.lo[b];
                wa.partial_cmp(&wb).expect("finite widths")
            })
            .expect("K > 0");
        let mid = self.lo[d] / 2.0 + self.hi[d] / 2.0;
        if !(self.lo[d] < mid && mid < self.hi[d]) {
            // Extremely thin box where the midpoint collapses; nudge via
            // next-representable value is overkill — treat as unsplittable
            // by splitting another dimension if any has width.
            return None;
        }
        let mut left = *self;
        left.hi[d] = mid;
        let mut right = *self;
        right.lo[d] = mid;
        Some((left, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [f64; 2], hi: [f64; 2]) -> AaBox<2> {
        AaBox::new(lo, hi)
    }

    #[test]
    fn emptiness_and_points() {
        assert!(AaBox::<2>::empty().is_empty());
        assert!(
            b([0.0, 0.0], [0.0, 1.0]).is_empty(),
            "zero width is empty (half-open)"
        );
        let x = b([0.0, 0.0], [1.0, 1.0]);
        assert!(x.contains_point(&[0.0, 0.0]), "lo corner inside");
        assert!(!x.contains_point(&[1.0, 1.0]), "hi corner outside");
        assert!(!x.contains_point(&[0.5, 1.0]));
    }

    #[test]
    fn half_open_adjacency_does_not_intersect() {
        let left = b([0.0, 0.0], [1.0, 1.0]);
        let right = b([1.0, 0.0], [2.0, 1.0]);
        assert!(!left.intersects(&right));
        assert!(left.intersection(&right).is_none());
        // but their closed bounding boxes touch
        assert!(left.bbox().overlaps(&right.bbox()));
    }

    #[test]
    fn intersection_volume() {
        let a = b([0.0, 0.0], [2.0, 2.0]);
        let c = b([1.0, 1.0], [3.0, 3.0]);
        let i = a.intersection(&c).unwrap();
        assert_eq!(i.volume(), 1.0);
        assert_eq!(a.volume(), 4.0);
    }

    #[test]
    fn containment() {
        let big = b([0.0, 0.0], [4.0, 4.0]);
        let small = b([1.0, 1.0], [2.0, 2.0]);
        assert!(big.contains_box(&small));
        assert!(!small.contains_box(&big));
        assert!(big.contains_box(&AaBox::empty()));
        assert!(!AaBox::<2>::empty().contains_box(&big));
        assert!(big.contains_box(&big));
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = b([0.0, 0.0], [1.0, 1.0]);
        let c = b([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(a.subtract(&c), vec![a]);
    }

    #[test]
    fn subtract_covering_returns_nothing() {
        let a = b([1.0, 1.0], [2.0, 2.0]);
        let c = b([0.0, 0.0], [4.0, 4.0]);
        assert!(a.subtract(&c).is_empty());
    }

    #[test]
    fn subtract_fragments_partition() {
        let a = b([0.0, 0.0], [4.0, 4.0]);
        let c = b([1.0, 1.0], [2.0, 3.0]);
        let frags = a.subtract(&c);
        // volume is preserved
        let v: f64 = frags.iter().map(AaBox::volume).sum();
        assert!((v - (16.0 - 2.0)).abs() < 1e-12);
        // fragments are pairwise disjoint and inside a, outside c
        for (i, f) in frags.iter().enumerate() {
            assert!(a.contains_box(f));
            assert!(!f.intersects(&c));
            for g in &frags[i + 1..] {
                assert!(!f.intersects(g), "{f:?} vs {g:?}");
            }
        }
        // sample points of a are covered iff outside c
        for xi in 0..40 {
            for yi in 0..40 {
                let p = [xi as f64 * 0.1 + 0.05, yi as f64 * 0.1 + 0.05];
                let in_a = a.contains_point(&p);
                let in_c = c.contains_point(&p);
                let covered = frags.iter().any(|f| f.contains_point(&p));
                assert_eq!(covered, in_a && !in_c, "p = {p:?}");
            }
        }
    }

    #[test]
    fn subtract_partial_overlap() {
        let a = b([0.0, 0.0], [2.0, 2.0]);
        let c = b([1.0, 1.0], [3.0, 3.0]);
        let frags = a.subtract(&c);
        let v: f64 = frags.iter().map(AaBox::volume).sum();
        assert!((v - 3.0).abs() < 1e-12);
    }

    #[test]
    fn halve_splits_longest_dimension() {
        let a = b([0.0, 0.0], [4.0, 1.0]);
        let (l, r) = a.halve().unwrap();
        assert_eq!(l.hi()[0], 2.0);
        assert_eq!(r.lo()[0], 2.0);
        assert!((l.volume() + r.volume() - a.volume()).abs() < 1e-12);
        assert!(!l.intersects(&r));
        assert!(AaBox::<2>::empty().halve().is_none());
    }

    #[test]
    fn bbox_of_box() {
        let a = b([0.0, 1.0], [2.0, 3.0]);
        assert_eq!(a.bbox(), scq_bbox::Bbox::new([0.0, 1.0], [2.0, 3.0]));
        assert!(AaBox::<2>::empty().bbox().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        AaBox::new([f64::NAN], [1.0]);
    }
}
