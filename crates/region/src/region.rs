//! Regions: finite unions of pairwise-disjoint half-open boxes.

use scq_bbox::Bbox;

use crate::aabox::AaBox;

/// A region of `ℝᵏ`: a finite union of half-open boxes.
///
/// Invariant: the stored boxes are nonempty and pairwise disjoint, so
/// [`Region::volume`] is a simple sum and emptiness is `boxes.is_empty()`.
/// All constructors and operations maintain the invariant.
#[derive(Debug, Default)]
pub struct Region<const K: usize> {
    boxes: Vec<AaBox<K>>,
}

impl<const K: usize> Clone for Region<K> {
    fn clone(&self) -> Self {
        #[cfg(debug_assertions)]
        clone_counter::record();
        Region {
            boxes: self.boxes.clone(),
        }
    }
}

/// Debug-only accounting of [`Region`] deep clones.
///
/// The executors' hot loops are designed to bind regions by reference;
/// the allocation-regression test in `scq-engine` resets this counter,
/// runs a query, and asserts it stayed at zero. The counter is
/// **thread-local** so concurrently running tests cannot pollute each
/// other, and compiled only under `debug_assertions` so release builds
/// pay nothing.
#[cfg(debug_assertions)]
pub mod clone_counter {
    use std::cell::Cell;

    thread_local! {
        static CLONES: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn record() {
        CLONES.with(|c| c.set(c.get() + 1));
    }

    /// Number of `Region::clone` calls on this thread since the last
    /// [`reset`].
    pub fn count() -> u64 {
        CLONES.with(|c| c.get())
    }

    /// Resets this thread's clone counter to zero.
    pub fn reset() {
        CLONES.with(|c| c.set(0));
    }
}

impl<const K: usize> Region<K> {
    /// The empty region.
    pub fn empty() -> Self {
        Region { boxes: Vec::new() }
    }

    /// The region of a single box (empty boxes give the empty region).
    pub fn from_box(b: AaBox<K>) -> Self {
        if b.is_empty() {
            Region::empty()
        } else {
            Region { boxes: vec![b] }
        }
    }

    /// The union of arbitrarily overlapping boxes.
    pub fn from_boxes<I: IntoIterator<Item = AaBox<K>>>(it: I) -> Self {
        let mut r = Region::empty();
        for b in it {
            r.insert_box(&b);
        }
        r
    }

    /// The disjoint fragments making up the region.
    pub fn boxes(&self) -> &[AaBox<K>] {
        &self.boxes
    }

    /// Number of stored fragments (a complexity metric, not a semantic
    /// property — equal regions may have different fragmentations).
    pub fn fragment_count(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the region has no points.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Lebesgue measure.
    pub fn volume(&self) -> f64 {
        self.boxes.iter().map(AaBox::volume).sum()
    }

    /// The bounding-box operator `⌈·⌉` of the paper: the minimal closed
    /// box enclosing the region ([`Bbox::Empty`] for the empty region).
    pub fn bbox(&self) -> Bbox<K> {
        Bbox::join_all(self.boxes.iter().map(AaBox::bbox))
    }

    /// Membership test.
    pub fn contains_point(&self, p: &[f64; K]) -> bool {
        self.boxes.iter().any(|b| b.contains_point(p))
    }

    /// Adds `b \ self` fragments — the union-insert primitive.
    fn insert_box(&mut self, b: &AaBox<K>) {
        if b.is_empty() {
            return;
        }
        let mut pending = vec![*b];
        for existing in &self.boxes {
            let mut next = Vec::with_capacity(pending.len());
            for frag in pending {
                if frag.intersects(existing) {
                    next.extend(frag.subtract(existing));
                } else {
                    next.push(frag);
                }
            }
            pending = next;
            if pending.is_empty() {
                return;
            }
        }
        self.boxes.extend(pending);
    }

    /// Set union.
    pub fn union(&self, other: &Region<K>) -> Region<K> {
        // Builds the result directly rather than via `Region::clone`:
        // the debug clone counter tracks accidental deep clones of
        // region *values* (executor hot loops), not the intrinsic data
        // flow of set operations.
        let mut out = Region {
            boxes: self.boxes.clone(),
        };
        for b in &other.boxes {
            out.insert_box(b);
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Region<K>) -> Region<K> {
        let mut boxes = Vec::new();
        for a in &self.boxes {
            for b in &other.boxes {
                if let Some(i) = a.intersection(b) {
                    boxes.push(i);
                }
            }
        }
        // Fragments of disjoint sets intersected with disjoint sets stay
        // pairwise disjoint, so the invariant holds without re-insertion.
        Region { boxes }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Region<K>) -> Region<K> {
        let mut boxes = Vec::new();
        for a in &self.boxes {
            let mut frags = vec![*a];
            for b in &other.boxes {
                let mut next = Vec::with_capacity(frags.len());
                for f in frags {
                    if f.intersects(b) {
                        next.extend(f.subtract(b));
                    } else {
                        next.push(f);
                    }
                }
                frags = next;
                if frags.is_empty() {
                    break;
                }
            }
            boxes.extend(frags);
        }
        Region { boxes }
    }

    /// Symmetric difference.
    pub fn sym_diff(&self, other: &Region<K>) -> Region<K> {
        self.difference(other).union(&other.difference(self))
    }

    /// Complement relative to `universe`.
    pub fn complement_in(&self, universe: &AaBox<K>) -> Region<K> {
        Region::from_box(*universe).difference(self)
    }

    /// Semantic equality: both differences empty.
    ///
    /// Fragmentation is not canonical, so `==` on `boxes` would be wrong;
    /// this is the real extensional test.
    pub fn same_set(&self, other: &Region<K>) -> bool {
        self.difference(other).is_empty() && other.difference(self).is_empty()
    }

    /// Whether `self ⊆ other`.
    pub fn subset_of(&self, other: &Region<K>) -> bool {
        self.difference(other).is_empty()
    }

    /// Whether the regions share any point.
    pub fn intersects(&self, other: &Region<K>) -> bool {
        self.boxes
            .iter()
            .any(|a| other.boxes.iter().any(|b| a.intersects(b)))
    }

    /// Greedily merges adjacent fragments that differ in exactly one
    /// dimension, shrinking the representation. Semantics preserved.
    pub fn coalesce(&mut self) {
        loop {
            let mut merged = false;
            'outer: for i in 0..self.boxes.len() {
                for j in (i + 1)..self.boxes.len() {
                    if let Some(m) = try_merge(&self.boxes[i], &self.boxes[j]) {
                        self.boxes[i] = m;
                        self.boxes.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if !merged {
                return;
            }
        }
    }
}

/// Merges two boxes that agree in all dimensions but one, where they are
/// adjacent or identical. Returns the merged box.
fn try_merge<const K: usize>(a: &AaBox<K>, b: &AaBox<K>) -> Option<AaBox<K>> {
    let mut diff_dim = None;
    for d in 0..K {
        if a.lo()[d] != b.lo()[d] || a.hi()[d] != b.hi()[d] {
            if diff_dim.is_some() {
                return None;
            }
            diff_dim = Some(d);
        }
    }
    let d = match diff_dim {
        None => return Some(*a), // identical boxes (should not occur; harmless)
        Some(d) => d,
    };
    if a.hi()[d] == b.lo()[d] {
        let mut lo = a.lo();
        let mut hi = a.hi();
        lo[d] = a.lo()[d];
        hi[d] = b.hi()[d];
        Some(AaBox::new(lo, hi))
    } else if b.hi()[d] == a.lo()[d] {
        let mut lo = a.lo();
        let mut hi = a.hi();
        lo[d] = b.lo()[d];
        hi[d] = a.hi()[d];
        Some(AaBox::new(lo, hi))
    } else {
        None
    }
}

impl<const K: usize> PartialEq for Region<K> {
    /// Extensional equality (same point set).
    fn eq(&self, other: &Self) -> bool {
        self.same_set(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [f64; 2], hi: [f64; 2]) -> AaBox<2> {
        AaBox::new(lo, hi)
    }

    fn r(boxes: &[AaBox<2>]) -> Region<2> {
        Region::from_boxes(boxes.iter().copied())
    }

    /// Validates the disjointness invariant.
    fn check_invariant(reg: &Region<2>) {
        for (i, a) in reg.boxes().iter().enumerate() {
            assert!(!a.is_empty());
            for bx in &reg.boxes()[i + 1..] {
                assert!(!a.intersects(bx), "{a:?} overlaps {bx:?}");
            }
        }
    }

    #[test]
    fn union_of_overlapping_boxes() {
        let reg = r(&[b([0.0, 0.0], [2.0, 2.0]), b([1.0, 1.0], [3.0, 3.0])]);
        check_invariant(&reg);
        assert!((reg.volume() - 7.0).abs() < 1e-12);
        assert!(reg.contains_point(&[2.5, 2.5]));
        assert!(!reg.contains_point(&[2.5, 0.5]));
    }

    #[test]
    fn union_is_idempotent_and_commutative() {
        let x = r(&[b([0.0, 0.0], [2.0, 2.0])]);
        let y = r(&[b([1.0, 0.0], [3.0, 1.0])]);
        assert!(x.union(&y).same_set(&y.union(&x)));
        assert!(x.union(&x).same_set(&x));
        check_invariant(&x.union(&y));
    }

    #[test]
    fn intersection_matches_pointwise() {
        let x = r(&[b([0.0, 0.0], [2.0, 2.0]), b([3.0, 3.0], [5.0, 5.0])]);
        let y = r(&[b([1.0, 1.0], [4.0, 4.0])]);
        let i = x.intersection(&y);
        check_invariant(&i);
        for xi in 0..60 {
            for yi in 0..60 {
                let p = [xi as f64 * 0.1, yi as f64 * 0.1];
                assert_eq!(
                    i.contains_point(&p),
                    x.contains_point(&p) && y.contains_point(&p),
                    "p = {p:?}"
                );
            }
        }
    }

    #[test]
    fn difference_matches_pointwise() {
        let x = r(&[b([0.0, 0.0], [4.0, 4.0])]);
        let y = r(&[b([1.0, 1.0], [2.0, 2.0]), b([3.0, 0.0], [5.0, 5.0])]);
        let d = x.difference(&y);
        check_invariant(&d);
        for xi in 0..55 {
            for yi in 0..55 {
                let p = [xi as f64 * 0.1, yi as f64 * 0.1];
                assert_eq!(
                    d.contains_point(&p),
                    x.contains_point(&p) && !y.contains_point(&p),
                    "p = {p:?}"
                );
            }
        }
    }

    #[test]
    fn complement_in_universe() {
        let u = b([0.0, 0.0], [10.0, 10.0]);
        let x = r(&[b([2.0, 2.0], [8.0, 8.0])]);
        let c = x.complement_in(&u);
        check_invariant(&c);
        assert!((c.volume() - (100.0 - 36.0)).abs() < 1e-12);
        // double complement is identity
        assert!(c.complement_in(&u).same_set(&x));
    }

    #[test]
    fn volume_additivity() {
        let x = r(&[b([0.0, 0.0], [2.0, 2.0])]);
        let y = r(&[b([1.0, 1.0], [3.0, 3.0])]);
        let vu = x.union(&y).volume();
        let vi = x.intersection(&y).volume();
        assert!(
            (vu + vi - (x.volume() + y.volume())).abs() < 1e-12,
            "inclusion-exclusion"
        );
    }

    #[test]
    fn same_set_ignores_fragmentation() {
        // same square built two different ways
        let one = r(&[b([0.0, 0.0], [2.0, 2.0])]);
        let two = r(&[b([0.0, 0.0], [1.0, 2.0]), b([1.0, 0.0], [2.0, 2.0])]);
        assert!(one.same_set(&two));
        assert_eq!(one, two);
        assert_ne!(one.fragment_count(), two.fragment_count());
    }

    #[test]
    fn subset_and_intersects() {
        let big = r(&[b([0.0, 0.0], [4.0, 4.0])]);
        let small = r(&[b([1.0, 1.0], [2.0, 2.0])]);
        let far = r(&[b([9.0, 9.0], [10.0, 10.0])]);
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
        assert!(small.intersects(&big));
        assert!(!far.intersects(&big));
        assert!(Region::<2>::empty().subset_of(&small));
    }

    #[test]
    fn bbox_encloses() {
        let x = r(&[b([0.0, 0.0], [1.0, 1.0]), b([4.0, 2.0], [5.0, 6.0])]);
        assert_eq!(x.bbox(), Bbox::new([0.0, 0.0], [5.0, 6.0]));
        assert!(Region::<2>::empty().bbox().is_empty());
    }

    #[test]
    fn coalesce_reduces_fragments() {
        let mut x = r(&[b([0.0, 0.0], [1.0, 2.0]), b([1.0, 0.0], [2.0, 2.0])]);
        let before = x.clone();
        x.coalesce();
        assert_eq!(x.fragment_count(), 1);
        assert!(x.same_set(&before));
    }

    #[test]
    fn empty_behaviour() {
        let e = Region::<2>::empty();
        let x = r(&[b([0.0, 0.0], [1.0, 1.0])]);
        assert!(e.union(&x).same_set(&x));
        assert!(e.intersection(&x).is_empty());
        assert!(x.difference(&e).same_set(&x));
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
    }

    #[test]
    fn sym_diff_pointwise() {
        let x = r(&[b([0.0, 0.0], [2.0, 2.0])]);
        let y = r(&[b([1.0, 1.0], [3.0, 3.0])]);
        let s = x.sym_diff(&y);
        for xi in 0..35 {
            for yi in 0..35 {
                let p = [xi as f64 * 0.1, yi as f64 * 0.1];
                assert_eq!(
                    s.contains_point(&p),
                    x.contains_point(&p) != y.contains_point(&p)
                );
            }
        }
    }
}
