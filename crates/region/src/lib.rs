#![warn(missing_docs)]

//! A concrete, exactly-computable model of the paper's "measurable
//! subsets of ℝᵏ": finite unions of **half-open** axis-aligned boxes.
//!
//! Half-open boxes `[lo, hi)` tile space without overlap or gap, so finite
//! unions of them are closed under union, intersection and complement
//! (relative to a universe box) with *exact* results — no epsilon, no
//! grid. The resulting algebra [`RegionAlgebra`] is a genuine Boolean
//! algebra and, over real coordinates, **atomless** in the paper's sense:
//! every nonempty region strictly contains a nonempty region (halve any
//! fragment). That makes it a faithful stage for Theorems 6–8, where
//! `proj` computes `∃x S` exactly.
//!
//! The bounding-box operator `⌈·⌉` of Section 4 is [`Region::bbox`],
//! returning the closed [`scq_bbox::Bbox`] used by the approximation
//! machinery and the spatial indexes.

pub mod aabox;
pub mod algebra;
pub mod region;

pub use aabox::AaBox;
pub use algebra::RegionAlgebra;
pub use region::Region;
