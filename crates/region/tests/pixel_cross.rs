//! Cross-validation of the region algebra against an independent
//! implementation: grid-aligned regions rasterize to 8×8 bitmaps, where
//! union/intersection/complement are plain bit operations (the
//! `BitsetAlgebra` of `scq-algebra`). Every region operation must
//! commute with rasterization — two entirely separate code paths
//! computing the same Boolean algebra.

use proptest::prelude::*;
use scq_algebra::{BitsetAlgebra, BooleanAlgebra};
use scq_region::{AaBox, Region, RegionAlgebra};

const N: u32 = 8;

fn universe() -> AaBox<2> {
    AaBox::new([0.0, 0.0], [N as f64, N as f64])
}

/// Rasterizes a region to one bit per unit cell (cell centers).
fn rasterize(r: &Region<2>) -> u64 {
    let mut bits = 0u64;
    for y in 0..N {
        for x in 0..N {
            let p = [x as f64 + 0.5, y as f64 + 0.5];
            if r.contains_point(&p) {
                bits |= 1 << (y * N + x);
            }
        }
    }
    bits
}

/// Strategy: grid-aligned regions (integer corners), so rasterization
/// is exact.
fn aligned_region() -> BoxedStrategy<Region<2>> {
    prop::collection::vec((0u32..N, 0u32..N, 1u32..4, 1u32..4), 0..4)
        .prop_map(|boxes| {
            Region::from_boxes(boxes.into_iter().map(|(x, y, w, h)| {
                AaBox::new(
                    [x as f64, y as f64],
                    [(x + w).min(N) as f64, (y + h).min(N) as f64],
                )
            }))
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn operations_commute_with_rasterization(a in aligned_region(), b in aligned_region()) {
        let ralg = RegionAlgebra::new(universe());
        let balg = BitsetAlgebra::new(64);
        let (pa, pb) = (rasterize(&a), rasterize(&b));

        prop_assert_eq!(rasterize(&a.union(&b)), balg.join(&pa, &pb), "union");
        prop_assert_eq!(rasterize(&a.intersection(&b)), balg.meet(&pa, &pb), "intersection");
        prop_assert_eq!(rasterize(&a.difference(&b)), balg.diff(&pa, &pb), "difference");
        prop_assert_eq!(rasterize(&a.sym_diff(&b)), balg.sym_diff(&pa, &pb), "sym_diff");
        prop_assert_eq!(
            rasterize(&ralg.complement(&a)),
            balg.complement(&pa),
            "complement"
        );
    }

    #[test]
    fn predicates_commute(a in aligned_region(), b in aligned_region()) {
        let balg = BitsetAlgebra::new(64);
        let (pa, pb) = (rasterize(&a), rasterize(&b));
        prop_assert_eq!(a.subset_of(&b), balg.le(&pa, &pb));
        prop_assert_eq!(a.same_set(&b), balg.eq_elem(&pa, &pb));
        prop_assert_eq!(a.intersects(&b), !balg.is_zero(&balg.meet(&pa, &pb)));
        prop_assert_eq!(a.is_empty(), balg.is_zero(&pa));
    }

    #[test]
    fn volume_equals_popcount(a in aligned_region()) {
        // Grid-aligned unit-cell regions: volume = number of cells.
        let balg = BitsetAlgebra::new(64);
        prop_assert!((a.volume() - balg.cardinality(rasterize(&a)) as f64).abs() < 1e-9);
    }
}
