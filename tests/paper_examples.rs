//! EX-F1 / EX-E1 / EX-E2: executable reproductions of every worked
//! example in the paper (see DESIGN.md §5 and EXPERIMENTS.md).

use scq_integration::prelude::*;

/// The smuggler constraint system of Figure 1, in the text syntax.
fn smuggler() -> ConstraintSystem {
    parse_system(
        "A <= C
         B <= C
         R <= A | B | T
         R & A != 0
         R & T != 0
         T < C",
    )
    .unwrap()
}

fn var(sys: &ConstraintSystem, name: &str) -> Var {
    sys.table.get(name).unwrap()
}

/// `f ≡ g` under the side condition `ctx = 0` (checked propositionally).
fn equiv_under_ctx(ctx: &Formula, f: &Formula, g: &Formula) -> bool {
    let mut bdd = Bdd::new();
    let xor = Formula::xor(f.clone(), g.clone());
    bdd.is_zero_formula(&Formula::and(Formula::not(ctx.clone()), xor))
}

/// EX-F1 part 1: Theorem 1 turns Figure 1 into one equation and three
/// disequations.
#[test]
fn ex_f1_normal_form_shape() {
    let sys = smuggler();
    let n = sys.normalize();
    assert_eq!(n.neqs.len(), 3, "R∩A ≠ ∅, R∩T ≠ ∅ and T ≠ C");
    assert!(!n.eq.is_zero());
    assert!(!n.obviously_unsat());
}

/// EX-F1 part 2: the triangular form printed in §2,
/// ```text
///   0 ≤ T ≤ C (T forced nonempty)
///   0 ≤ R ≤ C∨T,  A∧R ≠ 0,  R∧T ≠ 0
///   R∧¬A∧¬T ≤ B ≤ C
/// ```
/// modulo the context established by the earlier rows (A ⊆ C, T ⊆ C).
#[test]
fn ex_f1_triangular_form() {
    let sys = smuggler();
    let (c, a, t, r, b) = (
        var(&sys, "C"),
        var(&sys, "A"),
        var(&sys, "T"),
        var(&sys, "R"),
        var(&sys, "B"),
    );
    let order = [c, a, t, r, b]; // known C, A first; then T, R, B as in §2
    let tri = triangularize(&sys.normalize(), &order);

    let fc = Formula::var(c);
    let fa = Formula::var(a);
    let ft = Formula::var(t);
    let fr = Formula::var(r);
    let ctx = Formula::or(
        Formula::diff(fa.clone(), fc.clone()),
        Formula::diff(ft.clone(), fc.clone()),
    );

    // Row B: R∧¬A∧¬T ≤ B ≤ C, no disequations.
    let row_b = tri.row_for(b).unwrap();
    let mut bdd = Bdd::new();
    assert!(bdd.equivalent(&row_b.upper, &fc));
    let want_lower = Formula::and_all([
        fr.clone(),
        Formula::not(fa.clone()),
        Formula::not(ft.clone()),
    ]);
    assert!(equiv_under_ctx(&ctx, &row_b.lower, &want_lower));
    assert!(row_b.diseqs.is_empty());

    // Row R: 0 ≤ R ≤ C∨T with two disequations.
    let row_r = tri.row_for(r).unwrap();
    assert!(equiv_under_ctx(&ctx, &row_r.lower, &Formula::Zero));
    assert!(equiv_under_ctx(
        &ctx,
        &row_r.upper,
        &Formula::or(fc.clone(), ft.clone())
    ));
    assert_eq!(row_r.diseqs.len(), 2);

    // Row T: 0 ≤ T ≤ C, disequations force T nonempty.
    let row_t = tri.row_for(t).unwrap();
    assert!(equiv_under_ctx(&ctx, &row_t.lower, &Formula::Zero));
    assert!(equiv_under_ctx(&ctx, &row_t.upper, &fc));
    assert!(!row_t.diseqs.is_empty());

    // Ground residue: the system is satisfiable.
    assert!(!tri.ground.obviously_unsat());
}

/// EX-F1 part 3: the bounding-box system of §2 —
/// every line is implementable as ONE range query, and on the concrete
/// smuggler geometry the compiled corner queries accept exactly the
/// right candidates.
#[test]
fn ex_f1_bbox_plan() {
    let sys = smuggler();
    let (c, a, t, r, b) = (
        var(&sys, "C"),
        var(&sys, "A"),
        var(&sys, "T"),
        var(&sys, "R"),
        var(&sys, "B"),
    );
    let order = [c, a, t, r, b];
    let tri = triangularize(&sys.normalize(), &order);
    let plan: BboxPlan<2> = BboxPlan::compile(&tri);
    assert!(plan.satisfiable);

    // §2's bbox system: line 2 is
    //   ⌈R⌉ ⊑ ⌈C⌉ ⊔ ⌈T⌉ (upper),  ⌈A⌉⊓⌈R⌉ ≠ ∅,  ⌈R⌉⊓⌈T⌉ ≠ ∅
    let row_r = plan.row_for(r).unwrap();
    assert!(!row_r.upper.is_top(), "R has a finite upper bound");
    assert_eq!(row_r.overlaps.len(), 2, "two overlap filters for R");
    // and line 4 is ⌈B⌉ ⊑ ⌈C⌉:
    let row_b = plan.row_for(b).unwrap();
    assert_eq!(
        row_b.upper.eval(|i| if i == c.index() {
            Bbox::new([0.0, 0.0], [10.0, 10.0])
        } else {
            Bbox::Empty
        }),
        Some(Bbox::new([0.0, 0.0], [10.0, 10.0])),
        "U_t for B is exactly ⌈C⌉"
    );

    // Concrete geometry: country, area, a good town and a decoy.
    let c_box = Bbox::new([0.0, 0.0], [100.0, 100.0]);
    let a_box = Bbox::new([60.0, 40.0], [70.0, 50.0]);
    let t_box = Bbox::new([0.0, 42.0], [4.0, 46.0]);
    let lookup = |i: usize| {
        if i == c.index() {
            c_box
        } else if i == a.index() {
            a_box
        } else if i == t.index() {
            t_box
        } else {
            Bbox::Empty
        }
    };
    let q = row_r.corner_query(lookup);
    assert!(
        q.matches(&Bbox::new([2.0, 43.0], [65.0, 45.0])),
        "corridor road passes"
    );
    assert!(
        !q.matches(&Bbox::new([20.0, 80.0], [80.0, 82.0])),
        "road missing T and A fails"
    );
    assert!(
        !q.matches(&Bbox::new([-20.0, 43.0], [65.0, 45.0])),
        "road leaving ⌈C⌉⊔⌈T⌉ fails"
    );
}

/// EX-E1 part 1: §3 Example 1 — `proj((x·y = 0 ∧ ¬x·y ≠ 0), x) = (y ≠ 0)`.
#[test]
fn ex_e1_projection() {
    let mut table = VarTable::new();
    let x = table.intern("x");
    let y = table.intern("y");
    let s = NormalSystem {
        eq: Formula::and(Formula::var(x), Formula::var(y)),
        neqs: vec![Formula::and(Formula::not(Formula::var(x)), Formula::var(y))],
    };
    let p = proj(&s, x);
    assert_eq!(p.eq, Formula::Zero);
    assert_eq!(p.neqs, vec![Formula::var(y)]);
}

/// EX-E1 part 2: the §3 non-closure example. The system
/// `∃x (x ⊆ y ∧ x ≠ 0 ∧ y∖x ≠ 0)` implies `|y| ≥ 2`, which no Boolean
/// constraint over `y` expresses: `proj` returns `y ≠ 0` (the best
/// approximation), strict on the atomic powerset algebra, exact on the
/// atomless region algebra.
#[test]
fn ex_e1_non_closure() {
    let mut table = VarTable::new();
    let x = table.intern("x");
    let y = table.intern("y");
    let fx = Formula::var(x);
    let fy = Formula::var(y);
    let s = NormalSystem {
        eq: Formula::diff(fx.clone(), fy.clone()),
        neqs: vec![fx.clone(), Formula::diff(fy.clone(), fx.clone())],
    };
    let p = proj(&s, x);
    // best approximation: y ≠ 0 (twice, deduplicated by simplified())
    let simp = p.simplified();
    assert_eq!(simp.eq, Formula::Zero);
    assert_eq!(simp.neqs, vec![fy.clone()]);

    // Atomic algebra: singleton y satisfies proj but has no witness x.
    let alg = BitsetAlgebra::new(3);
    let singleton = alg.singleton(1);
    let holds = |e: u64, xv: u64| {
        let assign = Assignment::new().with(x, xv).with(y, e);
        check_normal(&alg, &s, &assign).unwrap()
    };
    assert!(
        !alg.elements().any(|xv| holds(singleton, xv)),
        "no witness for |y| = 1"
    );
    let pair = alg.singleton(0) | alg.singleton(2);
    assert!(
        alg.elements().any(|xv| holds(pair, xv)),
        "witness exists for |y| = 2"
    );

    // Atomless algebra: every nonzero y has a witness (split y).
    let ralg = RegionAlgebra::new(AaBox::new([0.0], [1.0]));
    let yr = Region::from_box(AaBox::new([0.25], [0.5]));
    let xr = ralg.proper_part(&yr).unwrap();
    assert!(xr.subset_of(&yr) && !xr.is_empty() && !yr.difference(&xr).is_empty());
}

/// EX-E2: §4 Examples 2–3 — BCF by consensus/absorption and the best
/// bounding-box approximations.
#[test]
fn ex_e2_bcf_and_bounds() {
    let mut table = VarTable::new();
    let f = parse_formula("x & y | ~x & y | x & z & ~w", &mut table).unwrap();
    let (x, y, z, w) = (
        table.get("x").unwrap(),
        table.get("y").unwrap(),
        table.get("z").unwrap(),
        table.get("w").unwrap(),
    );
    // Example 2: BCF(f) = y ∨ x·z·¬w.
    let bcf = blake_canonical_form(&f);
    assert_eq!(bcf.len(), 2);
    let cubes = bcf.sorted_cubes();
    let single: Vec<_> = cubes.iter().filter(|c| c.len() == 1).collect();
    assert_eq!(single.len(), 1);
    assert_eq!(single[0].polarity(y), Some(true));
    let triple: Vec<_> = cubes.iter().filter(|c| c.len() == 3).collect();
    assert_eq!(triple.len(), 1);
    assert_eq!(triple[0].polarity(x), Some(true));
    assert_eq!(triple[0].polarity(z), Some(true));
    assert_eq!(triple[0].polarity(w), Some(false));

    // Example 3: L_f = ⌈y⌉ and U_f = ⌈y⌉ ⊔ (⌈x⌉⊓⌈z⌉).
    let l: BboxExpr<2> = lower_bbox_fn(&f);
    assert_eq!(l, BboxExpr::var(y.index()));
    let u: UpperBound<2> = upper_bbox_fn(&f);
    let boxes = [
        Bbox::new([0.0, 0.0], [1.0, 1.0]), // x
        Bbox::new([5.0, 5.0], [6.0, 6.0]), // y
        Bbox::new([0.5, 0.5], [2.0, 2.0]), // z
        Bbox::new([9.0, 9.0], [9.1, 9.1]), // w
    ];
    let lookup = |i: usize| boxes[i];
    let want = boxes[y.index()].join(&boxes[x.index()].meet(&boxes[z.index()]));
    assert_eq!(u.eval(lookup), Some(want));
}

/// The paper's remark before Theorem 15: the naive syntactic transform
/// (∧→⊓, ∨→⊔) is NOT the best approximation —
/// `(⌈x⌉⊓⌈y⌉) ⊔ (⌈x⌉⊓⌈z⌉) ≠ ⌈x⌉ ⊓ (⌈y⌉⊔⌈z⌉)` in general.
#[test]
fn ex_e2_syntactic_transform_counterexample() {
    let x = Bbox::new([0.0], [10.0]);
    let y = Bbox::new([1.0], [2.0]);
    let z = Bbox::new([8.0], [9.0]);
    let lhs = x.meet(&y).join(&x.meet(&z)); // [1,9]
    let rhs = x.meet(&y.join(&z)); // [1,9] — equal here…
    assert_eq!(lhs, rhs);
    // …the inequality needs x to truncate the join asymmetrically:
    let x = Bbox::new([0.0], [5.0]);
    let lhs = x.meet(&y).join(&x.meet(&z)); // [1,2] ⊔ ∅ = [1,2]
    let rhs = x.meet(&y.join(&z)); // [0,5]⊓[1,9] = [1,5]
    assert!(
        lhs.le(&rhs) && lhs != rhs,
        "strict inclusion: {lhs} ⊏ {rhs}"
    );
}

/// EX-F1 executed end-to-end as a query (the full §2 narrative).
#[test]
fn ex_f1_end_to_end() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = scq_engine::workload::map_workload(
        &mut db,
        11,
        &scq_engine::workload::MapParams {
            n_states: 6,
            n_towns: 12,
            n_roads: 30,
            useful_road_fraction: 0.15,
        },
    );
    let q = Query::new(smuggler())
        .known("C", w.country.clone())
        .known("A", w.area.clone())
        .from_collection("T", w.towns)
        .from_collection("R", w.roads)
        .from_collection("B", w.states)
        .with_order(&["T", "R", "B"]);
    let naive = naive_execute(&db, &q).unwrap();
    let opt = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
    // Index traversal order differs; compare as sets.
    let mut a = naive.solutions.clone();
    let mut b = opt.solutions.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(!opt.solutions.is_empty(), "a smuggling route exists");
    assert!(opt.stats.partial_tuples < naive.stats.partial_tuples);
}
