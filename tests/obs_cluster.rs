//! End-to-end observability acceptance: a router tier fronting two
//! shard server processes answers `METRICS` with Prometheus-style
//! exposition carrying per-command latency histograms from **both**
//! tiers, and `TRACE <id>` for a cross-shard query replays a span tree
//! naming each probed shard with per-span durations. A [`FaultProxy`]
//! partition in front of shard 0's primary forces one deterministic
//! replica failover, which must surface as an event in the query's
//! trace.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use scq_region::AaBox;
use scq_serve::{body_lines, serve_db, ServerConfig};
use scq_shard::{BreakerConfig, ClusterSpec, FaultProxy, ShardServerConfig, ShardServerHandle};

const UNIVERSE_SIZE: f64 = 100.0;

fn boot_server() -> ShardServerHandle {
    scq_shard::serve_shard(&ShardServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        universe_size: UNIVERSE_SIZE,
        ..ShardServerConfig::default()
    })
    .expect("bind shard server")
}

/// One line-protocol exchange; multi-line responses (`lines=` in the
/// header) are consumed whole.
fn exchange(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    cmd: &str,
) -> (String, Vec<String>) {
    writer
        .write_all(format!("{cmd}\n").as_bytes())
        .expect("send");
    writer.flush().expect("flush");
    let mut head = String::new();
    reader.read_line(&mut head).expect("read header");
    let head = head.trim_end().to_string();
    let body = (0..body_lines(&head).unwrap_or(0))
        .map(|_| {
            let mut l = String::new();
            reader.read_line(&mut l).expect("read body line");
            l.trim_end().to_string()
        })
        .collect();
    (head, body)
}

fn trace_id_of(response: &str) -> u64 {
    response
        .split_whitespace()
        .find_map(|f| f.strip_prefix("trace="))
        .unwrap_or_else(|| panic!("no trace id in {response:?}"))
        .parse()
        .expect("numeric trace id")
}

#[test]
fn cluster_metrics_and_traces_cover_both_tiers_and_record_a_forced_failover() {
    // Topology: shard 0 = [fault proxy → primary, plain secondary],
    // shard 1 = single replica. The proxy is the only reach to shard
    // 0's primary, so a partition forces the failover deterministically.
    let primary0 = boot_server();
    let secondary0 = boot_server();
    let shard1 = boot_server();
    let proxy = FaultProxy::start(&primary0.addr().to_string()).expect("bind proxy");
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let mut spec = ClusterSpec::balanced_replicated(
        universe,
        scq_shard::DEFAULT_ROUTER_BITS,
        &[
            vec![proxy.addr().to_string(), secondary0.addr().to_string()],
            vec![shard1.addr().to_string()],
        ],
    );
    // One partition must mean one failover, never a tripped breaker.
    spec.breaker = BreakerConfig {
        threshold: 100,
        cooldown: Duration::from_secs(3600),
    };
    let db = spec.connect(Duration::from_secs(10)).expect("connect");
    let router = serve_db(
        &ServerConfig {
            threads: 2,
            universe_size: UNIVERSE_SIZE,
            ..ServerConfig::default()
        },
        db,
    )
    .expect("bind router");

    let stream = TcpStream::connect(router.addr()).expect("connect router");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut run = |cmd: &str| exchange(&mut reader, &mut writer, cmd);

    run("CREATE objs");
    // Low corner → shard 0, high corner → shard 1: a broad query must
    // probe both processes.
    run("INSERT objs 5 5 10 10");
    run("INSERT objs 90 90 95 95");
    run("INSERT objs 8 80 12 85");

    // ── healthy cross-shard query: span tree names every shard ──────
    let (q, _) = run("QUERY objs rtree overlaps 0 0 100 100");
    assert!(q.starts_with("OK n=3"), "healthy query: {q:?}");
    let (head, spans) = run(&format!("TRACE {}", trace_id_of(&q)));
    assert!(head.starts_with("OK trace="), "trace header: {head:?}");
    for shard in ["shard=0", "shard=1"] {
        assert!(
            spans
                .iter()
                .any(|l| l.trim_start().starts_with("probe ") && l.contains(shard)),
            "span tree must name {shard}: {spans:?}"
        );
    }
    assert!(
        spans.iter().all(|l| l.contains("dur=")),
        "every span carries its duration: {spans:?}"
    );

    // ── METRICS: per-command latency histograms from both tiers ─────
    let (head, body) = run("METRICS");
    assert!(head.starts_with("OK lines="), "metrics header: {head:?}");
    let samples = scq_obs::parse_exposition(&body.join("\n")).expect("scrape parses");
    let latency_count = |pred: &dyn Fn(&scq_obs::Sample) -> bool| -> f64 {
        samples
            .iter()
            .filter(|s| s.name.ends_with("_latency_us_count") && pred(s))
            .map(|s| s.value)
            .sum()
    };
    assert!(
        latency_count(
            &|s| s.name == "serve_query_latency_us_count" && s.labels.contains("tier=\"serve\"")
        ) >= 1.0,
        "serve tier must expose the QUERY latency histogram"
    );
    for shard in ["shard=\"0\"", "shard=\"1\""] {
        assert!(
            latency_count(&|s| s.labels.contains("tier=\"shard\"") && s.labels.contains(shard))
                >= 1.0,
            "shard tier ({shard}) must expose per-op latency histograms"
        );
    }
    // The happy path must scrape clean: no failovers, no retries, no
    // slow queries yet.
    for counter in ["serve_failovers", "serve_retries", "serve_slow_queries"] {
        let v = samples
            .iter()
            .find(|s| s.name == counter && s.labels.contains("tier=\"serve\""))
            .unwrap_or_else(|| panic!("{counter} missing from the scrape"))
            .value;
        assert_eq!(v, 0.0, "{counter} must be 0 before the partition");
    }

    // ── partition the primary: the failover lands in the trace ──────
    // The write first: it bumps the collection's mutation epoch, so
    // the repeated query below misses the serve tier's candidate
    // cache and really probes the shards (a verbatim repeat at the
    // same epoch would be answered from cache — no probe, no
    // failover to observe).
    run("INSERT objs 20 20 25 25");
    proxy.partition();
    let (q, _) = run("QUERY objs rtree overlaps 0 0 100 100");
    assert!(
        q.starts_with("OK n=4"),
        "the secondary keeps the answer complete: {q:?}"
    );
    let (_, spans) = run(&format!("TRACE {}", trace_id_of(&q)));
    let failover = spans
        .iter()
        .find(|l| l.trim_start().starts_with("failover"))
        .unwrap_or_else(|| panic!("no failover event in {spans:?}"));
    assert!(
        failover.contains(&proxy.addr().to_string()),
        "the failover event names the dead primary: {failover:?}"
    );

    let (_, body) = run("METRICS");
    let samples = scq_obs::parse_exposition(&body.join("\n")).expect("scrape parses");
    let failovers = samples
        .iter()
        .find(|s| s.name == "serve_failovers")
        .expect("failover counter")
        .value;
    assert!(failovers >= 1.0, "the forced failover must be counted");

    run("QUIT");
    router.shutdown();
    primary0.shutdown();
    secondary0.shutdown();
    shard1.shutdown();
}
