//! EX-F2: property-based validation of Algorithm 1 (Figure 2).
//!
//! For randomly generated constraint systems:
//! * the triangular form is *triangular* (row i mentions only earlier
//!   variables),
//! * it terminates with a ground residue,
//! * it is a sound necessary condition: every exact solution satisfies
//!   every row (checked exhaustively over small powerset algebras),
//! * and for complete assignments it is an *equivalence*: the rows
//!   accept exactly the solutions of the original system.

use proptest::prelude::*;
use scq_integration::prelude::*;

/// Strategy: random formulas over `nvars` variables.
fn formula_strategy(nvars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        2 => (0..nvars).prop_map(|i| Formula::var(Var(i))),
        1 => Just(Formula::Zero),
        1 => Just(Formula::One),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::or(a, b)),
        ]
    })
    .boxed()
}

fn system_strategy(nvars: u32) -> BoxedStrategy<NormalSystem> {
    (
        formula_strategy(nvars, 3),
        prop::collection::vec(formula_strategy(nvars, 3), 0..3),
    )
        .prop_map(|(eq, neqs)| NormalSystem { eq, neqs })
        .boxed()
}

fn holds(alg: &BitsetAlgebra, s: &NormalSystem, assign: &Assignment<u64>) -> bool {
    check_normal(alg, s, assign).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural triangularity and termination.
    #[test]
    fn triangular_structure(sys in system_strategy(4)) {
        let order = [Var(0), Var(1), Var(2), Var(3)];
        let tri = triangularize(&sys, &order);
        prop_assert_eq!(tri.rows.len(), 4);
        prop_assert!(tri.ground.is_ground());
        for (i, row) in tri.rows.iter().enumerate() {
            prop_assert_eq!(row.var, order[i]);
            for f in [&row.lower, &row.upper]
                .into_iter()
                .chain(row.diseqs.iter().flat_map(|d| [&d.p, &d.q]))
            {
                for v in f.vars() {
                    prop_assert!(
                        order[..i].contains(&v),
                        "row {} mentions {} in {}", i, v, f
                    );
                }
            }
        }
    }

    /// For complete assignments over a small powerset algebra the rows
    /// are equivalent to the original system.
    #[test]
    fn rows_equivalent_to_system(sys in system_strategy(3)) {
        let order = [Var(0), Var(1), Var(2)];
        let tri = triangularize(&sys, &order);
        let alg = BitsetAlgebra::new(2);
        for e0 in alg.elements() {
            for e1 in alg.elements() {
                for e2 in alg.elements() {
                    let assign = Assignment::new()
                        .with(Var(0), e0)
                        .with(Var(1), e1)
                        .with(Var(2), e2);
                    let direct = holds(&alg, &sys, &assign);
                    let via_rows = tri.check_all(&alg, &assign).unwrap();
                    prop_assert_eq!(
                        direct, via_rows,
                        "assignment ({:b},{:b},{:b})", e0, e1, e2
                    );
                }
            }
        }
    }

    /// The ground residue is a sound satisfiability verdict: if any
    /// exact solution exists, the residue must be Valid. (The converse
    /// holds only on atomless algebras.)
    #[test]
    fn ground_residue_sound(sys in system_strategy(3)) {
        let order = [Var(0), Var(1), Var(2)];
        let tri = triangularize(&sys, &order);
        let alg = BitsetAlgebra::new(2);
        let mut any = false;
        'outer: for e0 in alg.elements() {
            for e1 in alg.elements() {
                for e2 in alg.elements() {
                    let assign = Assignment::new()
                        .with(Var(0), e0)
                        .with(Var(1), e1)
                        .with(Var(2), e2);
                    if holds(&alg, &sys, &assign) {
                        any = true;
                        break 'outer;
                    }
                }
            }
        }
        if any {
            prop_assert!(!tri.ground.obviously_unsat());
        }
    }

    /// proj soundness as a standalone property: ∃x S ⟹ proj(S, x).
    #[test]
    fn proj_soundness(sys in system_strategy(3)) {
        let alg = BitsetAlgebra::new(2);
        let p = proj(&sys, Var(0));
        for e1 in alg.elements() {
            for e2 in alg.elements() {
                let base = Assignment::new().with(Var(1), e1).with(Var(2), e2);
                let exists = alg
                    .elements()
                    .any(|x| holds(&alg, &sys, &base.clone().with(Var(0), x)));
                if exists {
                    prop_assert!(holds(&alg, &p, &base));
                }
            }
        }
    }

    /// Retrieval order does not change which complete assignments are
    /// accepted (it only changes pruning power).
    #[test]
    fn order_independence(sys in system_strategy(3), perm in 0usize..6) {
        let orders = [
            [Var(0), Var(1), Var(2)],
            [Var(0), Var(2), Var(1)],
            [Var(1), Var(0), Var(2)],
            [Var(1), Var(2), Var(0)],
            [Var(2), Var(0), Var(1)],
            [Var(2), Var(1), Var(0)],
        ];
        let tri_a = triangularize(&sys, &orders[0]);
        let tri_b = triangularize(&sys, &orders[perm]);
        let alg = BitsetAlgebra::new(2);
        for e0 in alg.elements() {
            for e1 in alg.elements() {
                for e2 in alg.elements() {
                    let assign = Assignment::new()
                        .with(Var(0), e0)
                        .with(Var(1), e1)
                        .with(Var(2), e2);
                    prop_assert_eq!(
                        tri_a.check_all(&alg, &assign).unwrap(),
                        tri_b.check_all(&alg, &assign).unwrap()
                    );
                }
            }
        }
    }
}
