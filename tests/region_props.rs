//! Property tests for the region algebra substrate: Boolean algebra
//! laws, measure consistency and pointwise semantics on random regions.

use proptest::prelude::*;
use scq_integration::prelude::*;

/// Strategy: a random region of 1–4 boxes inside [0,100]².
fn region_strategy() -> BoxedStrategy<Region<2>> {
    prop::collection::vec(
        (0.0f64..90.0, 0.0f64..90.0, 0.5f64..10.0, 0.5f64..10.0),
        1..4,
    )
    .prop_map(|boxes| {
        Region::from_boxes(
            boxes
                .into_iter()
                .map(|(x, y, w, h)| AaBox::new([x, y], [x + w, y + h])),
        )
    })
    .boxed()
}

fn universe() -> AaBox<2> {
    AaBox::new([0.0, 0.0], [100.0, 100.0])
}

fn alg() -> RegionAlgebra<2> {
    RegionAlgebra::new(universe())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn de_morgan(a in region_strategy(), b in region_strategy()) {
        let alg = alg();
        let lhs = alg.complement(&alg.meet(&a, &b));
        let rhs = alg.join(&alg.complement(&a), &alg.complement(&b));
        prop_assert!(alg.eq_elem(&lhs, &rhs));
    }

    #[test]
    fn distributivity(a in region_strategy(), b in region_strategy(), c in region_strategy()) {
        let alg = alg();
        let lhs = alg.meet(&a, &alg.join(&b, &c));
        let rhs = alg.join(&alg.meet(&a, &b), &alg.meet(&a, &c));
        prop_assert!(alg.eq_elem(&lhs, &rhs));
    }

    #[test]
    fn inclusion_exclusion(a in region_strategy(), b in region_strategy()) {
        let u = a.union(&b).volume();
        let i = a.intersection(&b).volume();
        prop_assert!((u + i - a.volume() - b.volume()).abs() < 1e-9);
    }

    #[test]
    fn double_complement(a in region_strategy()) {
        let alg = alg();
        let cc = alg.complement(&alg.complement(&a));
        prop_assert!(alg.eq_elem(&cc, &a));
    }

    #[test]
    fn difference_pointwise(a in region_strategy(), b in region_strategy()) {
        let d = a.difference(&b);
        let mut rng_points = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                rng_points.push([i as f64 * 5.0 + 0.3, j as f64 * 5.0 + 0.7]);
            }
        }
        for p in rng_points {
            prop_assert_eq!(
                d.contains_point(&p),
                a.contains_point(&p) && !b.contains_point(&p)
            );
        }
    }

    #[test]
    fn bbox_encloses_region(a in region_strategy()) {
        let bb = a.bbox();
        for frag in a.boxes() {
            prop_assert!(frag.bbox().le(&bb));
        }
    }

    #[test]
    fn coalesce_preserves_semantics(a in region_strategy(), b in region_strategy()) {
        let mut u = a.union(&b);
        let before = u.clone();
        u.coalesce();
        prop_assert!(u.same_set(&before));
        prop_assert!(u.fragment_count() <= before.fragment_count());
    }

    #[test]
    fn atomless_proper_parts(a in region_strategy()) {
        let alg = alg();
        if !alg.is_zero(&a) {
            let p = alg.proper_part(&a).unwrap();
            prop_assert!(!p.is_empty());
            prop_assert!(p.subset_of(&a));
            prop_assert!(!p.same_set(&a));
            prop_assert!(p.volume() < a.volume());
        }
    }

    /// Fragment counts stay bounded by the structural O(n·m·2K) bound
    /// for difference of unions of boxes.
    #[test]
    fn fragmentation_bounded(a in region_strategy(), b in region_strategy()) {
        let d = a.difference(&b);
        let bound = a.fragment_count() * (b.fragment_count() * 4 + 1).pow(1);
        // Each subtraction of a box can split a fragment into ≤ 2K = 4
        // pieces; m sequential subtractions give ≤ n·(4m+…) — use a
        // generous structural bound.
        let generous = a.fragment_count() * (1 + 4 * b.fragment_count()) * 4;
        prop_assert!(d.fragment_count() <= generous.max(bound));
    }
}

/// Measure monotonicity under the algebra order.
#[test]
fn measure_monotone() {
    let a = Region::from_box(AaBox::new([10.0, 10.0], [30.0, 30.0]));
    let b = Region::from_boxes([
        AaBox::new([0.0, 0.0], [50.0, 50.0]),
        AaBox::new([60.0, 60.0], [70.0, 70.0]),
    ]);
    assert!(a.subset_of(&b));
    assert!(a.volume() <= b.volume());
}
