//! Property tests for the z-order substrate and its index: the
//! decomposition is an exact cover, the join matches brute force, and
//! the z-order index agrees with the scan oracle on corner queries —
//! validating the paper's closing remark that the approach can use
//! z-ordering methods.

use proptest::prelude::*;
use scq_integration::prelude::*;

fn universe() -> Bbox<2> {
    Bbox::new([0.0, 0.0], [64.0, 64.0])
}

fn box_strategy() -> BoxedStrategy<Bbox<2>> {
    (0.0f64..60.0, 0.0f64..60.0, 0.2f64..10.0, 0.2f64..10.0)
        .prop_map(|(x, y, w, h)| Bbox::new([x, y], [(x + w).min(64.0), (y + h).min(64.0)]))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Morton encode/decode round trip.
    #[test]
    fn morton_round_trip(x in 0u32..u32::MAX, y in 0u32..u32::MAX) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    /// Z-order preserves quadtree block locality: the four children of a
    /// block occupy a contiguous quarter each of the parent's interval.
    #[test]
    fn dyadic_nesting(x in 0u32..1 << 15, y in 0u32..1 << 15, level in 1u32..8) {
        let bx = (x >> level) << level; // align to block
        let by = (y >> level) << level;
        let z_block = morton_encode(bx, by);
        let size = 1u64 << (2 * level);
        let z = morton_encode(x & ((1 << 15) - 1) | bx, y & ((1 << 15) - 1) | by);
        // any cell inside the block lies in [z_block, z_block + size)
        let inside = (bx..bx + (1 << level)).contains(&(x | bx))
            && (by..by + (1 << level)).contains(&(y | by));
        if inside {
            prop_assert!(z >= z_block && z < z_block + size);
        }
    }

    /// Decomposition covers exactly the quantized rectangle.
    #[test]
    fn decomposition_exact_cover(b in box_strategy()) {
        let curve = ZCurve::new(universe(), 6);
        let ranges = decompose(&curve, &b);
        let ((x0, y0), (x1, y1)) = curve.quantize_box(&b).unwrap();
        for x in 0u32..64 {
            for y in 0u32..64 {
                let z = morton_encode(x, y);
                let inside = x >= x0 && x <= x1 && y >= y0 && y <= y1;
                let covered = ranges.iter().any(|&(lo, hi)| lo <= z && z < hi);
                prop_assert_eq!(covered, inside, "cell ({}, {})", x, y);
            }
        }
        // disjoint and sorted
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0);
        }
    }

    /// The join equals brute force regardless of curve resolution.
    #[test]
    fn join_matches_bruteforce(
        left in prop::collection::vec(box_strategy(), 1..30),
        right in prop::collection::vec(box_strategy(), 1..30),
        bits in 2u32..9,
    ) {
        let curve = ZCurve::new(universe(), bits);
        let l: Vec<(Bbox<2>, u64)> =
            left.iter().enumerate().map(|(i, &b)| (b, i as u64)).collect();
        let r: Vec<(Bbox<2>, u64)> =
            right.iter().enumerate().map(|(i, &b)| (b, 1000 + i as u64)).collect();
        let mut got = zorder_join(&curve, &l, &r);
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = Vec::new();
        for (lb, li) in &l {
            for (rb, ri) in &r {
                if lb.overlaps(rb) {
                    want.push((*li, *ri));
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The z-order index agrees with the scan oracle.
    #[test]
    fn zindex_matches_scan(
        items in prop::collection::vec(box_strategy(), 1..60),
        probe in box_strategy(),
        bits in 3u32..9,
    ) {
        let items: Vec<(u64, Bbox<2>)> =
            items.into_iter().enumerate().map(|(i, b)| (i as u64, b)).collect();
        let z = ZOrderIndex::from_items(universe(), bits, items.iter().copied());
        let scan = ScanIndex::from_items(items.iter().copied());
        for q in [
            CornerQuery::unconstrained().and_overlaps(&probe),
            CornerQuery::unconstrained().and_contained_in(&probe),
            CornerQuery::unconstrained().and_contains(&probe),
            CornerQuery::unconstrained().and_contained_in(&probe).and_overlaps(&probe),
        ] {
            let mut a = Vec::new();
            z.query_corner(&q, &mut a);
            let mut b = Vec::new();
            scan.query_corner(&q, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
