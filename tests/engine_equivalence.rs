//! Cross-executor equivalence on randomized databases and queries: the
//! naive, triangular-exact and bbox-filtered executors (on all three
//! index structures) must enumerate identical solution sets.

use proptest::prelude::*;
use scq_integration::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scq_engine::workload::{clustered_boxes, uniform_boxes};

fn build_db(seed: u64, n_a: usize, n_b: usize) -> SpatialDatabase<2> {
    let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
    let mut db = SpatialDatabase::new(universe);
    let mut rng = StdRng::seed_from_u64(seed);
    let ca = db.collection("A");
    let cb = db.collection("B");
    for r in uniform_boxes(&mut rng, n_a, &universe, 2.0, 20.0) {
        db.insert(ca, r);
    }
    for r in clustered_boxes(&mut rng, 3, n_b / 3 + 1, &universe, 15.0, 6.0) {
        db.insert(cb, r);
    }
    db
}

fn sorted_solutions(r: &scq_engine::QueryResult) -> Vec<Vec<(Var, usize)>> {
    let mut v: Vec<Vec<(Var, usize)>> = r
        .solutions
        .iter()
        .map(|s| s.iter().map(|(&v, o)| (v, o.index)).collect())
        .collect();
    v.sort();
    v
}

/// A pool of query shapes covering positive, negative, and mixed
/// constraint systems over two collection variables and one known.
fn query_pool() -> Vec<&'static str> {
    vec![
        "X & Y != 0",             // binary overlay (the z-order query)
        "X <= K; X & Y != 0",     // containment + overlap
        "X !<= Y",                // negative containment
        "X & Y = 0; X & K != 0",  // disjointness + overlap with known
        "X <= K | Y",             // union bound
        "Y != 0; X < K",          // strict containment + nonempty
        "X & Y != 0; X & Y != K", // disequality against known
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn executors_agree(
        seed in 0u64..1000,
        qi in 0usize..7,
        swap_order in proptest::bool::ANY,
    ) {
        let db = build_db(seed, 12, 9);
        let src = query_pool()[qi];
        let sys = parse_system(src).unwrap();
        let known = Region::from_box(AaBox::new([25.0, 25.0], [75.0, 75.0]));
        let mut q = Query::new(sys);
        if q.system.table.get("K").is_some() {
            q = q.known("K", known);
        }
        let ca = db.collection_id("A").unwrap();
        let cb = db.collection_id("B").unwrap();
        q = q.from_collection("X", ca).from_collection("Y", cb);
        if swap_order {
            q = q.with_order(&["Y", "X"]);
        }

        let naive = naive_execute(&db, &q).unwrap();
        let tri = triangular_execute(&db, &q).unwrap();
        prop_assert_eq!(sorted_solutions(&naive), sorted_solutions(&tri), "query {}", src);
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let bbox = bbox_execute(&db, &q, kind).unwrap();
            prop_assert_eq!(
                sorted_solutions(&naive),
                sorted_solutions(&bbox),
                "query {} on {:?}", src, kind
            );
        }
    }

    /// The optimizer's pruning counters never exceed the naive search
    /// tree (the paper's "eliminate useless partial solution tuples").
    #[test]
    fn pruning_never_expands_search(seed in 0u64..500) {
        let db = build_db(seed, 14, 10);
        let sys = parse_system("X <= K; X & Y != 0").unwrap();
        let q = Query::new(sys)
            .known("K", Region::from_box(AaBox::new([20.0, 20.0], [80.0, 80.0])))
            .from_collection("X", db.collection_id("A").unwrap())
            .from_collection("Y", db.collection_id("B").unwrap());
        let naive = naive_execute(&db, &q).unwrap();
        let bbox = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        prop_assert!(bbox.stats.partial_tuples <= naive.stats.partial_tuples);
        prop_assert_eq!(naive.stats.solutions, bbox.stats.solutions);
    }
}

/// Three-variable join with all executors (heavier, so not proptest).
#[test]
fn three_way_join_equivalence() {
    for seed in [1, 17, 99] {
        let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        let mut db = SpatialDatabase::new(universe);
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = db.collection("A");
        let cb = db.collection("B");
        let cc = db.collection("C");
        for r in uniform_boxes(&mut rng, 8, &universe, 5.0, 25.0) {
            db.insert(ca, r);
        }
        for r in uniform_boxes(&mut rng, 8, &universe, 5.0, 25.0) {
            db.insert(cb, r);
        }
        for r in uniform_boxes(&mut rng, 8, &universe, 5.0, 25.0) {
            db.insert(cc, r);
        }
        let sys = parse_system("X & Y != 0; Y & Z != 0; X & Z = 0").unwrap();
        let q = Query::new(sys)
            .from_collection("X", ca)
            .from_collection("Y", cb)
            .from_collection("Z", cc);
        let naive = naive_execute(&db, &q).unwrap();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let opt = bbox_execute(&db, &q, kind).unwrap();
            assert_eq!(
                sorted_solutions(&naive),
                sorted_solutions(&opt),
                "seed {seed} {kind:?}"
            );
        }
    }
}
