//! End-to-end persistence + integrity: build a database, snapshot it,
//! reload, and verify that query answers, integrity verdicts and the
//! planner's decisions all survive the round trip.

use scq_engine::integrity::{check_integrity, is_consistent, IntegrityRule};
use scq_engine::snapshot::{load, save};
use scq_engine::workload::{map_workload, MapParams};
use scq_engine::{order_by_selectivity, ExecOptions};
use scq_integration::prelude::*;

fn build() -> SpatialDatabase<2> {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    map_workload(
        &mut db,
        99,
        &MapParams {
            n_states: 5,
            n_towns: 12,
            n_roads: 30,
            useful_road_fraction: 0.15,
        },
    );
    db
}

fn smuggler_query(db: &SpatialDatabase<2>) -> Query<2> {
    let sys =
        parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C").unwrap();
    Query::new(sys)
        .known(
            "C",
            Region::from_box(AaBox::new([100.0, 100.0], [900.0, 900.0])),
        )
        .known(
            "A",
            Region::from_box(AaBox::new([600.0, 420.0], [680.0, 440.0])),
        )
        .from_collection("T", db.collection_id("towns").unwrap())
        .from_collection("R", db.collection_id("roads").unwrap())
        .from_collection("B", db.collection_id("states").unwrap())
        .with_order(&["T", "R", "B"])
}

#[test]
fn snapshot_preserves_query_answers() {
    let db = build();
    let reloaded: SpatialDatabase<2> = load(&save(&db)).expect("round trip");
    let q1 = smuggler_query(&db);
    let q2 = smuggler_query(&reloaded);
    for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
        let a = bbox_execute(&db, &q1, kind).unwrap();
        let b = bbox_execute(&reloaded, &q2, kind).unwrap();
        let mut sa = a.solutions.clone();
        let mut sb = b.solutions.clone();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb, "{kind:?}");
    }
}

#[test]
fn snapshot_preserves_planner_decisions() {
    let db = build();
    let reloaded: SpatialDatabase<2> = load(&save(&db)).expect("round trip");
    let q1 = smuggler_query(&db);
    let q2 = smuggler_query(&reloaded);
    let p1 = order_by_selectivity(&db, &q1, IndexKind::RTree).unwrap();
    let p2 = order_by_selectivity(&reloaded, &q2, IndexKind::RTree).unwrap();
    assert_eq!(
        p1.order, p2.order,
        "planner order must be identical after reload"
    );
    let c1: Vec<usize> = p1.estimates.iter().map(|e| e.candidates).collect();
    let c2: Vec<usize> = p2.estimates.iter().map(|e| e.candidates).collect();
    assert_eq!(c1, c2);
}

#[test]
fn snapshot_preserves_integrity_verdicts() {
    let mut db = build();
    // plant a violation: a road escaping the country
    let roads = db.collection_id("roads").unwrap();
    db.insert(
        roads,
        Region::from_box(AaBox::new([850.0, 850.0], [980.0, 980.0])),
    );

    let rule = |db: &SpatialDatabase<2>| {
        let sys = parse_system("R !<= C; R != 0").unwrap();
        IntegrityRule {
            name: "roads-stay-in-country".into(),
            pattern: Query::new(sys)
                .known(
                    "C",
                    Region::from_box(AaBox::new([100.0, 100.0], [900.0, 900.0])),
                )
                .from_collection("R", db.collection_id("roads").unwrap()),
        }
    };
    let reloaded: SpatialDatabase<2> = load(&save(&db)).expect("round trip");
    let v1 = check_integrity(&db, &[rule(&db)], IndexKind::RTree, 100).unwrap();
    let v2 = check_integrity(&reloaded, &[rule(&reloaded)], IndexKind::RTree, 100).unwrap();
    assert!(!v1.is_empty(), "the planted violation is found");
    assert_eq!(v1.len(), v2.len());
    assert!(!is_consistent(&reloaded, &[rule(&reloaded)], IndexKind::Scan).unwrap());
}

#[test]
fn existence_mode_after_reload() {
    let db = build();
    let reloaded: SpatialDatabase<2> = load(&save(&db)).expect("round trip");
    let q = smuggler_query(&reloaded);
    let first =
        scq_engine::bbox_execute_opts(&reloaded, &q, IndexKind::RTree, ExecOptions::first())
            .unwrap();
    let all = bbox_execute(&reloaded, &q, IndexKind::RTree).unwrap();
    assert_eq!(first.solutions.len().min(1), all.solutions.len().min(1));
    if !all.solutions.is_empty() {
        assert!(all.solutions.contains(&first.solutions[0]));
    }
}
