//! Property tests for the spatial indexes: R-tree (both split
//! strategies) and grid file agree with the scan oracle on arbitrary
//! corner queries, maintain their invariants, and handle degenerate
//! inputs.

use proptest::prelude::*;
use scq_integration::prelude::*;

type Item = (u64, Bbox<2>);

fn boxes_strategy(n: usize) -> BoxedStrategy<Vec<Item>> {
    prop::collection::vec((0.0f64..95.0, 0.0f64..95.0, 0.0f64..8.0, 0.0f64..8.0), 1..n)
        .prop_map(|v| {
            v.into_iter()
                .enumerate()
                .map(|(i, (x, y, w, h))| (i as u64, Bbox::new([x, y], [x + w, y + h])))
                .collect()
        })
        .boxed()
}

fn query_strategy() -> BoxedStrategy<CornerQuery<2>> {
    (
        0.0f64..90.0,
        0.0f64..90.0,
        1.0f64..40.0,
        1.0f64..40.0,
        0u8..7,
    )
        .prop_map(|(x, y, w, h, shape)| {
            let probe = Bbox::new([x, y], [x + w, y + h]);
            let inner = Bbox::new([x + w * 0.25, y + h * 0.25], [x + w * 0.5, y + h * 0.5]);
            let q = CornerQuery::unconstrained();
            match shape {
                0 => q.and_overlaps(&probe),
                1 => q.and_contained_in(&probe),
                2 => q.and_contains(&inner),
                3 => q.and_contained_in(&probe).and_overlaps(&inner),
                4 => q.and_contains(&inner).and_contained_in(&probe),
                5 => q.and_overlaps(&probe).and_overlaps(&inner),
                _ => q
                    .and_contained_in(&probe)
                    .and_contains(&inner)
                    .and_overlaps(&probe),
            }
        })
        .boxed()
}

fn run<I: SpatialIndex<2>>(idx: &I, q: &CornerQuery<2>) -> Vec<u64> {
    let mut out = Vec::new();
    idx.query_corner(q, &mut out);
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_indexes_agree(items in boxes_strategy(120), q in query_strategy()) {
        let scan = ScanIndex::from_items(items.iter().copied());
        let rt_lin = RTree::from_items(SplitStrategy::Linear, items.iter().copied());
        let rt_quad = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
        let grid = GridFile::bulk_load(8, items.iter().copied());
        let expect = run(&scan, &q);
        prop_assert_eq!(run(&rt_lin, &q), expect.clone(), "linear rtree");
        prop_assert_eq!(run(&rt_quad, &q), expect.clone(), "quadratic rtree");
        prop_assert_eq!(run(&grid, &q), expect, "grid file");
    }

    #[test]
    fn rtree_invariants_hold(items in boxes_strategy(200)) {
        for strategy in [SplitStrategy::Linear, SplitStrategy::Quadratic] {
            let t = RTree::from_items(strategy, items.iter().copied());
            t.check_invariants();
            prop_assert_eq!(t.len(), items.len());
        }
    }

    /// Insertion order must not affect query results.
    #[test]
    fn insertion_order_irrelevant(items in boxes_strategy(60), q in query_strategy()) {
        let fwd = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
        let rev = RTree::from_items(SplitStrategy::Quadratic, items.iter().rev().copied());
        prop_assert_eq!(run(&fwd, &q), run(&rev, &q));
    }

    /// Unconstrained queries return every nonempty box exactly once.
    #[test]
    fn unconstrained_returns_all(items in boxes_strategy(80)) {
        let grid = GridFile::bulk_load(4, items.iter().copied());
        let nonempty = items.iter().filter(|(_, b)| !b.is_empty()).count();
        let got = run(&grid, &CornerQuery::unconstrained());
        prop_assert_eq!(got.len(), nonempty);
    }
}

/// Degenerate shapes: zero-width boxes are legal corner points.
#[test]
fn degenerate_boxes() {
    let items: Vec<Item> = (0..50)
        .map(|i| (i, Bbox::point([i as f64, (i * 7 % 50) as f64])))
        .collect();
    let rt = RTree::from_items(SplitStrategy::Linear, items.iter().copied());
    let gf = GridFile::bulk_load(4, items.iter().copied());
    let scan = ScanIndex::from_items(items.iter().copied());
    let q = CornerQuery::unconstrained().and_contained_in(&Bbox::new([10.0, 0.0], [30.0, 50.0]));
    assert_eq!(run(&rt, &q), run(&scan, &q));
    assert_eq!(run(&gf, &q), run(&scan, &q));
    assert!(!run(&scan, &q).is_empty());
}

/// Mass duplicates stress bucket chaining and split min-fill.
#[test]
fn mass_duplicates() {
    let b = Bbox::new([5.0, 5.0], [6.0, 6.0]);
    let items: Vec<Item> = (0..200).map(|i| (i, b)).collect();
    let rt = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
    rt.check_invariants();
    let gf = GridFile::bulk_load(8, items.iter().copied());
    let q = CornerQuery::unconstrained().and_overlaps(&b);
    assert_eq!(run(&rt, &q).len(), 200);
    assert_eq!(run(&gf, &q).len(), 200);
}
