//! Property tests for incremental index maintenance under mutations.
//!
//! The central claim: after an **arbitrary** sequence of inserts,
//! removes and updates, every index structure answers corner queries
//! exactly like an index freshly rebuilt from the surviving live
//! objects — and the database-level invariants (`integrity::check`)
//! hold. Updates and removes address slots by value modulo the current
//! slot count, so the sequences freely hit tombstones, empty regions
//! and repeated targets.

use proptest::prelude::*;
use scq_engine::integrity;
use scq_engine::snapshot::{load, save};
use scq_engine::CollectionId;
use scq_integration::prelude::*;

/// One scripted mutation. Slot choices are reduced modulo the slot
/// count at application time, so any u16 script is applicable to any
/// database state.
#[derive(Clone, Debug)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    InsertEmpty,
    Remove {
        slot: u16,
    },
    Update {
        slot: u16,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    UpdateToEmpty {
        slot: u16,
    },
}

fn op_strategy() -> BoxedStrategy<Op> {
    let coords = (0.0f64..90.0, 0.0f64..90.0, 0.0f64..9.0, 0.0f64..9.0);
    prop_oneof![
        4 => coords.clone().prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        1 => Just(Op::InsertEmpty),
        3 => (0u16..u16::MAX).prop_map(|slot| Op::Remove { slot }),
        2 => (0u16..u16::MAX, coords)
            .prop_map(|(slot, (x, y, w, h))| Op::Update { slot, x, y, w, h }),
        1 => (0u16..u16::MAX).prop_map(|slot| Op::UpdateToEmpty { slot }),
    ]
    .boxed()
}

fn apply(db: &mut SpatialDatabase<2>, coll: CollectionId, ops: &[Op]) {
    for op in ops {
        let slots = db.collection_len(coll);
        match *op {
            Op::Insert { x, y, w, h } => {
                db.insert(coll, Region::from_box(AaBox::new([x, y], [x + w, y + h])));
            }
            Op::InsertEmpty => {
                db.insert(coll, Region::empty());
            }
            Op::Remove { slot } if slots > 0 => {
                db.remove(ObjectRef {
                    collection: coll,
                    index: slot as usize % slots,
                });
            }
            Op::Update { slot, x, y, w, h } if slots > 0 => {
                db.update(
                    ObjectRef {
                        collection: coll,
                        index: slot as usize % slots,
                    },
                    Region::from_box(AaBox::new([x, y], [x + w, y + h])),
                );
            }
            Op::UpdateToEmpty { slot } if slots > 0 => {
                db.update(
                    ObjectRef {
                        collection: coll,
                        index: slot as usize % slots,
                    },
                    Region::empty(),
                );
            }
            _ => {} // slot ops on an empty collection: no-op
        }
    }
}

fn corner_queries() -> Vec<CornerQuery<2>> {
    let mut qs = vec![CornerQuery::unconstrained()];
    for i in 0..6 {
        let t = i as f64 * 13.0;
        let probe = Bbox::new([t, t * 0.5], [t + 25.0, t * 0.5 + 30.0]);
        let inner = Bbox::new([t + 8.0, t * 0.5 + 8.0], [t + 12.0, t * 0.5 + 12.0]);
        qs.push(CornerQuery::unconstrained().and_overlaps(&probe));
        qs.push(CornerQuery::unconstrained().and_contained_in(&probe));
        qs.push(CornerQuery::unconstrained().and_contains(&inner));
        qs.push(
            CornerQuery::unconstrained()
                .and_contained_in(&probe)
                .and_contains(&inner)
                .and_overlaps(&probe),
        );
    }
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any mutation sequence, each maintained index answers
    /// exactly like one rebuilt from scratch over the live objects.
    #[test]
    fn mutated_indexes_match_fresh_rebuild(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        let mut db = SpatialDatabase::new(universe);
        let coll = db.collection("objs");
        apply(&mut db, coll, &ops);

        integrity::check(&db).expect("mutated database is consistent");

        // A fresh database containing only the survivors, rebuilt from
        // scratch (its slot i corresponds to the i-th live slot).
        let mut fresh = SpatialDatabase::new(universe);
        let fcoll = fresh.collection("objs");
        let live: Vec<usize> = db.live_indices(coll).collect();
        for &index in &live {
            fresh.insert(fcoll, db.region(ObjectRef { collection: coll, index }).clone());
        }

        for q in corner_queries() {
            for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
                let mut got = Vec::new();
                db.query_collection(coll, kind, &q, &mut got);
                // map mutated-slot ids onto fresh-slot ids
                let mut got: Vec<u64> = got
                    .into_iter()
                    .map(|id| {
                        live.binary_search(&(id as usize)).expect("live id") as u64
                    })
                    .collect();
                got.sort_unstable();
                let mut expect = Vec::new();
                fresh.query_collection(fcoll, kind, &q, &mut expect);
                expect.sort_unstable();
                prop_assert_eq!(got, expect, "{:?} diverged from rebuild", kind);
            }
        }
    }

    /// Engine answers survive mutations: the optimized executors agree
    /// with the naive oracle on a mutated database, and a snapshot
    /// round trip (tombstones included) preserves the answers.
    #[test]
    fn executors_and_snapshots_agree_after_mutations(
        ops in prop::collection::vec(op_strategy(), 1..60),
        seed in 0u64..1000,
    ) {
        let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        let mut db = SpatialDatabase::new(universe);
        let xs = db.collection("xs");
        let ys = db.collection("ys");
        // seed both collections, then churn xs with the scripted ops
        for i in 0..12 {
            let t = (i as f64 * 7.0 + seed as f64) % 80.0;
            db.insert(xs, Region::from_box(AaBox::new([t, 0.0], [t + 12.0, 50.0])));
            db.insert(ys, Region::from_box(AaBox::new([t + 3.0, 10.0], [t + 9.0, 40.0])));
        }
        apply(&mut db, xs, &ops);

        let sys = parse_system("X & Y != 0").unwrap();
        let q = Query::new(sys)
            .from_collection("X", xs)
            .from_collection("Y", ys);
        let oracle = naive_execute(&db, &q).unwrap();
        let mut expect = oracle.solutions.clone();
        expect.sort();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut got = bbox_execute(&db, &q, kind).unwrap().solutions;
            got.sort();
            prop_assert_eq!(&got, &expect, "{:?} diverged from naive", kind);
        }
        let tri = triangular_execute(&db, &q).unwrap();
        let mut got = tri.solutions;
        got.sort();
        prop_assert_eq!(&got, &expect, "triangular diverged from naive");

        // snapshot round trip preserves tombstones and answers
        let loaded: SpatialDatabase<2> = load(&save(&db)).unwrap();
        integrity::check(&loaded).expect("reloaded database is consistent");
        let q2 = Query::new(parse_system("X & Y != 0").unwrap())
            .from_collection("X", loaded.collection_id("xs").unwrap())
            .from_collection("Y", loaded.collection_id("ys").unwrap());
        let mut reloaded = bbox_execute(&loaded, &q2, IndexKind::RTree).unwrap().solutions;
        reloaded.sort();
        prop_assert_eq!(reloaded, expect, "answers changed across snapshot");
    }
}
