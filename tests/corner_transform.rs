//! EX-F3: Figure 3 — a conjunction of containment-above, containment-
//! below and overlap constraints over bounding boxes is answered by ONE
//! range query in corner space, on every index structure.

use scq_integration::prelude::*;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_interval(rng: &mut StdRng) -> Bbox<1> {
    let lo = rng.random_range(0.0..90.0);
    let w = rng.random_range(0.5..10.0);
    Bbox::new([lo], [lo + w])
}

/// The exact Figure 3 scenario: intervals on the real line, query
/// `{x | a ⊑ ⌈x⌉ ⊑ b ∧ ⌈x⌉ ⊓ c ≠ ∅}`.
#[test]
fn figure3_single_range_query_all_indexes() {
    let mut rng = StdRng::seed_from_u64(33);
    let items: Vec<(u64, Bbox<1>)> = (0..2000u64)
        .map(|id| (id, random_interval(&mut rng)))
        .collect();

    let mut rtree = RTree::<1>::new(SplitStrategy::Quadratic);
    let mut grid = GridFile::<1>::new(16);
    let mut scan = ScanIndex::<1>::new();
    for &(id, b) in &items {
        rtree.insert(id, b);
        grid.insert(id, b);
        scan.insert(id, b);
    }

    for trial in 0..25 {
        let a_lo = rng.random_range(10.0..60.0);
        let a = Bbox::new([a_lo], [a_lo + rng.random_range(0.1..2.0)]);
        let b = Bbox::new(
            [a_lo - rng.random_range(1.0..20.0)],
            [a_lo + rng.random_range(3.0..30.0)],
        );
        let c_lo = rng.random_range(0.0..95.0);
        let c = Bbox::new([c_lo], [c_lo + 4.0]);

        let q = CornerQuery::unconstrained()
            .and_contains(&a)
            .and_contained_in(&b)
            .and_overlaps(&c);

        // ground truth by direct predicate evaluation
        let mut expect: Vec<u64> = items
            .iter()
            .filter(|(_, x)| a.le(x) && x.le(&b) && x.overlaps(&c))
            .map(|&(id, _)| id)
            .collect();
        expect.sort_unstable();

        for (name, out) in [
            ("rtree", {
                let mut v = Vec::new();
                rtree.query_corner(&q, &mut v);
                v
            }),
            ("grid", {
                let mut v = Vec::new();
                grid.query_corner(&q, &mut v);
                v
            }),
            ("scan", {
                let mut v = Vec::new();
                scan.query_corner(&q, &mut v);
                v
            }),
        ] {
            let mut out = out;
            out.sort_unstable();
            assert_eq!(out, expect, "{name} trial {trial}");
        }
    }
}

/// The corner transform is the identity on the information content of a
/// box: round trip plus the query-box geometry of Figure 3.
#[test]
fn corner_geometry() {
    let x = Bbox::new([2.0, 3.0], [5.0, 7.0]);
    let (lo, hi) = corner_point(&x).unwrap();
    assert_eq!(lo, [2.0, 3.0]);
    assert_eq!(hi, [5.0, 7.0]);

    // The shaded rectangle of Figure 3 in corner space (1-d case):
    // axis 1 = interval start, axis 2 = interval end.
    let a = Bbox::new([4.0], [5.0]);
    let b = Bbox::new([0.0], [10.0]);
    let c = Bbox::new([8.0], [9.0]);
    let q = CornerQuery::unconstrained()
        .and_contains(&a)
        .and_contained_in(&b)
        .and_overlaps(&c);
    let ((lo_min, hi_min), (lo_max, hi_max)) = q.query_box();
    // start ∈ [b.lo, min(a.lo, c.hi)] = [0, 4]
    assert_eq!(lo_min, [0.0]);
    assert_eq!(lo_max, [4.0]);
    // end ∈ [max(a.hi, c.lo), b.hi] = [8, 10]
    assert_eq!(hi_min, [8.0]);
    assert_eq!(hi_max, [10.0]);
}

/// 2-d corner queries: conjunctions of several overlap constraints stay
/// a single range query (the query boxes intersect).
#[test]
fn multiple_overlaps_one_query() {
    let mut rng = StdRng::seed_from_u64(7);
    let boxes: Vec<(u64, Bbox<2>)> = (0..800u64)
        .map(|id| {
            let lo = [rng.random_range(0.0..90.0), rng.random_range(0.0..90.0)];
            let w = [rng.random_range(1.0..10.0), rng.random_range(1.0..10.0)];
            (id, Bbox::new(lo, [lo[0] + w[0], lo[1] + w[1]]))
        })
        .collect();
    let rtree = RTree::from_items(SplitStrategy::Linear, boxes.iter().copied());

    let c1 = Bbox::new([20.0, 20.0], [40.0, 40.0]);
    let c2 = Bbox::new([35.0, 35.0], [60.0, 60.0]);
    let q = CornerQuery::unconstrained()
        .and_overlaps(&c1)
        .and_overlaps(&c2);
    let mut got = Vec::new();
    rtree.query_corner(&q, &mut got);
    got.sort_unstable();
    let mut expect: Vec<u64> = boxes
        .iter()
        .filter(|(_, b)| b.overlaps(&c1) && b.overlaps(&c2))
        .map(|&(id, _)| id)
        .collect();
    expect.sort_unstable();
    assert_eq!(got, expect);
}
