//! Property tests for the sharded database.
//!
//! The central claim of `crates/shard`: a [`ShardedDatabase`] fed an
//! **arbitrary** mutation sequence answers every corner query and every
//! constraint query exactly like an unsharded [`SpatialDatabase`] fed
//! the same sequence. Both stores hand out slot indices in insertion
//! order and never reuse them, so global ids are directly comparable —
//! no translation layer in the oracle.

use proptest::prelude::*;
use scq_engine::CollectionId;
use scq_integration::prelude::*;
use scq_shard::{execute, execute_fanout};

/// One scripted mutation (slot choices reduced modulo the slot count at
/// application time, exactly like `tests/mutation_props.rs`).
#[derive(Clone, Debug)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    InsertEmpty,
    Remove {
        slot: u16,
    },
    Update {
        slot: u16,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    UpdateToEmpty {
        slot: u16,
    },
}

fn op_strategy() -> BoxedStrategy<Op> {
    let coords = (0.0f64..90.0, 0.0f64..90.0, 0.0f64..9.0, 0.0f64..9.0);
    prop_oneof![
        4 => coords.clone().prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        1 => Just(Op::InsertEmpty),
        3 => (0u16..u16::MAX).prop_map(|slot| Op::Remove { slot }),
        // Updates include long moves, so cross-shard migration is hit
        // constantly.
        2 => (0u16..u16::MAX, coords)
            .prop_map(|(slot, (x, y, w, h))| Op::Update { slot, x, y, w, h }),
        1 => (0u16..u16::MAX).prop_map(|slot| Op::UpdateToEmpty { slot }),
    ]
    .boxed()
}

/// Applies one op to both stores; their slot spaces stay in lockstep.
fn apply_both(
    sharded: &mut ShardedDatabase,
    plain: &mut SpatialDatabase<2>,
    coll: CollectionId,
    op: &Op,
) {
    let slots = plain.collection_len(coll);
    assert_eq!(
        slots,
        sharded.collection_len(coll),
        "slot spaces in lockstep"
    );
    let obj = |slot: u16| ObjectRef {
        collection: coll,
        index: slot as usize % slots,
    };
    match *op {
        Op::Insert { x, y, w, h } => {
            let r = Region::from_box(AaBox::new([x, y], [x + w, y + h]));
            let a = sharded.insert(coll, r.clone());
            let b = plain.insert(coll, r);
            assert_eq!(a, b, "global refs line up");
        }
        Op::InsertEmpty => {
            let a = sharded.insert(coll, Region::empty());
            let b = plain.insert(coll, Region::empty());
            assert_eq!(a, b);
        }
        Op::Remove { slot } if slots > 0 => {
            assert_eq!(sharded.remove(obj(slot)), plain.remove(obj(slot)));
        }
        Op::Update { slot, x, y, w, h } if slots > 0 => {
            let r = Region::from_box(AaBox::new([x, y], [x + w, y + h]));
            assert_eq!(
                sharded.update(obj(slot), r.clone()),
                plain.update(obj(slot), r)
            );
        }
        Op::UpdateToEmpty { slot } if slots > 0 => {
            assert_eq!(
                sharded.update(obj(slot), Region::empty()),
                plain.update(obj(slot), Region::empty())
            );
        }
        _ => {} // slot ops on an empty collection: no-op
    }
}

fn corner_queries() -> Vec<CornerQuery<2>> {
    let mut qs = vec![CornerQuery::unconstrained()];
    for i in 0..6 {
        let t = i as f64 * 13.0;
        let probe = Bbox::new([t, t * 0.5], [t + 25.0, t * 0.5 + 30.0]);
        let inner = Bbox::new([t + 8.0, t * 0.5 + 8.0], [t + 12.0, t * 0.5 + 12.0]);
        qs.push(CornerQuery::unconstrained().and_overlaps(&probe));
        qs.push(CornerQuery::unconstrained().and_contained_in(&probe));
        qs.push(CornerQuery::unconstrained().and_contains(&inner));
        qs.push(
            CornerQuery::unconstrained()
                .and_contained_in(&probe)
                .and_contains(&inner)
                .and_overlaps(&probe),
        );
    }
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// After any mutation sequence, the sharded store answers every
    /// corner query identically to the unsharded store, on all three
    /// index structures, and both pass their integrity checks.
    #[test]
    fn sharded_corner_queries_match_unsharded(
        ops in prop::collection::vec(op_strategy(), 1..100),
        n_shards in 1usize..7,
    ) {
        let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        let mut sharded = ShardedDatabase::new(universe, n_shards);
        let mut plain = SpatialDatabase::new(universe);
        let coll = sharded.collection("objs");
        prop_assert_eq!(plain.collection("objs"), coll);
        for op in &ops {
            apply_both(&mut sharded, &mut plain, coll, op);
        }
        sharded.check().expect("sharded store is consistent");
        scq_engine::integrity::check(&plain).expect("plain store is consistent");
        prop_assert_eq!(sharded.live_len(coll), plain.live_len(coll));

        for q in corner_queries() {
            for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
                let mut a = Vec::new();
                sharded.query_collection(coll, kind, &q, &mut a);
                a.sort_unstable();
                let mut b = Vec::new();
                plain.query_collection(coll, kind, &q, &mut b);
                b.sort_unstable();
                prop_assert_eq!(a, b, "{:?} diverged between sharded and plain", kind);
            }
        }
    }

    /// Constraint queries agree too: the engine executors over the
    /// sharded view, the shard fan-out, and a per-shard snapshot round
    /// trip all return the unsharded answer set.
    #[test]
    fn sharded_executors_match_unsharded(
        ops in prop::collection::vec(op_strategy(), 1..50),
        n_shards in 2usize..6,
        seed in 0u64..500,
    ) {
        let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        let mut sharded = ShardedDatabase::new(universe, n_shards);
        let mut plain = SpatialDatabase::new(universe);
        let xs = sharded.collection("xs");
        let ys = sharded.collection("ys");
        prop_assert_eq!(plain.collection("xs"), xs);
        prop_assert_eq!(plain.collection("ys"), ys);
        for i in 0..10 {
            let t = (i as f64 * 9.0 + seed as f64) % 78.0;
            let rx = Region::from_box(AaBox::new([t, 2.0], [t + 11.0, 48.0]));
            let ry = Region::from_box(AaBox::new([t + 3.0, 12.0], [t + 8.0, 38.0]));
            sharded.insert(xs, rx.clone());
            plain.insert(xs, rx);
            sharded.insert(ys, ry.clone());
            plain.insert(ys, ry);
        }
        for op in &ops {
            apply_both(&mut sharded, &mut plain, xs, op);
        }

        let sys = parse_system("X & Y != 0; X <= W").unwrap();
        let q = Query::new(sys)
            .known("W", Region::from_box(AaBox::new([0.0, 0.0], [55.0, 55.0])))
            .from_collection("X", xs)
            .from_collection("Y", ys);

        let mut oracle = naive_execute(&plain, &q).unwrap().solutions;
        oracle.sort();
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut got = execute(&sharded, &q, kind, scq_engine::ExecOptions::all())
                .unwrap()
                .solutions;
            got.sort();
            prop_assert_eq!(&got, &oracle, "sharded {:?} diverged from naive", kind);
        }
        let mut fanned = execute_fanout(&sharded, &q, IndexKind::RTree, scq_engine::ExecOptions::all())
            .unwrap()
            .solutions;
        fanned.sort();
        prop_assert_eq!(&fanned, &oracle, "fan-out diverged");

        // per-shard snapshot round trip preserves the answers
        let manifest = scq_shard::snapshot::save_manifest(&sharded);
        let payloads: Vec<_> = (0..sharded.n_shards())
            .map(|s| scq_shard::snapshot::save_shard(&sharded, s).unwrap())
            .collect();
        let reloaded = scq_shard::snapshot::load(&manifest, &payloads).unwrap();
        reloaded.check().expect("reloaded sharded store is consistent");
        let mut after = execute(&reloaded, &q, IndexKind::GridFile, scq_engine::ExecOptions::all())
            .unwrap()
            .solutions;
        after.sort();
        prop_assert_eq!(after, oracle, "answers changed across the snapshot");
    }

    /// Compaction preserves the live contents: answers over a compacted
    /// sharded store equal the pre-compaction answers modulo the remap.
    #[test]
    fn sharded_compaction_preserves_answers(
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        let mut sharded = ShardedDatabase::new(universe, 4);
        let mut plain = SpatialDatabase::new(universe);
        let coll = sharded.collection("objs");
        plain.collection("objs");
        for op in &ops {
            apply_both(&mut sharded, &mut plain, coll, op);
        }
        let report = sharded.compact();
        sharded.check().expect("consistent after compaction");
        prop_assert_eq!(sharded.collection_len(coll), sharded.live_len(coll));
        for q in corner_queries() {
            let mut before = Vec::new();
            plain.query_collection(coll, IndexKind::RTree, &q, &mut before);
            let mut before: Vec<u64> = before
                .into_iter()
                .map(|id| {
                    report
                        .fix_up(ObjectRef { collection: coll, index: id as usize })
                        .expect("query results are live, hence remapped")
                        .index as u64
                })
                .collect();
            before.sort_unstable();
            let mut after = Vec::new();
            sharded.query_collection(coll, IndexKind::RTree, &q, &mut after);
            after.sort_unstable();
            prop_assert_eq!(before, after, "compaction changed an answer");
        }
    }

    /// SCQM manifest v1→current compatibility under arbitrary
    /// mutations: a database saved with the current (v3) manifest,
    /// hand-downgraded to a v1 header (version field rewritten,
    /// explicit range table and v3 replica table spliced out — exactly
    /// what a v1 writer would have produced for a balanced cluster),
    /// must reload into a store that answers every corner query
    /// identically and passes its integrity check.
    #[test]
    fn manifest_v1_downgrade_reloads_identically(
        ops in prop::collection::vec(op_strategy(), 1..80),
        n_shards in 1usize..6,
    ) {
        let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        let mut sharded = ShardedDatabase::new(universe, n_shards);
        let mut plain = SpatialDatabase::new(universe);
        let coll = sharded.collection("objs");
        prop_assert_eq!(plain.collection("objs"), coll);
        for op in &ops {
            apply_both(&mut sharded, &mut plain, coll, op);
        }
        let v2 = scq_shard::snapshot::save_manifest(&sharded).to_vec();
        // Downgrade by hand: version 3 → 1 at offset 4, then splice
        // out the per-shard range table (16 bytes per shard) that sits
        // after magic(4) + version(2) + dim(2) + universe(32) +
        // bits(4) + shard count(4) = 48 bytes, plus the v3 replica
        // table right after it (a zero u32 count per shard — these are
        // in-process shards with no replica addresses).
        let mut v1 = v2.clone();
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        v1.drain(48..48 + n_shards * 16 + n_shards * 4);
        let payloads: Vec<_> = (0..sharded.n_shards())
            .map(|s| scq_shard::snapshot::save_shard(&sharded, s).unwrap())
            .collect();
        let from_v1 = scq_shard::snapshot::load(&v1, &payloads).unwrap();
        from_v1.check().expect("v1 reload is consistent");
        let from_v2 = scq_shard::snapshot::load(&v2, &payloads).unwrap();
        prop_assert_eq!(from_v1.collection_len(coll), sharded.collection_len(coll));
        prop_assert_eq!(from_v1.live_len(coll), sharded.live_len(coll));
        for q in corner_queries() {
            for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
                let mut v1_ids = Vec::new();
                from_v1.query_collection(coll, kind, &q, &mut v1_ids);
                v1_ids.sort_unstable();
                let mut v2_ids = Vec::new();
                from_v2.query_collection(coll, kind, &q, &mut v2_ids);
                v2_ids.sort_unstable();
                prop_assert_eq!(&v1_ids, &v2_ids, "v1 and v2 reloads diverged ({:?})", kind);
                let mut oracle = Vec::new();
                plain.query_collection(coll, kind, &q, &mut oracle);
                oracle.sort_unstable();
                prop_assert_eq!(&v1_ids, &oracle, "v1 reload diverged from the oracle ({:?})", kind);
            }
        }
    }
}
