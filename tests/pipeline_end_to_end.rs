//! End-to-end pipeline tests: text query → normalization →
//! triangularization → bbox plan → execution on a database, across the
//! paper's three motivating application domains.

use scq_integration::prelude::*;

use scq_engine::workload::{map_workload, vlsi_workload, MapParams};

/// GIS: the smuggler query at a moderate scale, all three indexes.
#[test]
fn gis_smuggler_pipeline() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = map_workload(
        &mut db,
        5,
        &MapParams {
            n_states: 5,
            n_towns: 15,
            n_roads: 40,
            useful_road_fraction: 0.2,
        },
    );
    let sys =
        parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C").unwrap();
    let q = Query::new(sys)
        .known("C", w.country.clone())
        .known("A", w.area.clone())
        .from_collection("T", w.towns)
        .from_collection("R", w.roads)
        .from_collection("B", w.states)
        .with_order(&["T", "R", "B"]);

    let results: Vec<_> = [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan]
        .iter()
        .map(|&k| bbox_execute(&db, &q, k).unwrap())
        .collect();
    let baseline = naive_execute(&db, &q).unwrap();
    for r in &results {
        let mut a = baseline.solutions.clone();
        let mut b = r.solutions.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
    assert!(
        !baseline.solutions.is_empty(),
        "workload guarantees useful roads"
    );

    // Every reported solution truly satisfies the constraints.
    let alg = db.algebra();
    for sol in &baseline.solutions {
        let mut assign = Assignment::new();
        assign.bind(q.system.table.get("C").unwrap(), w.country.clone());
        assign.bind(q.system.table.get("A").unwrap(), w.area.clone());
        for (&v, &obj) in sol {
            assign.bind(v, db.region(obj).clone());
        }
        assert!(check_system(&alg, &q.system.constraints, &assign).unwrap());
    }
}

/// VLSI design-rule check: find wires that cross cell boundaries without
/// being contained in any cell (simplified DRC query over two vars).
#[test]
fn vlsi_drc_pipeline() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = vlsi_workload(&mut db, 21, 5, 5, 60);
    // Violation pattern: wire W overlaps cell L but is not contained in
    // it (it crosses the cell boundary).
    let sys = parse_system("W & L != 0; W !<= L").unwrap();
    let q = Query::new(sys)
        .from_collection("W", w.wires)
        .from_collection("L", w.cells);
    let naive = naive_execute(&db, &q).unwrap();
    let opt = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
    let mut a = naive.solutions.clone();
    let mut b = opt.solutions.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(!opt.solutions.is_empty(), "jittered wires cross cells");
}

/// Visual language parsing: a "label attached to a node" pattern —
/// label box inside the diagram, intersecting the node's halo but
/// disjoint from the node body.
#[test]
fn visual_parsing_pipeline() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [200.0, 200.0]));
    let nodes = db.collection("nodes");
    let labels = db.collection("labels");
    // three nodes
    let node_boxes = [
        AaBox::new([20.0, 20.0], [40.0, 40.0]),
        AaBox::new([100.0, 30.0], [120.0, 50.0]),
        AaBox::new([60.0, 120.0], [80.0, 140.0]),
    ];
    for b in node_boxes {
        db.insert(nodes, Region::from_box(b));
    }
    // labels: one next to each node, one floating far away
    db.insert(
        labels,
        Region::from_box(AaBox::new([41.0, 22.0], [55.0, 30.0])),
    );
    db.insert(
        labels,
        Region::from_box(AaBox::new([121.0, 32.0], [135.0, 40.0])),
    );
    db.insert(
        labels,
        Region::from_box(AaBox::new([81.0, 122.0], [95.0, 130.0])),
    );
    db.insert(
        labels,
        Region::from_box(AaBox::new([170.0, 170.0], [190.0, 180.0])),
    );

    // Halo = known per query; here we query node 0's halo.
    let halo = Region::from_box(AaBox::new([15.0, 15.0], [60.0, 45.0]));
    let node0 = Region::from_box(node_boxes[0]);
    let sys = parse_system("L & H != 0; L & N = 0; L != 0").unwrap();
    let q = Query::new(sys)
        .known("H", halo)
        .known("N", node0)
        .from_collection("L", labels);
    for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
        let r = bbox_execute(&db, &q, kind).unwrap();
        assert_eq!(r.solutions.len(), 1, "{kind:?}");
        assert_eq!(r.solutions[0].values().next().unwrap().index, 0);
    }
}

/// Unsatisfiable systems short-circuit: the compiled plan knows the
/// ground residue is unsatisfiable and does zero retrieval work.
#[test]
fn unsat_short_circuit() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
    let xs = db.collection("xs");
    for i in 0..100 {
        let x = i as f64 * 0.1;
        db.insert(xs, Region::from_box(AaBox::new([x, 0.0], [x + 0.05, 1.0])));
    }
    // X ⊆ K ∧ X ⊄ K is propositionally unsatisfiable.
    let sys = parse_system("X <= K; X !<= K").unwrap();
    let q = Query::new(sys)
        .known("K", Region::from_box(AaBox::new([0.0, 0.0], [5.0, 5.0])))
        .from_collection("X", xs);
    let r = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
    assert!(r.solutions.is_empty());
    assert_eq!(r.stats.partial_tuples, 0, "no retrieval at all");
    assert_eq!(r.stats.index_candidates, 0);
}

/// Equality constraints work end to end: find the state equal to a
/// known region.
#[test]
fn equality_query() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
    let zones = db.collection("zones");
    let target = Region::from_box(AaBox::new([10.0, 10.0], [20.0, 20.0]));
    db.insert(
        zones,
        Region::from_box(AaBox::new([5.0, 5.0], [25.0, 25.0])),
    );
    // same set as target, different fragmentation:
    db.insert(
        zones,
        Region::from_boxes([
            AaBox::new([10.0, 10.0], [15.0, 20.0]),
            AaBox::new([15.0, 10.0], [20.0, 20.0]),
        ]),
    );
    db.insert(
        zones,
        Region::from_box(AaBox::new([50.0, 50.0], [60.0, 60.0])),
    );
    let sys = parse_system("Z = K").unwrap();
    let q = Query::new(sys)
        .known("K", target)
        .from_collection("Z", zones);
    for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
        let r = bbox_execute(&db, &q, kind).unwrap();
        assert_eq!(r.solutions.len(), 1, "{kind:?}");
        assert_eq!(r.solutions[0].values().next().unwrap().index, 1);
    }
}
