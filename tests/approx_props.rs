//! Property tests for Algorithm 2: the lower/upper bounding-box
//! sandwich holds for arbitrary formulas and regions, the approximations
//! are invariant under formula syntax, and the compiled corner filters
//! are sound (never reject an exact solution).

use proptest::prelude::*;
use scq_integration::prelude::*;

fn formula_strategy(nvars: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        4 => (0..nvars).prop_map(|i| Formula::var(Var(i))),
        1 => Just(Formula::Zero),
        1 => Just(Formula::One),
    ];
    leaf.prop_recursive(4, 48, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::or(a, b)),
        ]
    })
    .boxed()
}

fn regions_strategy(n: usize) -> BoxedStrategy<Vec<Region<2>>> {
    prop::collection::vec(
        prop::collection::vec(
            (0.0f64..80.0, 0.0f64..80.0, 1.0f64..15.0, 1.0f64..15.0),
            0..3,
        ),
        n..=n,
    )
    .prop_map(|vv| {
        vv.into_iter()
            .map(|boxes| {
                Region::from_boxes(
                    boxes
                        .into_iter()
                        .map(|(x, y, w, h)| AaBox::new([x, y], [x + w, y + h])),
                )
            })
            .collect()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// L_f(⌈x⌉) ⊑ ⌈f(x)⌉ ⊑ U_f(⌈x⌉) for arbitrary f and regions.
    #[test]
    fn sandwich(f in formula_strategy(4), regions in regions_strategy(4)) {
        let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let mut assign = Assignment::new();
        for (i, r) in regions.iter().enumerate() {
            assign.bind(Var(i as u32), r.clone());
        }
        let exact = eval_formula(&alg, &f, &assign).unwrap().bbox();
        let lookup = |i: usize| regions[i].bbox();
        let l: BboxExpr<2> = lower_bbox_fn(&f);
        prop_assert!(l.eval(lookup).le(&exact), "L_f violated for {}", f);
        let u: UpperBound<2> = upper_bbox_fn(&f);
        if let Some(ub) = u.eval(lookup) {
            prop_assert!(exact.le(&ub), "U_f violated for {}", f);
        }
    }

    /// Equivalent formulas get identical approximations (they factor
    /// through the Blake canonical form).
    #[test]
    fn syntax_invariance(f in formula_strategy(3)) {
        // Double-negate and distribute a tautology conjunct: same
        // function, different syntax.
        let g = Formula::not(Formula::not(Formula::and(f.clone(), Formula::One)));
        let lf: BboxExpr<2> = lower_bbox_fn(&f);
        let lg: BboxExpr<2> = lower_bbox_fn(&g);
        prop_assert_eq!(lf, lg);
        let uf: UpperBound<2> = upper_bbox_fn(&f);
        let ug: UpperBound<2> = upper_bbox_fn(&g);
        prop_assert_eq!(uf, ug);
    }

    /// Monotonicity of compiled expressions: growing input boxes can
    /// only grow L_f and U_f outputs.
    #[test]
    fn monotone(f in formula_strategy(4), regions in regions_strategy(4)) {
        let small: Vec<Bbox<2>> = regions.iter().map(|r| r.bbox()).collect();
        let grown: Vec<Bbox<2>> = small
            .iter()
            .map(|b| b.join(&Bbox::new([40.0, 40.0], [42.0, 42.0])))
            .collect();
        let l: BboxExpr<2> = lower_bbox_fn(&f);
        prop_assert!(l.eval(|i| small[i]).le(&l.eval(|i| grown[i])));
        let u: UpperBound<2> = upper_bbox_fn(&f);
        if let (Some(a), Some(b)) = (u.eval(|i| small[i]), u.eval(|i| grown[i])) {
            prop_assert!(a.le(&b));
        }
    }

    /// Plan soundness at the row level: an exact solution of a solved
    /// row always passes its compiled corner query.
    #[test]
    fn compiled_row_soundness(
        regions in regions_strategy(3),
        cand in prop::collection::vec((0.0f64..80.0, 0.0f64..80.0, 1.0f64..15.0, 1.0f64..15.0), 1..3),
    ) {
        // System: X ⊆ R0 ∧ X ∩ R1 ≠ ∅ ∧ X ∩ R2 = ∅, solve for X last.
        let sys = parse_system("X <= A; X & B != 0; X & C = 0").unwrap();
        let (a, b, c, x) = (
            sys.table.get("A").unwrap(),
            sys.table.get("B").unwrap(),
            sys.table.get("C").unwrap(),
            sys.table.get("X").unwrap(),
        );
        let tri = triangularize(&sys.normalize(), &[a, b, c, x]);
        let plan: BboxPlan<2> = BboxPlan::compile(&tri);
        let row = plan.row_for(x).unwrap();

        let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let candidate = Region::from_boxes(
            cand.into_iter().map(|(px, py, w, h)| AaBox::new([px, py], [px + w, py + h])),
        );
        let mut assign = Assignment::new();
        assign.bind(a, regions[0].clone());
        assign.bind(b, regions[1].clone());
        assign.bind(c, regions[2].clone());
        assign.bind(x, candidate.clone());

        if row.exact.check(&alg, &assign).unwrap() {
            let boxes = [regions[0].bbox(), regions[1].bbox(), regions[2].bbox(), candidate.bbox()];
            let lookup = |i: usize| boxes[i];
            let q = row.corner_query(lookup);
            if !candidate.is_empty() {
                prop_assert!(
                    q.matches(&candidate.bbox()),
                    "sound filter rejected an exact solution"
                );
            }
        }
    }
}
