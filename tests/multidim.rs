//! The whole pipeline is generic in the dimension `K`: exercise it on
//! 1-d intervals (the paper's Figure 3 setting) and 3-d boxes.

use scq_integration::prelude::*;

/// 1-d: temporal-style interval containment + overlap query.
#[test]
fn one_dimensional_pipeline() {
    let mut db: SpatialDatabase<1> = SpatialDatabase::new(AaBox::new([0.0], [1000.0]));
    let meetings = db.collection("meetings");
    for i in 0..200 {
        let start = (i * 5) as f64;
        db.insert(
            meetings,
            Region::from_box(AaBox::new([start], [start + 7.0])),
        );
    }
    // Meetings inside working hours that clash with the lunch slot.
    let sys = parse_system("M <= H; M & L != 0").unwrap();
    let q = Query::new(sys)
        .known("H", Region::from_box(AaBox::new([100.0], [600.0])))
        .known("L", Region::from_box(AaBox::new([300.0], [320.0])))
        .from_collection("M", meetings);
    let naive = naive_execute(&db, &q).unwrap();
    for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
        let opt = bbox_execute(&db, &q, kind).unwrap();
        let mut a = naive.solutions.clone();
        let mut b = opt.solutions.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{kind:?}");
    }
    assert!(!naive.solutions.is_empty());
    // exact semantics: every returned meeting overlaps lunch
    for sol in &naive.solutions {
        let m = db.region(*sol.values().next().unwrap());
        assert!(m.intersects(&Region::from_box(AaBox::new([300.0], [320.0]))));
    }
}

/// 3-d: solid geometry — parts inside a chamber avoiding a keep-out.
#[test]
fn three_dimensional_pipeline() {
    let mut db: SpatialDatabase<3> =
        SpatialDatabase::new(AaBox::new([0.0, 0.0, 0.0], [100.0, 100.0, 100.0]));
    let parts = db.collection("parts");
    for i in 0..6 {
        for j in 0..6 {
            for k in 0..3 {
                let lo = [i as f64 * 15.0, j as f64 * 15.0, k as f64 * 30.0];
                db.insert(
                    parts,
                    Region::from_box(AaBox::new(lo, [lo[0] + 8.0, lo[1] + 8.0, lo[2] + 12.0])),
                );
            }
        }
    }
    let sys = parse_system("P <= C; P & K = 0; P != 0").unwrap();
    let chamber = Region::from_box(AaBox::new([10.0, 10.0, 0.0], [80.0, 80.0, 70.0]));
    let keepout = Region::from_box(AaBox::new([40.0, 40.0, 0.0], [60.0, 60.0, 100.0]));
    let q = Query::new(sys)
        .known("C", chamber.clone())
        .known("K", keepout.clone())
        .from_collection("P", parts);
    let naive = naive_execute(&db, &q).unwrap();
    for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
        let opt = bbox_execute(&db, &q, kind).unwrap();
        let mut a = naive.solutions.clone();
        let mut b = opt.solutions.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{kind:?}");
    }
    assert!(!naive.solutions.is_empty());
    for sol in &naive.solutions {
        let p = db.region(*sol.values().next().unwrap());
        assert!(p.subset_of(&chamber));
        assert!(!p.intersects(&keepout));
    }
}

/// 3-d region algebra laws and the solver.
#[test]
fn three_dimensional_solver() {
    let alg: RegionAlgebra<3> = RegionAlgebra::new(AaBox::new([0.0, 0.0, 0.0], [10.0, 10.0, 10.0]));
    // x0 ⊂ x1, both nonempty, x1 misses a known forbidden cube.
    let sys = parse_system("X < Y; X != 0; Y & F = 0").unwrap();
    let (xf, yf, ff) = (
        sys.table.get("X").unwrap(),
        sys.table.get("Y").unwrap(),
        sys.table.get("F").unwrap(),
    );
    let forbidden = Region::from_box(AaBox::new([5.0, 5.0, 5.0], [10.0, 10.0, 10.0]));
    let knowns = Assignment::new().with(ff, forbidden.clone());
    let solved = solve_system(&sys.normalize(), &[ff, yf, xf], &alg, &knowns)
        .unwrap()
        .expect("satisfiable");
    let x = solved.get(xf).unwrap();
    let y = solved.get(yf).unwrap();
    assert!(x.subset_of(y) && !x.same_set(y));
    assert!(!x.is_empty());
    assert!(!y.intersects(&forbidden));
}
