//! Property tests for the multi-process shard cluster.
//!
//! The distribution claim of `crates/shard`'s backend layer: a
//! `ShardedDatabase<RemoteShard>` — N shard servers speaking the
//! length-prefixed wire protocol over real TCP sockets, one router
//! keeping only routing state and a region mirror — fed an
//! **arbitrary** mutation sequence answers every corner query and
//! every constraint query exactly like an unsharded [`SpatialDatabase`]
//! fed the same sequence. This is `tests/shard_props.rs` with the
//! shards moved behind sockets: same op generator, same oracle, plus
//! cross-process migration, snapshot round trips pulled over the wire,
//! and an in-place cluster restore.
//!
//! The shard servers here run as threads of the test process bound to
//! ephemeral loopback ports — every byte still crosses a real TCP
//! socket through the real wire codec, which is the property under
//! test; the CI `cluster-smoke` job exercises the identical stack with
//! shards as separate OS processes.

use std::time::Duration;

use proptest::prelude::*;
use scq_engine::CollectionId;
use scq_integration::prelude::*;
use scq_shard::{
    execute, execute_fanout, ClusterSpec, RemoteShard, ResyncOutcome, ShardServerConfig,
    ShardServerHandle, WalConfig,
};

const UNIVERSE_SIZE: f64 = 100.0;

/// A live cluster: shard server threads plus the connected router-side
/// database. Shuts the servers down on drop so proptest failures never
/// leak listeners.
struct Cluster {
    servers: Vec<ShardServerHandle>,
    db: Option<ShardedDatabase<RemoteShard>>,
}

fn boot_server(threads: usize) -> ShardServerHandle {
    scq_shard::serve_shard(&ShardServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        universe_size: UNIVERSE_SIZE,
        ..ShardServerConfig::default()
    })
    .expect("bind shard server")
}

impl Cluster {
    fn boot(n_shards: usize) -> Cluster {
        let servers: Vec<ShardServerHandle> = (0..n_shards).map(|_| boot_server(1)).collect();
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
        let spec = ClusterSpec::balanced(universe, scq_shard::DEFAULT_ROUTER_BITS, &addrs);
        let db = spec
            .connect(Duration::from_secs(10))
            .expect("connect cluster");
        Cluster {
            servers,
            db: Some(db),
        }
    }

    fn db(&mut self) -> &mut ShardedDatabase<RemoteShard> {
        self.db.as_mut().expect("cluster is up")
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.db.take();
        for server in self.servers.drain(..) {
            server.shutdown();
        }
    }
}

/// One scripted mutation (slot choices reduced modulo the slot count at
/// application time, exactly like `tests/shard_props.rs`).
#[derive(Clone, Debug)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    InsertEmpty,
    Remove {
        slot: u16,
    },
    Update {
        slot: u16,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    UpdateToEmpty {
        slot: u16,
    },
}

fn op_strategy() -> BoxedStrategy<Op> {
    let coords = (0.0f64..90.0, 0.0f64..90.0, 0.0f64..9.0, 0.0f64..9.0);
    prop_oneof![
        4 => coords.clone().prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        1 => Just(Op::InsertEmpty),
        3 => (0u16..u16::MAX).prop_map(|slot| Op::Remove { slot }),
        // Updates include long moves, so cross-process migration is
        // hit constantly.
        2 => (0u16..u16::MAX, coords)
            .prop_map(|(slot, (x, y, w, h))| Op::Update { slot, x, y, w, h }),
        1 => (0u16..u16::MAX).prop_map(|slot| Op::UpdateToEmpty { slot }),
    ]
    .boxed()
}

/// Applies one op to both stores; their slot spaces stay in lockstep.
fn apply_both(
    cluster: &mut ShardedDatabase<RemoteShard>,
    plain: &mut SpatialDatabase<2>,
    coll: CollectionId,
    op: &Op,
) {
    let slots = plain.collection_len(coll);
    assert_eq!(
        slots,
        cluster.collection_len(coll),
        "slot spaces in lockstep"
    );
    let obj = |slot: u16| ObjectRef {
        collection: coll,
        index: slot as usize % slots,
    };
    match *op {
        Op::Insert { x, y, w, h } => {
            let r = Region::from_box(AaBox::new([x, y], [x + w, y + h]));
            let a = cluster.try_insert(coll, r.clone()).expect("remote insert");
            let b = plain.insert(coll, r);
            assert_eq!(a, b, "global refs line up");
        }
        Op::InsertEmpty => {
            let a = cluster
                .try_insert(coll, Region::empty())
                .expect("remote insert");
            let b = plain.insert(coll, Region::empty());
            assert_eq!(a, b);
        }
        Op::Remove { slot } if slots > 0 => {
            assert_eq!(
                cluster.try_remove(obj(slot)).expect("remote remove"),
                plain.remove(obj(slot))
            );
        }
        Op::Update { slot, x, y, w, h } if slots > 0 => {
            let r = Region::from_box(AaBox::new([x, y], [x + w, y + h]));
            assert_eq!(
                cluster
                    .try_update(obj(slot), r.clone())
                    .expect("remote update"),
                plain.update(obj(slot), r)
            );
        }
        Op::UpdateToEmpty { slot } if slots > 0 => {
            assert_eq!(
                cluster
                    .try_update(obj(slot), Region::empty())
                    .expect("remote update"),
                plain.update(obj(slot), Region::empty())
            );
        }
        _ => {} // slot ops on an empty collection: no-op
    }
}

fn corner_queries() -> Vec<CornerQuery<2>> {
    let mut qs = vec![CornerQuery::unconstrained()];
    for i in 0..4 {
        let t = i as f64 * 17.0;
        let probe = Bbox::new([t, t * 0.5], [t + 25.0, t * 0.5 + 30.0]);
        let inner = Bbox::new([t + 8.0, t * 0.5 + 8.0], [t + 12.0, t * 0.5 + 12.0]);
        qs.push(CornerQuery::unconstrained().and_overlaps(&probe));
        qs.push(CornerQuery::unconstrained().and_contained_in(&probe));
        qs.push(CornerQuery::unconstrained().and_contains(&inner));
    }
    qs
}

/// A cluster whose every shard process sits behind a [`FaultProxy`]:
/// the router only ever dials the proxies, so each shard's connectivity
/// can be severed and healed independently while the shard process (and
/// its state) lives on — a deterministic network partition.
struct ProxiedCluster {
    servers: Vec<ShardServerHandle>,
    proxies: Vec<FaultProxy>,
    db: Option<ShardedDatabase<RemoteShard>>,
    /// The injected breaker clock shared by every backend; tests
    /// advance it by hand instead of sleeping through cooldowns.
    now: std::sync::Arc<std::sync::Mutex<std::time::Instant>>,
}

impl ProxiedCluster {
    fn boot(n_shards: usize) -> ProxiedCluster {
        let servers: Vec<ShardServerHandle> = (0..n_shards)
            .map(|_| {
                scq_shard::serve_shard(&ShardServerConfig {
                    addr: "127.0.0.1:0".into(),
                    threads: 2,
                    universe_size: UNIVERSE_SIZE,
                    ..ShardServerConfig::default()
                })
                .expect("bind shard server")
            })
            .collect();
        let proxies: Vec<FaultProxy> = servers
            .iter()
            .map(|s| FaultProxy::start(&s.addr().to_string()).expect("bind proxy"))
            .collect();
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let addrs: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();
        let spec = ClusterSpec::balanced(universe, scq_shard::DEFAULT_ROUTER_BITS, &addrs);
        let mut db = spec
            .connect(Duration::from_secs(10))
            .expect("connect cluster through the proxies");
        let now = std::sync::Arc::new(std::sync::Mutex::new(std::time::Instant::now()));
        for s in 0..n_shards {
            let tick = now.clone();
            db.backend_mut(s)
                .set_clock(std::sync::Arc::new(move || *tick.lock().unwrap()));
        }
        ProxiedCluster {
            servers,
            proxies,
            db: Some(db),
            now,
        }
    }

    fn db(&mut self) -> &mut ShardedDatabase<RemoteShard> {
        self.db.as_mut().expect("cluster is up")
    }

    /// Advances the injected breaker clock — the deterministic stand-in
    /// for waiting out a cooldown.
    fn advance(&self, d: Duration) {
        *self.now.lock().expect("clock lock poisoned") += d;
    }
}

impl Drop for ProxiedCluster {
    fn drop(&mut self) {
        self.db.take();
        self.proxies.clear();
        for server in self.servers.drain(..) {
            server.shutdown();
        }
    }
}

/// The kill-a-shard scenario of the acceptance criteria: with one of 4
/// shards severed **mid-query** (its QUERY frames are cut on the wire,
/// every reconnect's retry included), `execute_fanout` neither panics
/// nor hangs — it returns `Partial` naming exactly the missing shard,
/// and the surviving shards' solutions equal the oracle restricted to
/// objects they own (their z-ranges). After the partition heals, the
/// shard rejoins the SAME router — no reconnect ceremony, no restart —
/// and answers go back to `Complete` and exact.
#[test]
fn severed_shard_mid_query_degrades_fanout_to_partial_then_rejoins() {
    let mut cluster = ProxiedCluster::boot(4);
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let mut plain = SpatialDatabase::new(universe);
    let coll = cluster.db().try_collection("objs").expect("create");
    plain.collection("objs");
    // A grid spread over the whole square so every shard owns objects.
    let mut refs = Vec::new();
    for i in 0..36 {
        let (x, y) = ((i % 6) as f64 * 16.0 + 2.0, (i / 6) as f64 * 16.0 + 2.0);
        let r = Region::from_box(AaBox::new([x, y], [x + 5.0, y + 5.0]));
        refs.push(cluster.db().try_insert(coll, r.clone()).expect("insert"));
        plain.insert(coll, r);
    }
    let owners: std::collections::BTreeSet<usize> =
        refs.iter().map(|&r| cluster.db().shard_of(r)).collect();
    assert_eq!(owners.len(), 4, "every shard owns objects: {owners:?}");

    let sys = parse_system("X <= W").unwrap();
    let q = Query::new(sys)
        .known(
            "W",
            Region::from_box(AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE])),
        )
        .from_collection("X", coll);
    let mut oracle = naive_execute(&plain, &q).unwrap().solutions;
    oracle.sort();

    // Healthy cluster first: fan-out is Complete and exact.
    let healthy = scq_shard::execute_fanout(
        cluster.db(),
        &q,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .unwrap();
    assert_eq!(healthy.outcome, QueryOutcome::Complete);
    let mut healthy_solutions = healthy.solutions;
    healthy_solutions.sort();
    assert_eq!(healthy_solutions, oracle);

    // Sever shard 2 mid-query: every QUERY frame it is sent — the
    // retry after the transparent reconnect included — is cut on the
    // wire. The shard process itself stays alive.
    let victim = 2usize;
    cluster.proxies[victim].inject(FaultRule {
        direction: Direction::ClientToServer,
        matches: FrameMatch::Opcode(scq_shard::wire::OP_QUERY),
        action: FaultAction::Sever,
        remaining: usize::MAX,
        skip: 0,
    });
    let degraded = scq_shard::execute_fanout(
        cluster.db(),
        &q,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .expect("a dead shard degrades the read, it does not fail the query");
    assert_eq!(
        degraded.outcome,
        QueryOutcome::Partial {
            missing_shards: vec![victim]
        },
        "the partial result names exactly the severed shard"
    );
    assert!(degraded.stats.shards_unavailable > 0);
    // Survivors answer exactly the oracle restricted to their shards.
    let mut expected: Vec<_> = oracle
        .iter()
        .filter(|s| {
            s.values()
                .all(|&obj| cluster.db.as_ref().unwrap().shard_of(obj) != victim)
        })
        .cloned()
        .collect();
    expected.sort();
    let mut got = degraded.solutions;
    got.sort();
    assert_eq!(
        got, expected,
        "surviving shards answer their z-ranges exactly"
    );
    assert!(
        got.len() < oracle.len(),
        "the victim owned solutions, so the partial answer is a strict subset"
    );

    // The plain (non-fanout) executor degrades identically.
    let plain_exec = scq_shard::execute(
        cluster.db(),
        &q,
        IndexKind::GridFile,
        scq_engine::ExecOptions::all(),
    )
    .unwrap();
    assert!(plain_exec.outcome.is_partial());
    assert_eq!(plain_exec.outcome.missing_shards(), &[victim]);

    // Mutations routed to the severed shard fail with a transport
    // error — never silently dropped, never retried.
    cluster.proxies[victim].partition();
    let on_victim = refs
        .iter()
        .find(|&&r| cluster.db.as_ref().unwrap().shard_of(r) == victim)
        .copied()
        .unwrap();
    let err = cluster.db().try_remove(on_victim).unwrap_err();
    assert!(matches!(err, scq_shard::ShardError::Wire(_)), "{err}");

    // Heal the partition: the shard rejoins the same router with no
    // restart on either side, and reads are Complete and exact again.
    // The outage tripped the address's circuit breaker, so rejoining
    // also means waiting out the cooldown — advance the injected clock
    // instead of sleeping; the next probe is the half-open re-admit.
    cluster.proxies[victim].heal();
    cluster.advance(Duration::from_secs(3600));
    let recovered = scq_shard::execute_fanout(
        cluster.db(),
        &q,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .unwrap();
    assert_eq!(recovered.outcome, QueryOutcome::Complete);
    let mut recovered_solutions = recovered.solutions;
    recovered_solutions.sort();
    assert_eq!(
        recovered_solutions, oracle,
        "the rejoined shard answers again"
    );
    // Mirror and shards are still in lockstep after the outage.
    cluster.db().check().expect("cluster consistent after heal");
}

/// A migration whose target shard process is dead must fail WITHOUT
/// losing the object: the insert-into-new-shard step runs first, so a
/// transport failure leaves the object live, queryable and consistent
/// on its old shard.
#[test]
fn failed_migration_keeps_the_object_intact() {
    let config = ShardServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        universe_size: UNIVERSE_SIZE,
        ..ShardServerConfig::default()
    };
    let shard_a = scq_shard::serve_shard(&config).unwrap();
    let shard_b = scq_shard::serve_shard(&config).unwrap();
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let spec = ClusterSpec::balanced(
        universe,
        scq_shard::DEFAULT_ROUTER_BITS,
        &[shard_a.addr().to_string(), shard_b.addr().to_string()],
    );
    let mut db = spec.connect(Duration::from_secs(10)).unwrap();
    let coll = db.try_collection("objs").unwrap();
    let obj = db
        .try_insert(
            coll,
            Region::from_box(AaBox::new([10.0, 10.0], [15.0, 15.0])),
        )
        .unwrap();
    assert_eq!(db.shard_of(obj), 0, "low corner routes to shard 0");
    let before = db.region(obj).clone();

    // Kill the migration target, then try to move the object there.
    shard_b.shutdown();
    let err = db
        .try_update(
            obj,
            Region::from_box(AaBox::new([90.0, 90.0], [95.0, 95.0])),
        )
        .expect_err("migrating onto a dead shard process must fail");
    assert!(matches!(err, scq_shard::ShardError::Wire(_)), "{err}");

    // Nothing was lost: still live, still on shard 0, same region,
    // still answered by a query the router routes to shard 0 only.
    assert!(db.is_live(obj));
    assert_eq!(db.shard_of(obj), 0);
    assert!(db.region(obj).same_set(&before));
    let q = CornerQuery::unconstrained().and_contained_in(&Bbox::new([0.0, 0.0], [30.0, 30.0]));
    let mut out = Vec::new();
    db.query_collection(coll, IndexKind::RTree, &q, &mut out);
    assert_eq!(out, vec![obj.index as u64]);
    shard_a.shutdown();
}

/// A replicated cluster: `n_shards` z-ranges × `n_replicas` shard
/// server threads per range (primary first), each individually
/// killable mid-test.
struct ReplicatedCluster {
    servers: Vec<Vec<Option<ShardServerHandle>>>,
    db: Option<ShardedDatabase<RemoteShard>>,
}

impl ReplicatedCluster {
    fn boot(n_shards: usize, n_replicas: usize, breaker: BreakerConfig) -> ReplicatedCluster {
        let servers: Vec<Vec<Option<ShardServerHandle>>> = (0..n_shards)
            .map(|_| (0..n_replicas).map(|_| Some(boot_server(1))).collect())
            .collect();
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let sets: Vec<Vec<String>> = servers
            .iter()
            .map(|replicas| {
                replicas
                    .iter()
                    .map(|s| s.as_ref().unwrap().addr().to_string())
                    .collect()
            })
            .collect();
        let mut spec =
            ClusterSpec::balanced_replicated(universe, scq_shard::DEFAULT_ROUTER_BITS, &sets);
        spec.breaker = breaker;
        let db = spec
            .connect(Duration::from_secs(10))
            .expect("connect replicated cluster");
        ReplicatedCluster {
            servers,
            db: Some(db),
        }
    }

    fn db(&mut self) -> &mut ShardedDatabase<RemoteShard> {
        self.db.as_mut().expect("cluster is up")
    }

    /// Kills replica `r` of shard `s`: listener closed, every live
    /// connection dropped — the thread equivalent of SIGKILL on a
    /// shard process.
    fn kill(&mut self, s: usize, r: usize) {
        self.servers[s][r]
            .take()
            .expect("replica already killed")
            .shutdown();
    }
}

impl Drop for ReplicatedCluster {
    fn drop(&mut self) {
        self.db.take();
        for replicas in self.servers.drain(..) {
            for server in replicas.into_iter().flatten() {
                server.shutdown();
            }
        }
    }
}

/// The tentpole acceptance scenario: on a 2-replica spec, one replica
/// of EVERY range dies mid-churn — the secondary of range 1 first
/// (writes keep flowing and desync it quietly), then, churn done, the
/// primary of range 0 (reads must fail over to its converged
/// secondary) — and `execute_fanout` still answers `Complete` and
/// oracle-equal, with the failovers and stale answers counted. Writes
/// routed to the dead primary fail with a named transport error and
/// are never silently retried against the secondary.
#[test]
fn one_dead_replica_per_range_keeps_fanout_complete_and_oracle_equal() {
    let mut cluster = ReplicatedCluster::boot(2, 2, BreakerConfig::default());
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let mut plain = SpatialDatabase::new(universe);
    let coll = cluster.db().try_collection("objs").expect("create");
    plain.collection("objs");
    let mut refs = Vec::new();
    for i in 0..36 {
        let (x, y) = ((i % 6) as f64 * 16.0 + 2.0, (i / 6) as f64 * 16.0 + 2.0);
        let r = Region::from_box(AaBox::new([x, y], [x + 5.0, y + 5.0]));
        refs.push(cluster.db().try_insert(coll, r.clone()).expect("insert"));
        plain.insert(coll, r);
    }
    let churn: Vec<Op> = (0..24u32)
        .map(|i| match i % 4 {
            0 => Op::Insert {
                x: (i * 7 % 80) as f64,
                y: (i * 13 % 80) as f64,
                w: 4.0,
                h: 3.0,
            },
            1 => Op::Remove {
                slot: (i * 31) as u16,
            },
            2 => Op::Update {
                slot: (i * 17) as u16,
                x: (i * 11 % 85) as f64,
                y: (i * 5 % 85) as f64,
                w: 3.0,
                h: 5.0,
            },
            _ => Op::UpdateToEmpty {
                slot: (i * 13) as u16,
            },
        })
        .collect();
    for op in &churn[..12] {
        apply_both(cluster.db(), &mut plain, coll, op);
    }
    // Mid-churn: the secondary of range 1 dies. Every further write to
    // that range succeeds on its primary (and marks the replica
    // desynced); cross-range migrations included.
    cluster.kill(1, 1);
    for op in &churn[12..] {
        apply_both(cluster.db(), &mut plain, coll, op);
    }
    // Churn done: the primary of range 0 dies too. Now every range is
    // down to one live process — a different one each.
    cluster.kill(0, 0);

    let sys = parse_system("X <= W").unwrap();
    let q = Query::new(sys)
        .known(
            "W",
            Region::from_box(AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE])),
        )
        .from_collection("X", coll);
    let mut oracle = naive_execute(&plain, &q).unwrap().solutions;
    oracle.sort();

    let result = execute_fanout(
        cluster.db(),
        &q,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .expect("reads survive one dead replica per range");
    assert_eq!(
        result.outcome,
        QueryOutcome::Complete,
        "failover turns what would be Partial back into Complete"
    );
    let mut got = result.solutions;
    got.sort();
    assert_eq!(got, oracle, "failover answers equal the unsharded oracle");
    assert!(result.stats.failovers >= 1, "{:?}", result.stats);
    assert!(result.stats.stale_answers >= 1, "{:?}", result.stats);

    let h0 = cluster.db.as_ref().unwrap().backend(0).health();
    let h1 = cluster.db.as_ref().unwrap().backend(1).health();
    assert!(
        !h0[1].desynced,
        "range 0's secondary converged before the primary died: {h0:?}"
    );
    assert!(
        h1[1].desynced && !h1[0].desynced,
        "range 1's dead secondary is marked, its primary is not: {h1:?}"
    );

    // A mutation routed to range 0 hits the dead primary: loud named
    // transport error, never redirected to the secondary.
    let db = cluster.db.as_ref().unwrap();
    let on0 = refs
        .iter()
        .find(|&&r| db.shard_of(r) == 0 && db.is_live(r))
        .copied()
        .expect("range 0 owns live objects");
    let err = cluster
        .db()
        .try_remove(on0)
        .expect_err("a dead primary fails writes");
    assert!(matches!(err, scq_shard::ShardError::Wire(_)), "{err}");
    // The failed remove reached no replica: the same fan-out read is
    // still Complete and oracle-equal.
    let again = execute_fanout(
        cluster.db(),
        &q,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .unwrap();
    assert_eq!(again.outcome, QueryOutcome::Complete);
    let mut again_solutions = again.solutions;
    again_solutions.sort();
    assert_eq!(again_solutions, oracle, "the failed write changed nothing");
}

/// The flapping-breaker script, with zero sleeps: K consecutive
/// transport failures trip the primary address's breaker (at exactly
/// K, not before), a tripped address is skipped WITHOUT dialing (the
/// proxy forwards no frames even after the partition heals), and
/// advancing the injected clock past the cooldown re-admits the
/// address through a half-open probe that closes the breaker on
/// success.
#[test]
fn breaker_trips_at_exactly_k_skips_without_dialing_and_readmits_after_cooldown() {
    let primary = boot_server(2);
    let secondary = boot_server(2);
    let proxy = FaultProxy::start(&primary.addr().to_string()).expect("bind proxy");
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let mut spec = ClusterSpec::balanced_replicated(
        universe,
        scq_shard::DEFAULT_ROUTER_BITS,
        &[vec![proxy.addr().to_string(), secondary.addr().to_string()]],
    );
    spec.breaker = BreakerConfig {
        threshold: 3,
        cooldown: Duration::from_secs(3600),
    };
    let mut db = spec.connect(Duration::from_secs(10)).expect("connect");
    // Deterministic time: the test advances the breaker clock by hand.
    let now = std::sync::Arc::new(std::sync::Mutex::new(std::time::Instant::now()));
    let tick = now.clone();
    db.backend_mut(0)
        .set_clock(std::sync::Arc::new(move || *tick.lock().unwrap()));

    let coll = db.try_collection("objs").expect("create");
    for i in 0..4 {
        let t = i as f64 * 20.0 + 1.0;
        db.try_insert(
            coll,
            Region::from_box(AaBox::new([t, 5.0], [t + 5.0, 11.0])),
        )
        .expect("insert");
    }
    let read = |db: &ShardedDatabase<RemoteShard>| -> ProbeTrace {
        let mut out = Vec::new();
        let mut trace = ProbeTrace::default();
        db.backend(0)
            .try_corner_query(
                coll,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut trace,
            )
            .expect("replicated reads never fail while one replica lives");
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3]);
        trace
    };
    let trace = read(&db);
    assert_eq!((trace.failovers, trace.stale), (0, false), "{trace:?}");

    // Partition the primary: each read fails over and costs its
    // address one consecutive failure. Closed through K-1 failures...
    proxy.partition();
    for i in 1..=2usize {
        let trace = read(&db);
        assert_eq!((trace.failovers, trace.stale), (1, true), "{trace:?}");
        let h = db.backend(0).health();
        assert_eq!(
            h[0].stats.breaker,
            BreakerState::Closed,
            "failure {i}: {h:?}"
        );
        assert_eq!(h[0].stats.consecutive_failures, i, "{h:?}");
        assert_eq!(h[0].stats.breaker_trips, 0, "{h:?}");
    }
    // ...tripped at exactly K.
    let trace = read(&db);
    assert_eq!((trace.failovers, trace.stale), (1, true), "{trace:?}");
    let h = db.backend(0).health();
    assert_eq!(h[0].stats.breaker, BreakerState::Open, "{h:?}");
    assert_eq!(h[0].stats.breaker_trips, 1, "{h:?}");

    // Heal the network. The breaker is still open, so the next read
    // skips the primary without dialing: the healed proxy forwards
    // nothing.
    proxy.heal();
    let frames = proxy.frames_forwarded(Direction::ClientToServer);
    let trace = read(&db);
    assert_eq!((trace.failovers, trace.stale), (1, true), "{trace:?}");
    assert_eq!(trace.retries, 0, "an open breaker never dials: {trace:?}");
    assert_eq!(
        proxy.frames_forwarded(Direction::ClientToServer),
        frames,
        "a tripped address receives no traffic"
    );

    // Advance the clock past the cooldown: the half-open probe dials
    // the healed primary, succeeds, and the breaker closes — reads are
    // primary-served and fresh again.
    *now.lock().unwrap() += Duration::from_secs(3601);
    let trace = read(&db);
    assert_eq!((trace.failovers, trace.stale), (0, false), "{trace:?}");
    let h = db.backend(0).health();
    assert_eq!(h[0].stats.breaker, BreakerState::Closed, "{h:?}");
    assert_eq!(
        h[0].stats.breaker_trips, 1,
        "exactly one trip across the whole flap: {h:?}"
    );
    assert!(proxy.frames_forwarded(Direction::ClientToServer) > frames);

    primary.shutdown();
    secondary.shutdown();
}

/// The split-brain script: a PRISTINE process restarted behind a dead
/// secondary's address must never be silently re-adopted. Reads stay
/// on the healthy primary, the integrity check names the impostor, a
/// replicated write fails loudly instead of diverging, and the
/// documented recovery path — restore every replica from one snapshot
/// — actually heals the cluster.
#[test]
fn pristine_restart_behind_a_replica_address_stays_a_loud_desync_until_restored() {
    let primary = boot_server(2);
    let secondary = boot_server(2);
    // The proxy's address is the replica's stable, spec'd address; the
    // process behind it will change.
    let proxy = FaultProxy::start(&secondary.addr().to_string()).expect("bind proxy");
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let spec = ClusterSpec::balanced_replicated(
        universe,
        scq_shard::DEFAULT_ROUTER_BITS,
        &[vec![primary.addr().to_string(), proxy.addr().to_string()]],
    );
    let mut db = spec.connect(Duration::from_secs(10)).expect("connect");
    let coll = db.try_collection("objs").expect("create");
    for i in 0..5 {
        let t = i as f64 * 15.0 + 1.0;
        db.try_insert(coll, Region::from_box(AaBox::new([t, 2.0], [t + 6.0, 9.0])))
            .expect("insert");
    }
    db.check().expect("healthy replicated cluster");
    let dir = std::env::temp_dir().join(format!("scq_split_brain_{}", std::process::id()));
    scq_shard::save_to_dir(&db, &dir).expect("snapshot the good state");
    // The v3 manifest recorded the replica topology the cluster served
    // from (primary first).
    let manifest = std::fs::read(dir.join(scq_shard::snapshot::MANIFEST_FILE)).unwrap();
    let m = scq_shard::snapshot::load_manifest(&manifest).unwrap();
    assert_eq!(
        m.replica_sets(),
        &[vec![primary.addr().to_string(), proxy.addr().to_string()]]
    );

    // The secondary dies; a pristine process comes up behind its
    // address.
    secondary.shutdown();
    let impostor = boot_server(2);
    proxy.retarget(&impostor.addr().to_string());
    proxy.sever_all();

    // Reads never consult the impostor while the primary is healthy.
    let mut out = Vec::new();
    let mut trace = ProbeTrace::default();
    db.backend(0)
        .try_corner_query(
            coll,
            IndexKind::RTree,
            &CornerQuery::unconstrained(),
            &mut out,
            &mut trace,
        )
        .expect("primary still serves");
    assert_eq!(out.len(), 5);
    assert_eq!((trace.failovers, trace.stale), (0, false), "{trace:?}");

    // The integrity check cross-examines the replica's census and is
    // loud about the mismatch.
    let problems = db
        .check()
        .expect_err("a pristine impostor fails the integrity check");
    assert!(
        problems.iter().any(|p| p.contains("replica")),
        "{problems:?}"
    );

    // A replicated write fails loudly — the primary accepted what the
    // impostor cannot have, and the router refuses to paper over it.
    let err = db
        .try_insert(
            coll,
            Region::from_box(AaBox::new([80.0, 80.0], [85.0, 85.0])),
        )
        .expect_err("split-brain write must fail");
    assert!(err.to_string().contains("rejected"), "{err}");

    // Recovery is the documented path: restore every replica from one
    // snapshot. That turns the impostor into a real, converged
    // replica.
    scq_shard::reload_from_dir(&mut db, &dir).expect("restore from snapshot");
    std::fs::remove_dir_all(&dir).ok();
    db.check().expect("restored cluster is consistent");
    db.try_insert(
        coll,
        Region::from_box(AaBox::new([80.0, 80.0], [85.0, 85.0])),
    )
    .expect("writes replicate again");
    // …and the restored replica really can serve: kill the primary and
    // read through the failover path.
    primary.shutdown();
    let mut out = Vec::new();
    let mut trace = ProbeTrace::default();
    db.backend(0)
        .try_corner_query(
            coll,
            IndexKind::RTree,
            &CornerQuery::unconstrained(),
            &mut out,
            &mut trace,
        )
        .expect("failover to the restored replica");
    assert_eq!(out.len(), 6, "snapshot contents plus the new insert");
    assert_eq!((trace.failovers, trace.stale), (1, true), "{trace:?}");
    impostor.shutdown();
}

/// Boots a WAL-enabled shard server logging under `<root>/<tag>` with
/// a short group-commit window (tests trade batching for latency).
fn boot_wal_server(root: &std::path::Path, tag: &str) -> ShardServerHandle {
    let mut wal = WalConfig::new(root.join(tag));
    wal.group_commit = Duration::from_millis(1);
    scq_shard::serve_shard(&ShardServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        universe_size: UNIVERSE_SIZE,
        wal: Some(wal),
        ..ShardServerConfig::default()
    })
    .expect("bind wal shard server")
}

/// The durability acceptance scenario: every shard process of a
/// WAL-enabled cluster dies mid-churn (listener closed, every live
/// connection cut — the thread equivalent of SIGKILL; the CI
/// `crash-recovery` job repeats this with real processes and a real
/// `kill -9`) and a fresh process restarts behind the same spec'd
/// address on the same log directory. Recovery must replay the log
/// back to exactly the acknowledged state — zero acknowledged
/// mutations lost, every answer oracle-equal — and the cluster must
/// keep taking writes afterwards.
#[test]
fn wal_cluster_killed_mid_churn_replays_every_acknowledged_mutation() {
    let root = std::env::temp_dir().join(format!("scq_wal_crash_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let mut servers = vec![boot_wal_server(&root, "s0"), boot_wal_server(&root, "s1")];
    // The proxies own the stable, spec'd addresses; the processes
    // behind them change across the crash.
    let proxies: Vec<FaultProxy> = servers
        .iter()
        .map(|s| FaultProxy::start(&s.addr().to_string()).expect("bind proxy"))
        .collect();
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let addrs: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();
    let spec = ClusterSpec::balanced(universe, scq_shard::DEFAULT_ROUTER_BITS, &addrs);
    let mut db = spec.connect(Duration::from_secs(10)).expect("connect");
    let mut plain = SpatialDatabase::new(universe);
    let coll = db.try_collection("objs").expect("create");
    plain.collection("objs");

    let churn: Vec<Op> = (0..40u32)
        .map(|i| match i % 4 {
            0 => Op::Insert {
                x: (i * 7 % 80) as f64,
                y: (i * 13 % 80) as f64,
                w: 4.0,
                h: 3.0,
            },
            1 => Op::Remove {
                slot: (i * 31) as u16,
            },
            2 => Op::Update {
                slot: (i * 17) as u16,
                x: (i * 11 % 85) as f64,
                y: (i * 5 % 85) as f64,
                w: 3.0,
                h: 5.0,
            },
            _ => Op::UpdateToEmpty {
                slot: (i * 13) as u16,
            },
        })
        .collect();
    for op in &churn[..25] {
        apply_both(&mut db, &mut plain, coll, op);
    }

    // Every mutation above was acknowledged, so each is already
    // fsync'd. Kill both shard processes mid-churn…
    for server in servers.drain(..) {
        server.shutdown();
    }
    // …and restart them on the same WAL directories, behind the same
    // addresses.
    servers = vec![boot_wal_server(&root, "s0"), boot_wal_server(&root, "s1")];
    for (proxy, server) in proxies.iter().zip(&servers) {
        proxy.retarget(&server.addr().to_string());
        proxy.sever_all();
    }

    let stats = db.wal_stats().expect("a wal cluster reports stats");
    assert!(stats.replayed > 0, "restart replayed the log: {stats:?}");
    assert_eq!(stats.torn_tails, 0, "clean shutdown left no torn tail");
    db.check()
        .expect("replayed cluster passes the integrity check");
    assert_eq!(db.live_len(coll), plain.live_len(coll));
    for q in corner_queries() {
        let mut a = Vec::new();
        db.query_collection(coll, IndexKind::RTree, &q, &mut a);
        a.sort_unstable();
        let mut b = Vec::new();
        plain.query_collection(coll, IndexKind::RTree, &q, &mut b);
        b.sort_unstable();
        assert_eq!(a, b, "replayed answers equal the unsharded oracle");
    }

    // The revived cluster is fully live: finish the churn and stay
    // oracle-equal.
    for op in &churn[25..] {
        apply_both(&mut db, &mut plain, coll, op);
    }
    assert_eq!(db.live_len(coll), plain.live_len(coll));
    let stats = db.wal_stats().expect("stats");
    assert!(
        stats.appended > 0,
        "post-recovery writes hit the log: {stats:?}"
    );
    for server in servers.drain(..) {
        server.shutdown();
    }
    std::fs::remove_dir_all(&root).ok();
}

/// PR 6 made a lagging replica a loud desync with one repair path
/// (restore everything from a snapshot). The WAL adds the cheap one:
/// `resync` resets the replacement to pristine and ships the
/// primary's log segments when the primary still holds them back to
/// genesis — and falls back to the full snapshot ship after
/// `SNAPSHOT SAVE` truncates that log.
#[test]
fn desynced_replica_resyncs_via_wal_then_via_snapshot_after_truncation() {
    let root = std::env::temp_dir().join(format!("scq_wal_resync_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let primary = boot_wal_server(&root, "primary");
    let secondary = boot_server(1);
    let proxy = FaultProxy::start(&secondary.addr().to_string()).expect("bind proxy");
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let spec = ClusterSpec::balanced_replicated(
        universe,
        scq_shard::DEFAULT_ROUTER_BITS,
        &[vec![primary.addr().to_string(), proxy.addr().to_string()]],
    );
    let mut db = spec.connect(Duration::from_secs(10)).expect("connect");
    let coll = db.try_collection("objs").expect("create");
    for i in 0..6 {
        let t = i as f64 * 14.0 + 1.0;
        db.try_insert(coll, Region::from_box(AaBox::new([t, 3.0], [t + 6.0, 9.0])))
            .expect("insert");
    }

    // The secondary dies; the next write succeeds on the primary and
    // marks the replica desynced.
    secondary.shutdown();
    proxy.sever_all();
    db.try_insert(
        coll,
        Region::from_box(AaBox::new([90.0, 90.0], [95.0, 95.0])),
    )
    .expect("writes keep flowing on the primary");
    assert!(db.backend(0).health()[1].desynced);

    // A pristine process comes back behind the replica's address. The
    // primary has logged every mutation since genesis, so resync ships
    // WAL segments, not a snapshot.
    let replacement = boot_server(1);
    proxy.retarget(&replacement.addr().to_string());
    let outcome = db.resync_all().expect("resync");
    assert_eq!(
        outcome,
        ResyncOutcome {
            resynced: 1,
            via_wal: 1,
            via_snapshot: 0
        },
        "a complete primary log resyncs by replay"
    );
    db.check().expect("wal-resynced cluster is consistent");

    // `SNAPSHOT SAVE` is the log-truncation point: after it, the
    // primary's log no longer reaches genesis, so the next resync must
    // take the snapshot path.
    let snap = root.join("snap");
    scq_shard::save_to_dir(&db, &snap).expect("snapshot (truncates the primary's log)");
    replacement.shutdown();
    proxy.sever_all();
    db.try_insert(
        coll,
        Region::from_box(AaBox::new([80.0, 10.0], [86.0, 16.0])),
    )
    .expect("primary still writes");
    assert!(db.backend(0).health()[1].desynced);
    let replacement = boot_server(1);
    proxy.retarget(&replacement.addr().to_string());
    let outcome = db.resync_all().expect("resync after truncation");
    assert_eq!(
        outcome,
        ResyncOutcome {
            resynced: 1,
            via_wal: 0,
            via_snapshot: 1
        },
        "a truncated log falls back to the snapshot ship"
    );
    db.check().expect("snapshot-resynced cluster is consistent");

    // The twice-resynced replica really serves: kill the primary and
    // read the full census through failover.
    primary.shutdown();
    let mut out = Vec::new();
    let mut trace = ProbeTrace::default();
    db.backend(0)
        .try_corner_query(
            coll,
            IndexKind::RTree,
            &CornerQuery::unconstrained(),
            &mut out,
            &mut trace,
        )
        .expect("failover to the resynced replica");
    assert_eq!(out.len(), 8, "6 seed inserts + 2 desync-window inserts");
    assert_eq!((trace.failovers, trace.stale), (1, true), "{trace:?}");
    replacement.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

proptest! {
    // Each case boots real listeners, so run fewer, longer cases than
    // the in-process suite.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// After any mutation sequence — including cross-process migration
    /// on update — a cluster of shard processes answers every corner
    /// query identically to the unsharded store, on all three index
    /// structures, and passes the full integrity check (which
    /// cross-examines every shard process over the wire).
    #[test]
    fn cluster_corner_queries_match_unsharded(
        ops in prop::collection::vec(op_strategy(), 1..60),
        n_shards in 2usize..5,
    ) {
        let mut cluster = Cluster::boot(n_shards);
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let mut plain = SpatialDatabase::new(universe);
        let coll = cluster.db().try_collection("objs").expect("create");
        prop_assert_eq!(plain.collection("objs"), coll);
        for op in &ops {
            apply_both(cluster.db(), &mut plain, coll, op);
        }
        cluster.db().check().expect("cluster is consistent");
        scq_engine::integrity::check(&plain).expect("plain store is consistent");
        prop_assert_eq!(cluster.db().live_len(coll), plain.live_len(coll));

        for q in corner_queries() {
            for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
                let mut a = Vec::new();
                cluster.db().query_collection(coll, kind, &q, &mut a);
                a.sort_unstable();
                let mut b = Vec::new();
                plain.query_collection(coll, kind, &q, &mut b);
                b.sort_unstable();
                prop_assert_eq!(a, b, "{:?} diverged between cluster and plain", kind);
            }
        }
    }

    /// Constraint queries agree too — the engine executors over the
    /// remote-backed view and the per-shard fan-out — and the snapshot
    /// paths hold: a snapshot pulled over the wire loads as an
    /// identical local store, and reloading it back **into the same
    /// cluster** (each shard process swallowing its stream) preserves
    /// every answer.
    #[test]
    fn cluster_executors_and_snapshots_match_unsharded(
        ops in prop::collection::vec(op_strategy(), 1..40),
        n_shards in 2usize..4,
        seed in 0u64..200,
    ) {
        let mut cluster = Cluster::boot(n_shards);
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let mut plain = SpatialDatabase::new(universe);
        let xs = cluster.db().try_collection("xs").expect("create");
        let ys = cluster.db().try_collection("ys").expect("create");
        prop_assert_eq!(plain.collection("xs"), xs);
        prop_assert_eq!(plain.collection("ys"), ys);
        for i in 0..8 {
            let t = (i as f64 * 11.0 + seed as f64) % 78.0;
            let rx = Region::from_box(AaBox::new([t, 2.0], [t + 11.0, 48.0]));
            let ry = Region::from_box(AaBox::new([t + 3.0, 12.0], [t + 8.0, 38.0]));
            cluster.db().try_insert(xs, rx.clone()).expect("insert");
            plain.insert(xs, rx);
            cluster.db().try_insert(ys, ry.clone()).expect("insert");
            plain.insert(ys, ry);
        }
        for op in &ops {
            apply_both(cluster.db(), &mut plain, xs, op);
        }

        let sys = parse_system("X & Y != 0; X <= W").unwrap();
        let q = Query::new(sys)
            .known("W", Region::from_box(AaBox::new([0.0, 0.0], [55.0, 55.0])))
            .from_collection("X", xs)
            .from_collection("Y", ys);

        let mut oracle = naive_execute(&plain, &q).unwrap().solutions;
        oracle.sort();
        for kind in [IndexKind::RTree, IndexKind::Scan] {
            let mut got = execute(cluster.db(), &q, kind, scq_engine::ExecOptions::all())
                .unwrap()
                .solutions;
            got.sort();
            prop_assert_eq!(&got, &oracle, "cluster {:?} diverged from naive", kind);
        }
        let mut fanned = execute_fanout(
            cluster.db(),
            &q,
            IndexKind::RTree,
            scq_engine::ExecOptions::all(),
        )
        .unwrap()
        .solutions;
        fanned.sort();
        prop_assert_eq!(&fanned, &oracle, "fan-out over shard processes diverged");

        // Snapshot pulled over the wire → identical local store.
        let dir = std::env::temp_dir().join(format!(
            "scq_cluster_props_{}_{}",
            std::process::id(),
            seed
        ));
        scq_shard::save_to_dir(cluster.db(), &dir).expect("save cluster snapshot");
        let local = scq_shard::load_from_dir(&dir).expect("load locally");
        local.check().expect("local reload is consistent");
        let mut local_ans = execute(&local, &q, IndexKind::GridFile, scq_engine::ExecOptions::all())
            .unwrap()
            .solutions;
        local_ans.sort();
        prop_assert_eq!(&local_ans, &oracle, "answers changed across the wire snapshot");

        // In-place cluster restore: every shard process reloads its own
        // stream, the router rebuilds the mapping, answers survive.
        scq_shard::reload_from_dir(cluster.db(), &dir).expect("reload cluster in place");
        std::fs::remove_dir_all(&dir).ok();
        cluster.db().check().expect("cluster consistent after reload");
        let mut after = execute(cluster.db(), &q, IndexKind::RTree, scq_engine::ExecOptions::all())
            .unwrap()
            .solutions;
        after.sort();
        prop_assert_eq!(&after, &oracle, "answers changed across the cluster restore");
    }

    /// Cluster compaction — every shard process compacts, remaps cross
    /// the wire, the router repairs its mapping — preserves the live
    /// contents modulo the remap.
    #[test]
    fn cluster_compaction_preserves_answers(
        ops in prop::collection::vec(op_strategy(), 1..50),
    ) {
        let mut cluster = Cluster::boot(3);
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let mut plain = SpatialDatabase::new(universe);
        let coll = cluster.db().try_collection("objs").expect("create");
        plain.collection("objs");
        for op in &ops {
            apply_both(cluster.db(), &mut plain, coll, op);
        }
        let report = cluster.db().try_compact().expect("remote compact");
        cluster.db().check().expect("consistent after compaction");
        prop_assert_eq!(
            cluster.db().collection_len(coll),
            cluster.db().live_len(coll)
        );
        for q in corner_queries() {
            let mut before = Vec::new();
            plain.query_collection(coll, IndexKind::RTree, &q, &mut before);
            let mut before: Vec<u64> = before
                .into_iter()
                .map(|id| {
                    report
                        .fix_up(ObjectRef { collection: coll, index: id as usize })
                        .expect("query results are live, hence remapped")
                        .index as u64
                })
                .collect();
            before.sort_unstable();
            let mut after = Vec::new();
            cluster.db().query_collection(coll, IndexKind::RTree, &q, &mut after);
            after.sort_unstable();
            prop_assert_eq!(before, after, "compaction changed an answer");
        }
    }
}

proptest! {
    // Pure text-format properties: cheap, so run many cases.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cluster spec text format is a bijection on valid specs:
    /// format → parse → format is a fixpoint, and parse recovers the
    /// exact spec — arbitrary (non-balanced) range tilings, replica
    /// counts, breaker tunings, pool sizes and universes included.
    #[test]
    fn cluster_spec_round_trips_format_parse_format(
        bits in 3u32..10,
        raw_cuts in prop::collection::vec(1u64..u64::MAX, 0..7),
        pool in 1usize..33,
        (ux, uy) in (1u16..2000, 1u16..2000),
        n_replicas in prop::collection::vec(1usize..4, 8),
        threshold in 1usize..9,
        cooldown_ms in 1u64..100_000,
        // 0 = no wal directive, 1 = dir only, 2 = dir + window (a
        // window without a dir is unreachable from the text format).
        wal_shape in 0u8..3,
        wal_ms in 1u64..60_000,
    ) {
        let space = scq_zorder::key_space(bits);
        let mut cuts: Vec<u64> = raw_cuts.iter().map(|c| 1 + c % (space - 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut bounds = vec![0u64];
        bounds.extend(cuts);
        bounds.push(space);
        let shards: Vec<ShardSpec> = bounds
            .windows(2)
            .enumerate()
            .map(|(i, w)| ShardSpec {
                name: format!("shard{i}"),
                addrs: (0..n_replicas[i])
                    .map(|r| format!("10.0.{r}.{i}:7{i:03}"))
                    .collect(),
                range: (w[0], w[1]),
            })
            .collect();
        let spec = ClusterSpec {
            universe: AaBox::new([0.0, 0.0], [ux as f64, uy as f64]),
            bits,
            pool,
            breaker: BreakerConfig {
                threshold,
                cooldown: Duration::from_millis(cooldown_ms),
            },
            wal_dir: (wal_shape > 0).then(|| format!("/var/scq/wal{wal_shape}")),
            wal_group_commit_ms: (wal_shape == 2).then_some(wal_ms),
            shards,
        };
        spec.validate().expect("generated specs are valid");
        let text = spec.to_text();
        let parsed = ClusterSpec::parse(&text).expect("own output parses");
        prop_assert_eq!(&parsed, &spec, "parse must recover the spec");
        prop_assert_eq!(parsed.to_text(), text, "format∘parse is a fixpoint");
    }
}
