//! Property tests for the multi-process shard cluster.
//!
//! The distribution claim of `crates/shard`'s backend layer: a
//! `ShardedDatabase<RemoteShard>` — N shard servers speaking the
//! length-prefixed wire protocol over real TCP sockets, one router
//! keeping only routing state and a region mirror — fed an
//! **arbitrary** mutation sequence answers every corner query and
//! every constraint query exactly like an unsharded [`SpatialDatabase`]
//! fed the same sequence. This is `tests/shard_props.rs` with the
//! shards moved behind sockets: same op generator, same oracle, plus
//! cross-process migration, snapshot round trips pulled over the wire,
//! and an in-place cluster restore.
//!
//! The shard servers here run as threads of the test process bound to
//! ephemeral loopback ports — every byte still crosses a real TCP
//! socket through the real wire codec, which is the property under
//! test; the CI `cluster-smoke` job exercises the identical stack with
//! shards as separate OS processes.

use std::time::Duration;

use proptest::prelude::*;
use scq_engine::CollectionId;
use scq_integration::prelude::*;
use scq_shard::{
    execute, execute_fanout, ClusterSpec, RemoteShard, ShardServerConfig, ShardServerHandle,
};

const UNIVERSE_SIZE: f64 = 100.0;

/// A live cluster: shard server threads plus the connected router-side
/// database. Shuts the servers down on drop so proptest failures never
/// leak listeners.
struct Cluster {
    servers: Vec<ShardServerHandle>,
    db: Option<ShardedDatabase<RemoteShard>>,
}

impl Cluster {
    fn boot(n_shards: usize) -> Cluster {
        let servers: Vec<ShardServerHandle> = (0..n_shards)
            .map(|_| {
                scq_shard::serve_shard(&ShardServerConfig {
                    addr: "127.0.0.1:0".into(),
                    threads: 1,
                    universe_size: UNIVERSE_SIZE,
                })
                .expect("bind shard server")
            })
            .collect();
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
        let spec = ClusterSpec::balanced(universe, scq_shard::DEFAULT_ROUTER_BITS, &addrs);
        let db = spec
            .connect(Duration::from_secs(10))
            .expect("connect cluster");
        Cluster {
            servers,
            db: Some(db),
        }
    }

    fn db(&mut self) -> &mut ShardedDatabase<RemoteShard> {
        self.db.as_mut().expect("cluster is up")
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.db.take();
        for server in self.servers.drain(..) {
            server.shutdown();
        }
    }
}

/// One scripted mutation (slot choices reduced modulo the slot count at
/// application time, exactly like `tests/shard_props.rs`).
#[derive(Clone, Debug)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    InsertEmpty,
    Remove {
        slot: u16,
    },
    Update {
        slot: u16,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    UpdateToEmpty {
        slot: u16,
    },
}

fn op_strategy() -> BoxedStrategy<Op> {
    let coords = (0.0f64..90.0, 0.0f64..90.0, 0.0f64..9.0, 0.0f64..9.0);
    prop_oneof![
        4 => coords.clone().prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        1 => Just(Op::InsertEmpty),
        3 => (0u16..u16::MAX).prop_map(|slot| Op::Remove { slot }),
        // Updates include long moves, so cross-process migration is
        // hit constantly.
        2 => (0u16..u16::MAX, coords)
            .prop_map(|(slot, (x, y, w, h))| Op::Update { slot, x, y, w, h }),
        1 => (0u16..u16::MAX).prop_map(|slot| Op::UpdateToEmpty { slot }),
    ]
    .boxed()
}

/// Applies one op to both stores; their slot spaces stay in lockstep.
fn apply_both(
    cluster: &mut ShardedDatabase<RemoteShard>,
    plain: &mut SpatialDatabase<2>,
    coll: CollectionId,
    op: &Op,
) {
    let slots = plain.collection_len(coll);
    assert_eq!(
        slots,
        cluster.collection_len(coll),
        "slot spaces in lockstep"
    );
    let obj = |slot: u16| ObjectRef {
        collection: coll,
        index: slot as usize % slots,
    };
    match *op {
        Op::Insert { x, y, w, h } => {
            let r = Region::from_box(AaBox::new([x, y], [x + w, y + h]));
            let a = cluster.try_insert(coll, r.clone()).expect("remote insert");
            let b = plain.insert(coll, r);
            assert_eq!(a, b, "global refs line up");
        }
        Op::InsertEmpty => {
            let a = cluster
                .try_insert(coll, Region::empty())
                .expect("remote insert");
            let b = plain.insert(coll, Region::empty());
            assert_eq!(a, b);
        }
        Op::Remove { slot } if slots > 0 => {
            assert_eq!(
                cluster.try_remove(obj(slot)).expect("remote remove"),
                plain.remove(obj(slot))
            );
        }
        Op::Update { slot, x, y, w, h } if slots > 0 => {
            let r = Region::from_box(AaBox::new([x, y], [x + w, y + h]));
            assert_eq!(
                cluster
                    .try_update(obj(slot), r.clone())
                    .expect("remote update"),
                plain.update(obj(slot), r)
            );
        }
        Op::UpdateToEmpty { slot } if slots > 0 => {
            assert_eq!(
                cluster
                    .try_update(obj(slot), Region::empty())
                    .expect("remote update"),
                plain.update(obj(slot), Region::empty())
            );
        }
        _ => {} // slot ops on an empty collection: no-op
    }
}

fn corner_queries() -> Vec<CornerQuery<2>> {
    let mut qs = vec![CornerQuery::unconstrained()];
    for i in 0..4 {
        let t = i as f64 * 17.0;
        let probe = Bbox::new([t, t * 0.5], [t + 25.0, t * 0.5 + 30.0]);
        let inner = Bbox::new([t + 8.0, t * 0.5 + 8.0], [t + 12.0, t * 0.5 + 12.0]);
        qs.push(CornerQuery::unconstrained().and_overlaps(&probe));
        qs.push(CornerQuery::unconstrained().and_contained_in(&probe));
        qs.push(CornerQuery::unconstrained().and_contains(&inner));
    }
    qs
}

/// A migration whose target shard process is dead must fail WITHOUT
/// losing the object: the insert-into-new-shard step runs first, so a
/// transport failure leaves the object live, queryable and consistent
/// on its old shard.
#[test]
fn failed_migration_keeps_the_object_intact() {
    let config = ShardServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        universe_size: UNIVERSE_SIZE,
    };
    let shard_a = scq_shard::serve_shard(&config).unwrap();
    let shard_b = scq_shard::serve_shard(&config).unwrap();
    let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
    let spec = ClusterSpec::balanced(
        universe,
        scq_shard::DEFAULT_ROUTER_BITS,
        &[shard_a.addr().to_string(), shard_b.addr().to_string()],
    );
    let mut db = spec.connect(Duration::from_secs(10)).unwrap();
    let coll = db.try_collection("objs").unwrap();
    let obj = db
        .try_insert(
            coll,
            Region::from_box(AaBox::new([10.0, 10.0], [15.0, 15.0])),
        )
        .unwrap();
    assert_eq!(db.shard_of(obj), 0, "low corner routes to shard 0");
    let before = db.region(obj).clone();

    // Kill the migration target, then try to move the object there.
    shard_b.shutdown();
    let err = db
        .try_update(
            obj,
            Region::from_box(AaBox::new([90.0, 90.0], [95.0, 95.0])),
        )
        .expect_err("migrating onto a dead shard process must fail");
    assert!(matches!(err, scq_shard::ShardError::Wire(_)), "{err}");

    // Nothing was lost: still live, still on shard 0, same region,
    // still answered by a query the router routes to shard 0 only.
    assert!(db.is_live(obj));
    assert_eq!(db.shard_of(obj), 0);
    assert!(db.region(obj).same_set(&before));
    let q = CornerQuery::unconstrained().and_contained_in(&Bbox::new([0.0, 0.0], [30.0, 30.0]));
    let mut out = Vec::new();
    db.query_collection(coll, IndexKind::RTree, &q, &mut out);
    assert_eq!(out, vec![obj.index as u64]);
    shard_a.shutdown();
}

proptest! {
    // Each case boots real listeners, so run fewer, longer cases than
    // the in-process suite.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// After any mutation sequence — including cross-process migration
    /// on update — a cluster of shard processes answers every corner
    /// query identically to the unsharded store, on all three index
    /// structures, and passes the full integrity check (which
    /// cross-examines every shard process over the wire).
    #[test]
    fn cluster_corner_queries_match_unsharded(
        ops in prop::collection::vec(op_strategy(), 1..60),
        n_shards in 2usize..5,
    ) {
        let mut cluster = Cluster::boot(n_shards);
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let mut plain = SpatialDatabase::new(universe);
        let coll = cluster.db().try_collection("objs").expect("create");
        prop_assert_eq!(plain.collection("objs"), coll);
        for op in &ops {
            apply_both(cluster.db(), &mut plain, coll, op);
        }
        cluster.db().check().expect("cluster is consistent");
        scq_engine::integrity::check(&plain).expect("plain store is consistent");
        prop_assert_eq!(cluster.db().live_len(coll), plain.live_len(coll));

        for q in corner_queries() {
            for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
                let mut a = Vec::new();
                cluster.db().query_collection(coll, kind, &q, &mut a);
                a.sort_unstable();
                let mut b = Vec::new();
                plain.query_collection(coll, kind, &q, &mut b);
                b.sort_unstable();
                prop_assert_eq!(a, b, "{:?} diverged between cluster and plain", kind);
            }
        }
    }

    /// Constraint queries agree too — the engine executors over the
    /// remote-backed view and the per-shard fan-out — and the snapshot
    /// paths hold: a snapshot pulled over the wire loads as an
    /// identical local store, and reloading it back **into the same
    /// cluster** (each shard process swallowing its stream) preserves
    /// every answer.
    #[test]
    fn cluster_executors_and_snapshots_match_unsharded(
        ops in prop::collection::vec(op_strategy(), 1..40),
        n_shards in 2usize..4,
        seed in 0u64..200,
    ) {
        let mut cluster = Cluster::boot(n_shards);
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let mut plain = SpatialDatabase::new(universe);
        let xs = cluster.db().try_collection("xs").expect("create");
        let ys = cluster.db().try_collection("ys").expect("create");
        prop_assert_eq!(plain.collection("xs"), xs);
        prop_assert_eq!(plain.collection("ys"), ys);
        for i in 0..8 {
            let t = (i as f64 * 11.0 + seed as f64) % 78.0;
            let rx = Region::from_box(AaBox::new([t, 2.0], [t + 11.0, 48.0]));
            let ry = Region::from_box(AaBox::new([t + 3.0, 12.0], [t + 8.0, 38.0]));
            cluster.db().try_insert(xs, rx.clone()).expect("insert");
            plain.insert(xs, rx);
            cluster.db().try_insert(ys, ry.clone()).expect("insert");
            plain.insert(ys, ry);
        }
        for op in &ops {
            apply_both(cluster.db(), &mut plain, xs, op);
        }

        let sys = parse_system("X & Y != 0; X <= W").unwrap();
        let q = Query::new(sys)
            .known("W", Region::from_box(AaBox::new([0.0, 0.0], [55.0, 55.0])))
            .from_collection("X", xs)
            .from_collection("Y", ys);

        let mut oracle = naive_execute(&plain, &q).unwrap().solutions;
        oracle.sort();
        for kind in [IndexKind::RTree, IndexKind::Scan] {
            let mut got = execute(cluster.db(), &q, kind, scq_engine::ExecOptions::all())
                .unwrap()
                .solutions;
            got.sort();
            prop_assert_eq!(&got, &oracle, "cluster {:?} diverged from naive", kind);
        }
        let mut fanned = execute_fanout(
            cluster.db(),
            &q,
            IndexKind::RTree,
            scq_engine::ExecOptions::all(),
        )
        .unwrap()
        .solutions;
        fanned.sort();
        prop_assert_eq!(&fanned, &oracle, "fan-out over shard processes diverged");

        // Snapshot pulled over the wire → identical local store.
        let dir = std::env::temp_dir().join(format!(
            "scq_cluster_props_{}_{}",
            std::process::id(),
            seed
        ));
        scq_shard::save_to_dir(cluster.db(), &dir).expect("save cluster snapshot");
        let local = scq_shard::load_from_dir(&dir).expect("load locally");
        local.check().expect("local reload is consistent");
        let mut local_ans = execute(&local, &q, IndexKind::GridFile, scq_engine::ExecOptions::all())
            .unwrap()
            .solutions;
        local_ans.sort();
        prop_assert_eq!(&local_ans, &oracle, "answers changed across the wire snapshot");

        // In-place cluster restore: every shard process reloads its own
        // stream, the router rebuilds the mapping, answers survive.
        scq_shard::reload_from_dir(cluster.db(), &dir).expect("reload cluster in place");
        std::fs::remove_dir_all(&dir).ok();
        cluster.db().check().expect("cluster consistent after reload");
        let mut after = execute(cluster.db(), &q, IndexKind::RTree, scq_engine::ExecOptions::all())
            .unwrap()
            .solutions;
        after.sort();
        prop_assert_eq!(&after, &oracle, "answers changed across the cluster restore");
    }

    /// Cluster compaction — every shard process compacts, remaps cross
    /// the wire, the router repairs its mapping — preserves the live
    /// contents modulo the remap.
    #[test]
    fn cluster_compaction_preserves_answers(
        ops in prop::collection::vec(op_strategy(), 1..50),
    ) {
        let mut cluster = Cluster::boot(3);
        let universe = AaBox::new([0.0, 0.0], [UNIVERSE_SIZE, UNIVERSE_SIZE]);
        let mut plain = SpatialDatabase::new(universe);
        let coll = cluster.db().try_collection("objs").expect("create");
        plain.collection("objs");
        for op in &ops {
            apply_both(cluster.db(), &mut plain, coll, op);
        }
        let report = cluster.db().try_compact().expect("remote compact");
        cluster.db().check().expect("consistent after compaction");
        prop_assert_eq!(
            cluster.db().collection_len(coll),
            cluster.db().live_len(coll)
        );
        for q in corner_queries() {
            let mut before = Vec::new();
            plain.query_collection(coll, IndexKind::RTree, &q, &mut before);
            let mut before: Vec<u64> = before
                .into_iter()
                .map(|id| {
                    report
                        .fix_up(ObjectRef { collection: coll, index: id as usize })
                        .expect("query results are live, hence remapped")
                        .index as u64
                })
                .collect();
            before.sort_unstable();
            let mut after = Vec::new();
            cluster.db().query_collection(coll, IndexKind::RTree, &q, &mut after);
            after.sort_unstable();
            prop_assert_eq!(before, after, "compaction changed an answer");
        }
    }
}
